"""The original repository: where the OS distribution publishes packages."""

from __future__ import annotations

from dataclasses import dataclass

from repro.archive.apk import ApkPackage
from repro.archive.index import IndexEntry, RepositoryIndex
from repro.crypto.hashes import sha256_hex
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.util.errors import PackagingError


@dataclass(frozen=True)
class Snapshot:
    """One published state of the repository: index + package blobs."""

    serial: int
    index_bytes: bytes
    blobs: dict[str, bytes]


class OriginalRepository:
    """Maintains the signed index and package blobs; keeps history so
    replay adversaries have old-but-validly-signed snapshots to serve."""

    def __init__(self, signing_key: RsaPrivateKey):
        self._key = signing_key
        self._blobs: dict[str, bytes] = {}
        self._index = RepositoryIndex(serial=0)
        self._index.sign(self._key)
        self._history: list[Snapshot] = [self.snapshot()]

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public_key

    @property
    def serial(self) -> int:
        return self._index.serial

    # -- publishing ----------------------------------------------------------

    def publish(self, package: ApkPackage,
                builder_key: RsaPrivateKey | None = None) -> IndexEntry:
        """Build, sign, and list a package; bumps the index serial.

        ``builder_key`` is the upstream developer/CI signing key; defaults
        to the repository key (common for distro-built packages).
        """
        blob = package.build(builder_key or self._key)
        return self.publish_blob(package.name, package.version, blob,
                                 depends=tuple(package.depends))

    def publish_blob(self, name: str, version: str, blob: bytes,
                     depends: tuple[str, ...] = ()) -> IndexEntry:
        entry = IndexEntry(
            name=name,
            version=version,
            size=len(blob),
            sha256=sha256_hex(blob),
            depends=depends,
        )
        self._blobs[name] = blob
        self._index.add(entry)
        self._index.serial += 1
        self._index.sign(self._key)
        self._history.append(self.snapshot())
        return entry

    def prewarm_publish(self, packages: list[ApkPackage], pool=None) -> None:
        """Warm the build memos for an upcoming default-key publish wave.

        Worker processes deflate/sign each package's segments and the
        main process installs the results (with their worker-measured
        costs) into the gzip/sign memos that :meth:`publish` and
        :meth:`publish_many` consume — output bytes are unchanged.  A
        no-op without a pool; packages carrying their own builder key
        publish cold as before.
        """
        if pool is None or not packages:
            return
        from repro.archive.apk import publish_build_batch
        publish_build_batch(list(packages), self._key, pool=pool)

    def publish_many(self, packages: list[tuple[ApkPackage, RsaPrivateKey | None]]):
        """Publish a batch under one serial bump (one upstream release)."""
        for package, key in packages:
            blob = package.build(key or self._key)
            self._blobs[package.name] = blob
            self._index.add(IndexEntry(
                name=package.name,
                version=package.version,
                size=len(blob),
                sha256=sha256_hex(blob),
                depends=tuple(package.depends),
            ))
        self._index.serial += 1
        self._index.sign(self._key)
        self._history.append(self.snapshot())

    # -- access -----------------------------------------------------------------

    def index_bytes(self) -> bytes:
        return self._index.to_bytes()

    def index(self) -> RepositoryIndex:
        return self._index.copy()

    def package_blob(self, name: str) -> bytes:
        if name not in self._blobs:
            raise PackagingError(f"no such package in repository: {name}")
        return self._blobs[name]

    def package_names(self) -> list[str]:
        return sorted(self._blobs)

    def snapshot(self) -> Snapshot:
        return Snapshot(
            serial=self._index.serial,
            index_bytes=self._index.to_bytes() if self._index.signature else b"",
            blobs=dict(self._blobs),
        )

    def snapshot_at(self, serial: int) -> Snapshot:
        """Historical snapshot — what a replay adversary will serve."""
        for snapshot in self._history:
            if snapshot.serial == serial:
                return snapshot
        raise PackagingError(f"no snapshot with serial {serial}")
