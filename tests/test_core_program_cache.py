"""Unit tests for the enclave program surface, cache, and freshness."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.core.cache import PackageCache
from repro.core.freshness import FreshnessManager
from repro.core.program import TsrProgram
from repro.crypto.rsa import RsaPublicKey
from repro.mirrors.repository import OriginalRepository
from repro.sgx.enclave import Enclave, EnclaveError
from repro.sgx.platform import AttestationService, SgxCpu
from repro.tpm.device import Tpm
from repro.util.errors import (
    IntegrityError,
    PolicyError,
    QuorumError,
    RollbackError,
)


@pytest.fixture(scope="module")
def cpu():
    return SgxCpu("prog-cpu", AttestationService(), key_bits=512)


@pytest.fixture()
def enclave(cpu):
    return Enclave(cpu, TsrProgram, key_bits=1024)


def _policy_yaml(rsa_key) -> str:
    pem = "\n".join("    " + line
                    for line in rsa_key.public_key.to_pem().splitlines())
    return (
        "mirrors:\n"
        "  - hostname: m0\n  - hostname: m1\n  - hostname: m2\n"
        f"signers_keys:\n  - |-\n{pem}\n"
    )


@pytest.fixture()
def origin(rsa_key):
    repo = OriginalRepository(rsa_key)
    repo.publish(ApkPackage(name="musl", version="1-r0",
                            files=[PackageFile("/lib/x.so", b"\x7fELF")]))
    return repo


class TestProgramSurface:
    def test_deploy_returns_distinct_tenants(self, enclave, rsa_key):
        first = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        second = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        assert first["repo_id"] != second["repo_id"]
        assert first["public_key_pem"] != second["public_key_pem"]
        assert first["fault_tolerance"] == 1

    def test_key_rederived_from_sealing_key(self, cpu, rsa_key):
        a = Enclave(cpu, TsrProgram, key_bits=1024)
        b = Enclave(cpu, TsrProgram, key_bits=1024)
        pem_a = a.ecall("deploy_policy", _policy_yaml(rsa_key))["public_key_pem"]
        pem_b = b.ecall("deploy_policy", _policy_yaml(rsa_key))["public_key_pem"]
        assert pem_a == pem_b  # same CPU + same enclave build + same repo id

    def test_unknown_repo_rejected(self, enclave):
        with pytest.raises(PolicyError):
            enclave.ecall("public_key_pem", "repo-9999")

    def test_private_state_not_reachable_as_ecall(self, enclave):
        with pytest.raises(EnclaveError):
            enclave.ecall("_sealing_key")
        with pytest.raises(EnclaveError):
            enclave.ecall("_repos")

    def test_quorum_requires_majority(self, enclave, rsa_key, origin):
        deployed = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        repo_id = deployed["repo_id"]
        blob = origin.index_bytes()
        with pytest.raises(QuorumError):
            enclave.ecall("evaluate_quorum", repo_id, [("m0", blob)])
        result = enclave.ecall("evaluate_quorum", repo_id,
                               [("m0", blob), ("m1", blob)])
        assert result["serial"] == origin.serial
        assert result["changed"] == ["musl"]

    def test_quorum_replay_to_older_serial_rejected(self, enclave, rsa_key,
                                                    origin):
        deployed = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        repo_id = deployed["repo_id"]
        old_blob = origin.index_bytes()
        origin.publish(ApkPackage(name="zlib", version="1-r0"))
        new_blob = origin.index_bytes()
        enclave.ecall("evaluate_quorum", repo_id,
                      [("m0", new_blob), ("m1", new_blob)])
        with pytest.raises(RollbackError):
            enclave.ecall("evaluate_quorum", repo_id,
                          [("m0", old_blob), ("m1", old_blob)])

    def test_sanitize_requires_catalog(self, enclave, rsa_key, origin):
        deployed = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        repo_id = deployed["repo_id"]
        blob = origin.index_bytes()
        enclave.ecall("evaluate_quorum", repo_id,
                      [("m0", blob), ("m1", blob)])
        with pytest.raises(PolicyError):
            enclave.ecall("sanitize_package", repo_id,
                          origin.package_blob("musl"))

    def test_unlisted_blob_rejected(self, enclave, rsa_key, origin):
        deployed = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        repo_id = deployed["repo_id"]
        blob = origin.index_bytes()
        enclave.ecall("evaluate_quorum", repo_id,
                      [("m0", blob), ("m1", blob)])
        with pytest.raises(IntegrityError):
            enclave.ecall("scan_for_accounts", repo_id, b"not-a-real-package")

    def test_full_tenant_pipeline(self, enclave, rsa_key, origin):
        deployed = enclave.ecall("deploy_policy", _policy_yaml(rsa_key))
        repo_id = deployed["repo_id"]
        index_blob = origin.index_bytes()
        enclave.ecall("evaluate_quorum", repo_id,
                      [("m0", index_blob), ("m1", index_blob)])
        pkg_blob = origin.package_blob("musl")
        enclave.ecall("scan_for_accounts", repo_id, pkg_blob)
        info = enclave.ecall("finish_catalog", repo_id)
        assert info["users"] == 0
        result = enclave.ecall("sanitize_package", repo_id, pkg_blob)
        sanitized_index = RepositoryIndex.from_bytes(
            enclave.ecall("finalize_index", repo_id)
        )
        key = RsaPublicKey.from_pem(deployed["public_key_pem"])
        assert sanitized_index.verify(key)
        assert enclave.ecall("check_cached_blob", repo_id, "musl", result.blob)
        with pytest.raises(RollbackError):
            enclave.ecall("check_cached_blob", repo_id, "musl",
                          result.blob + b"x")

    def test_state_export_restore_roundtrip(self, cpu, rsa_key, origin):
        first = Enclave(cpu, TsrProgram, key_bits=1024)
        deployed = first.ecall("deploy_policy", _policy_yaml(rsa_key))
        repo_id = deployed["repo_id"]
        blob = origin.index_bytes()
        first.ecall("evaluate_quorum", repo_id, [("m0", blob), ("m1", blob)])
        first.ecall("finish_catalog", repo_id)
        first.ecall("sanitize_package", repo_id, origin.package_blob("musl"))
        first.ecall("finalize_index", repo_id)
        snapshot = first.ecall("export_state")

        second = Enclave(cpu, TsrProgram, key_bits=1024)
        second.ecall("restore_state", snapshot)
        assert second.ecall("repository_ids") == [repo_id]
        assert second.ecall("sanitized_index_bytes", repo_id) == \
            first.ecall("sanitized_index_bytes", repo_id)


class TestPackageCache:
    def test_roundtrip_both_kinds(self):
        cache = PackageCache()
        cache.put_original("r1", "musl", b"orig")
        cache.put_sanitized("r1", "musl", b"sane")
        assert cache.get_original("r1", "musl") == b"orig"
        assert cache.get_sanitized("r1", "musl") == b"sane"
        assert cache.has_original("r1", "musl")
        assert cache.has_sanitized("r1", "musl")

    def test_missing_is_none(self):
        cache = PackageCache()
        assert cache.get_original("r1", "ghost") is None
        assert not cache.has_sanitized("r1", "ghost")

    def test_repo_isolation(self):
        cache = PackageCache()
        cache.put_sanitized("r1", "musl", b"tenant1")
        assert cache.get_sanitized("r2", "musl") is None

    def test_invalidate_removes_both(self):
        cache = PackageCache()
        cache.put_original("r1", "musl", b"o")
        cache.put_sanitized("r1", "musl", b"s")
        cache.invalidate("r1", "musl")
        assert cache.get_original("r1", "musl") is None
        assert cache.get_sanitized("r1", "musl") is None

    def test_tamper_helper_overwrites(self):
        cache = PackageCache()
        cache.put_sanitized("r1", "musl", b"good")
        cache.tamper_sanitized("r1", "musl", b"evil")
        assert cache.get_sanitized("r1", "musl") == b"evil"


class TestFreshness:
    def test_persist_restore_roundtrip(self):
        tpm = Tpm("fresh-tpm", key_bits=512)
        manager = FreshnessManager(tpm)
        key = bytes(range(32))
        blob = manager.persist(key, {"serial": 7})
        assert manager.restore(key, blob) == {"serial": 7}

    def test_stale_blob_rejected(self):
        tpm = Tpm("fresh-tpm2", key_bits=512)
        manager = FreshnessManager(tpm)
        key = bytes(range(32))
        old = manager.persist(key, {"serial": 1})
        manager.persist(key, {"serial": 2})
        with pytest.raises(RollbackError):
            manager.restore(key, old)

    def test_tampered_blob_rejected(self):
        tpm = Tpm("fresh-tpm3", key_bits=512)
        manager = FreshnessManager(tpm)
        key = bytes(range(32))
        blob = bytearray(manager.persist(key, {"serial": 1}))
        blob[10] ^= 0x01
        with pytest.raises(RollbackError):
            manager.restore(key, bytes(blob))

    def test_wrong_key_rejected(self):
        tpm = Tpm("fresh-tpm4", key_bits=512)
        manager = FreshnessManager(tpm)
        blob = manager.persist(bytes(range(32)), {"x": 1})
        with pytest.raises(RollbackError):
            manager.restore(bytes(32), blob)

    def test_counter_survives_manager_recreation(self):
        """A new FreshnessManager over the same TPM must keep the counter
        (the TPM is the persistent root, not the Python object)."""
        tpm = Tpm("fresh-tpm5", key_bits=512)
        key = bytes(range(32))
        first = FreshnessManager(tpm)
        blob = first.persist(key, {"serial": 9})
        second = FreshnessManager(tpm)
        assert second.restore(key, blob) == {"serial": 9}
