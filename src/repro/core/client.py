"""Repository clients used by package managers (over the simulated network).

``TsrRepositoryClient`` talks to a TSR instance; ``MirrorRepositoryClient``
talks directly to a mirror (the baseline setup) — package managers cannot
tell them apart, which is the paper's transparency claim (section 4.3).

Both clients run their transfers on the shared event-driven engine: single
fetches go through :meth:`Network.call`, batch fetches
(:meth:`fetch_packages`, :meth:`fetch_index_and_packages`) fan out over the
incremental :class:`repro.simnet.schedule.ParallelTransferSchedule` solver
via :meth:`Network.gather_scheduled`, and a
:class:`~repro.simnet.network.ScheduledFetchSession` — when attached —
routes every fetch onto a fleet-wide schedule so tens of thousands of
clients share the repository's uplink instead of serializing on the clock,
each capped by its own NIC downlink when the host declares one.
"""

from __future__ import annotations

from repro.crypto.rsa import RsaPublicKey
from repro.sgx.enclave import EnclaveQuote
from repro.sgx.platform import AttestationService
from repro.simnet.network import (
    Network,
    Request,
    Response,
    ScheduledFetchSession,
)
from repro.util.errors import AttestationError, NetworkError


class _ScheduledClientBase:
    """Shared client surface: session routing + scheduled batch fetches.

    Subclasses only define how requests are built (``_index_request`` /
    ``_package_request``); every fetch path lives here so the TSR and
    mirror clients cannot diverge.
    """

    _network: Network
    _src: str

    def __init__(self, network: Network, src_host: str,
                 session: ScheduledFetchSession | None = None):
        self._network = network
        self._src = src_host
        self._session = session

    def _index_request(self) -> Request:
        raise NotImplementedError

    def _package_request(self, name: str) -> Request:
        raise NotImplementedError

    def use_session(self, session: ScheduledFetchSession | None):
        """Attach (or detach) a fleet-wide scheduled fetch session."""
        self._session = session

    def _fetch(self, request: Request) -> bytes:
        if self._session is not None:
            return self._session.fetch(self._src, request, channel=self._src)
        return self._network.call(self._src, request).payload

    def _gather(self, requests: list[Request],
                channels: list) -> list[object]:
        """Batch the requests over the given schedule channels.

        Returns one entry per request: the response payload, or the
        :class:`NetworkError` it failed with — callers decide which
        failures are fatal.  Advances the clock by the schedule makespan.
        With a session attached, requests instead serialize on the
        client's single fleet channel (``channels`` is ignored — a fleet
        client models one connection) and the session accounts the time.
        """
        if self._session is not None:
            results: list[object] = []
            for request in requests:
                try:
                    results.append(self._session.fetch(self._src, request,
                                                       channel=self._src))
                except NetworkError as exc:
                    results.append(exc)
            return results
        responses = self._network.gather_scheduled(
            self._src, requests, channels=channels, advance="max"
        )
        return [response.payload if isinstance(response, Response)
                else response for response in responses]

    @staticmethod
    def _check_connections(connections: int):
        if connections < 1:
            raise ValueError("connections must be >= 1")

    def fetch_index(self) -> bytes:
        return self._fetch(self._index_request())

    def fetch_package(self, name: str) -> bytes:
        return self._fetch(self._package_request(name))

    def fetch_packages(self, names: list[str],
                       connections: int = 1) -> dict[str, bytes]:
        """Fetch many packages over one schedule (concurrent connections).

        Raises the first :class:`NetworkError` if any fetch failed.  With
        a fleet session attached the fetches serialize on the client's
        one connection instead (``connections`` has no effect).
        """
        self._check_connections(connections)
        payloads = self._gather(
            [self._package_request(name) for name in names],
            [i % connections for i in range(len(names))],
        )
        for payload in payloads:
            if isinstance(payload, NetworkError):
                raise payload
        return dict(zip(names, payloads))

    def fetch_index_and_packages(self, names: list[str],
                                 connections: int = 1,
                                 ) -> tuple[bytes, dict[str, bytes]]:
        """Overlapped mode: the index downloads on its own channel,
        concurrently with *optimistic* fetches of the named packages
        (callers verify the blobs against the fresh index once it lands —
        sizes and hashes are pinned there, so optimism is safe).

        A failed index fetch raises; a failed package fetch (e.g. a name
        the repository rejected, unknowable before the index arrives) is
        simply omitted from the returned dict and left to the caller to
        resolve against the fresh index.  With a fleet session attached
        everything serializes on the client's one connection instead
        (``connections`` has no effect, and the index is not overlapped).
        """
        self._check_connections(connections)
        requests = [self._index_request()]
        requests += [self._package_request(name) for name in names]
        channels = ["index"] + [i % connections for i in range(len(names))]
        payloads = self._gather(requests, channels)
        if isinstance(payloads[0], NetworkError):
            raise payloads[0]
        blobs = {name: payload
                 for name, payload in zip(names, payloads[1:])
                 if not isinstance(payload, NetworkError)}
        return payloads[0], blobs


class TsrRepositoryClient(_ScheduledClientBase):
    """A package manager's view of one TSR tenant repository.

    ``as_of`` time-stamps the client's requests on a plan timeline: when
    set, the TSR serves the newest *publication* available at that plan
    instant (see :meth:`TrustedSoftwareRepository.record_publication`)
    instead of its live enclave state — how the multi-round trace replay
    keeps a pull that starts while a refresh is still in flight from
    anachronistically seeing that refresh's output.  ``None`` (default)
    keeps the live-serving behaviour.
    """

    def __init__(self, network: Network, src_host: str, tsr_host: str,
                 repo_id: str,
                 session: ScheduledFetchSession | None = None,
                 as_of: float | None = None,
                 replica_host: str | None = None):
        super().__init__(network, src_host, session=session)
        self._tsr = tsr_host
        self.repo_id = repo_id
        self.as_of = as_of
        #: Edge replica serving this client's ordinary traffic (index,
        #: package, and delta endpoints alike — the CDN model: the edge
        #: absorbs every routine pull).  The ``*_origin`` fetches always
        #: target the primary, and the package manager uses them for
        #: recovery re-pulls after a rejected or rolled-back answer, so
        #: a misbehaving replica is automatically escaped.  ``None``
        #: routes everything at the primary; the fleet layer re-points
        #: this per pull wave as replicas pass or fail their freshness
        #: check.
        self.replica_host = replica_host

    @property
    def _serving_host(self) -> str:
        return self.replica_host or self._tsr

    def _index_request(self, target: str | None = None) -> Request:
        target = target or self._serving_host
        if self.as_of is not None:
            return Request(target, "get_index",
                           payload={"repo": self.repo_id,
                                    "as_of": self.as_of})
        return Request(target, "get_index", payload=self.repo_id)

    def _package_request(self, name: str,
                         target: str | None = None) -> Request:
        payload = {"repo": self.repo_id, "name": name}
        if self.as_of is not None:
            payload["as_of"] = self.as_of
        return Request(target or self._serving_host, "get_package",
                       payload=payload)

    # -- origin (primary) pulls: the recovery path around a bad replica -------

    def fetch_index_origin(self) -> bytes:
        """Full index straight from the primary, bypassing any replica."""
        return self._fetch(self._index_request(target=self._tsr))

    def fetch_package_origin(self, name: str) -> bytes:
        """Full package straight from the primary, bypassing any replica."""
        return self._fetch(self._package_request(name, target=self._tsr))

    # -- delta-update surface (TSR-only; mirror clients lack it, which is
    # how the package manager detects delta capability) ----------------------

    def fetch_index_delta(self, base_serial: int) -> bytes:
        """Fetch a signed index diff from ``base_serial`` to the newest
        publication at this client's ``as_of`` instant (or the newest
        overall for live clients).  Returns a delta envelope — see
        :mod:`repro.core.delta` for the kinds and fallback rules."""
        payload: dict = {"repo": self.repo_id, "base_serial": base_serial}
        if self.as_of is not None:
            payload["as_of"] = self.as_of
        return self._fetch(Request(self._serving_host,
                                   "get_index_delta", payload=payload))

    def fetch_package_delta(self, name: str, base_sha256: str) -> bytes:
        """Fetch one package as a chunk delta against the cached base blob
        identified by ``base_sha256`` (server may answer with a tagged
        full blob when no usable delta exists)."""
        payload: dict = {"repo": self.repo_id, "name": name,
                         "base_sha256": base_sha256}
        if self.as_of is not None:
            payload["as_of"] = self.as_of
        return self._fetch(Request(self._serving_host,
                                   "get_package_delta", payload=payload))


class MirrorRepositoryClient(_ScheduledClientBase):
    """Direct-to-mirror client: the conventional (baseline) configuration."""

    def __init__(self, network: Network, src_host: str, mirror_host: str,
                 session: ScheduledFetchSession | None = None):
        super().__init__(network, src_host, session=session)
        self._mirror = mirror_host

    def _index_request(self) -> Request:
        return Request(self._mirror, "get_index")

    def _package_request(self, name: str) -> Request:
        return Request(self._mirror, "get_package", payload=name)


def deploy_policy_with_attestation(network: Network, src_host: str,
                                   tsr_host: str, policy_yaml: str,
                                   attestation_service: AttestationService,
                                   expected_mrenclave: bytes | None = None,
                                   ) -> tuple[str, RsaPublicKey]:
    """The OS-owner onboarding flow (paper Figure 7).

    Deploys a policy and verifies, via SGX remote attestation, that the
    public signing key returned really comes from the expected enclave on a
    genuine CPU.  Returns ``(repo_id, trusted_public_key)``.
    """
    response = network.call(
        src_host, Request(tsr_host, "deploy_policy", payload=policy_yaml,
                          size_bytes=len(policy_yaml))
    ).payload
    quote: EnclaveQuote = response["quote"]
    quote.verify(attestation_service, expected_mrenclave=expected_mrenclave)
    public_key = RsaPublicKey.from_pem(response["public_key_pem"])
    if quote.report_data.decode() != public_key.fingerprint():
        raise AttestationError(
            "attestation quote does not bind the returned public key"
        )
    return response["repo_id"], public_key
