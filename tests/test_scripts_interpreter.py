"""Tests for script execution against the simulated filesystem."""

import pytest

from repro.osim.fs import SimFileSystem
from repro.scripts.accounts import insecure_accounts, parse_group, parse_passwd, parse_shadow
from repro.scripts.interpreter import Interpreter
from repro.util.errors import ScriptError

BASE_PASSWD = "root:x:0:0:root:/root:/bin/ash\n"
BASE_SHADOW = "root:!:0:0:99999:7:::\n"
BASE_GROUP = "root:x:0:\n"


@pytest.fixture()
def host():
    fs = SimFileSystem()
    fs.write_file("/etc/passwd", BASE_PASSWD.encode())
    fs.write_file("/etc/shadow", BASE_SHADOW.encode())
    fs.write_file("/etc/group", BASE_GROUP.encode())
    return fs


@pytest.fixture()
def sh(host):
    return Interpreter(host)


class TestBasics:
    def test_true_false(self, sh):
        assert sh.run("true\n").exit_code == 0
        assert sh.run("false\n").exit_code == 1

    def test_echo_stdout(self, sh):
        assert sh.run("echo hello world\n").stdout == "hello world\n"

    def test_exit_stops_script(self, sh, host):
        result = sh.run("exit 3\nmkdir /never\n")
        assert result.exit_code == 3
        assert not host.exists("/never")

    def test_commands_counted(self, sh):
        assert sh.run("true\ntrue\ntrue\n").commands_run == 3

    def test_unsupported_command_rejected(self, sh):
        with pytest.raises(ScriptError):
            sh.run("curl http://evil\n")


class TestConditionals:
    def test_and_short_circuit(self, sh, host):
        sh.run("false && mkdir /no\n")
        assert not host.exists("/no")
        sh.run("true && mkdir /yes\n")
        assert host.isdir("/yes")

    def test_or_short_circuit(self, sh, host):
        sh.run("true || mkdir /no\n")
        assert not host.exists("/no")
        sh.run("false || mkdir /yes\n")
        assert host.isdir("/yes")

    def test_if_branches(self, sh, host):
        sh.run("if test -f /etc/passwd; then\n  touch /has\nelse\n  touch /hasnot\nfi\n")
        assert host.exists("/has")
        assert not host.exists("/hasnot")

    def test_if_else_taken(self, sh, host):
        sh.run("if test -f /missing; then\n  touch /a\nelse\n  touch /b\nfi\n")
        assert host.exists("/b")

    def test_test_string_comparison(self, sh):
        assert sh.run("[ abc = abc ]\n").exit_code == 0
        assert sh.run("[ abc != abc ]\n").exit_code == 1


class TestFilesystemCommands:
    def test_mkdir_chmod(self, sh, host):
        sh.run("mkdir -p /var/lib/pkg\nchmod 700 /var/lib/pkg\n")
        assert host.file_mode("/var/lib/pkg") == 0o700

    def test_cp_mv_rm(self, sh, host):
        host.write_file("/src", b"content")
        sh.run("cp /src /copy\nmv /copy /moved\nrm /src\n")
        assert host.read_file("/moved") == b"content"
        assert not host.exists("/src")

    def test_ln_sf_replaces(self, sh, host):
        host.write_file("/lib/real.so.1", b"elf1")
        host.write_file("/lib/real.so.2", b"elf2")
        sh.run("ln -s /lib/real.so.1 /lib/cur.so\nln -sf /lib/real.so.2 /lib/cur.so\n")
        assert host.read_file("/lib/cur.so") == b"elf2"

    def test_rm_f_tolerates_missing(self, sh):
        assert sh.run("rm -f /does/not/exist\n").exit_code == 0

    def test_touch_and_redirect(self, sh, host):
        sh.run("touch /var/empty\necho line > /var/new\necho more >> /var/new\n")
        assert host.read_file("/var/empty") == b""
        assert host.read_file("/var/new") == b"line\nmore\n"

    def test_install_with_mode(self, sh, host):
        host.write_file("/pkg/tool", b"#!bin")
        sh.run("install -m 755 /pkg/tool /usr/bin/tool\n")
        assert host.file_mode("/usr/bin/tool") == 0o755

    def test_setfattr_hex(self, sh, host):
        host.write_file("/bin/app", b"x")
        sh.run("setfattr -n security.ima -v 0x0301ff /bin/app\n")
        assert host.get_xattr("/bin/app", "security.ima") == b"\x03\x01\xff"


class TestTextProcessing:
    def test_pipeline_grep_wc(self, sh, host):
        host.write_file("/etc/test.conf", b"alpha\nbeta\nalpha again\n")
        result = sh.run("cat /etc/test.conf | grep alpha | wc -l\n")
        assert result.stdout == "2\n"

    def test_grep_exit_codes(self, sh):
        assert sh.run("grep -q root /etc/passwd\n").exit_code == 0
        assert sh.run("grep -q marsian /etc/passwd\n").exit_code == 1

    def test_sed_stream(self, sh, host):
        host.write_file("/f", b"hello world\n")
        assert sh.run("sed s/world/alpine/ /f\n").stdout == "hello alpine\n"

    def test_sed_in_place_changes_file(self, sh, host):
        host.write_file("/etc/app.conf", b"port=80\n")
        sh.run("sed -i s/80/8080/ /etc/app.conf\n")
        assert host.read_file("/etc/app.conf") == b"port=8080\n"

    def test_cut_fields(self, sh):
        result = sh.run("cat /etc/passwd | cut -d : -f 1\n")
        assert result.stdout == "root\n"

    def test_head(self, sh, host):
        host.write_file("/f", b"1\n2\n3\n4\n")
        assert sh.run("head -n 2 /f\n").stdout == "1\n2\n"


class TestAccountCommands:
    def test_adduser_updates_three_files(self, sh, host):
        sh.run("adduser -S -D -H -s /sbin/nologin postgres\n")
        passwd = parse_passwd(host.read_file("/etc/passwd").decode())
        shadow = parse_shadow(host.read_file("/etc/shadow").decode())
        group = parse_group(host.read_file("/etc/group").decode())
        assert "postgres" in passwd
        assert shadow["postgres"][1] == "!"  # locked password
        assert "postgres" in group

    def test_adduser_idempotent(self, sh, host):
        sh.run("adduser -S redis\nadduser -S redis\n")
        text = host.read_file("/etc/passwd").decode()
        assert text.count("redis") == 1

    def test_adduser_with_existing_group(self, sh, host):
        sh.run("addgroup -S www-data\nadduser -S -G www-data nginx\n")
        passwd = parse_passwd(host.read_file("/etc/passwd").decode())
        group = parse_group(host.read_file("/etc/group").decode())
        assert passwd["nginx"][3] == group["www-data"][2]

    def test_addgroup_member_append(self, sh, host):
        sh.run("adduser -S git\naddgroup git root\n")
        group = parse_group(host.read_file("/etc/group").decode())
        assert "git" in group["root"][3].split(",")

    def test_deterministic_ids(self, host):
        # Same script, fresh OS => byte-identical account files.
        def run_once():
            fs = SimFileSystem()
            fs.write_file("/etc/passwd", BASE_PASSWD.encode())
            fs.write_file("/etc/shadow", BASE_SHADOW.encode())
            fs.write_file("/etc/group", BASE_GROUP.encode())
            Interpreter(fs).run("adduser -S a\nadduser -S b\naddgroup -S c\n")
            return fs.read_file("/etc/passwd"), fs.read_file("/etc/group")

        assert run_once() == run_once()

    def test_order_changes_file_contents(self):
        # The paper's core observation: installation order changes uid
        # assignment, so the files differ (section 4.2).
        def run_script(script):
            fs = SimFileSystem()
            fs.write_file("/etc/passwd", BASE_PASSWD.encode())
            fs.write_file("/etc/shadow", BASE_SHADOW.encode())
            fs.write_file("/etc/group", BASE_GROUP.encode())
            Interpreter(fs).run(script)
            return fs.read_file("/etc/passwd")

        ab = run_script("adduser -S aaa\nadduser -S bbb\n")
        ba = run_script("adduser -S bbb\nadduser -S aaa\n")
        assert ab != ba

    def test_passwd_d_creates_cve_pattern(self, sh, host):
        sh.run("adduser -S -s /bin/ash backdoor\npasswd -d backdoor\n")
        risky = insecure_accounts(
            host.read_file("/etc/passwd").decode(),
            host.read_file("/etc/shadow").decode(),
        )
        assert risky == ["backdoor"]

    def test_nologin_account_not_flagged(self, sh, host):
        sh.run("adduser -S -s /sbin/nologin service\npasswd -d service\n")
        risky = insecure_accounts(
            host.read_file("/etc/passwd").decode(),
            host.read_file("/etc/shadow").decode(),
        )
        assert risky == []


class TestShellActivation:
    def test_add_shell(self, sh, host):
        sh.run("add-shell /bin/bash\n")
        assert b"/bin/bash" in host.read_file("/etc/shells")

    def test_add_shell_idempotent(self, sh, host):
        sh.run("add-shell /bin/zsh\nadd-shell /bin/zsh\n")
        assert host.read_file("/etc/shells").decode().count("/bin/zsh") == 1

    def test_remove_shell(self, sh, host):
        sh.run("add-shell /bin/tcsh\nremove-shell /bin/tcsh\n")
        assert b"/bin/tcsh" not in host.read_file("/etc/shells")
