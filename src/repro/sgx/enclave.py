"""The enclave abstraction.

An enclave wraps a *program* (any object exposing methods) behind a strict
boundary: the host calls exported entry points via :meth:`Enclave.ecall`,
and the program's state is reachable only from inside.  The measurement
(MRENCLAVE) binds the program's code identity; remote attestation produces
a quote over (MRENCLAVE, report_data) signed by the CPU's attestation key.

The adversary model from the paper — root on the TSR machine — is modelled
by :meth:`host_memory_dump`: it returns everything a root adversary can
read from the process, which by construction excludes enclave state.  Tests
assert the signing key never appears there.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass

from repro.crypto.hashes import sha256_bytes
from repro.crypto.rsa import RsaPublicKey
from repro.sgx.platform import AttestationService, SgxCpu
from repro.util.errors import AttestationError, ReproError


class EnclaveError(ReproError):
    """An ecall failed or the enclave rejected the request."""


@dataclass(frozen=True)
class EnclaveQuote:
    """Remote-attestation evidence for one enclave."""

    cpu_id: str
    mrenclave: bytes
    report_data: bytes
    signature: bytes

    def report_bytes(self) -> bytes:
        body = {
            "cpu": self.cpu_id,
            "mrenclave": self.mrenclave.hex(),
            "report_data": self.report_data.hex(),
        }
        return json.dumps(body, sort_keys=True).encode("ascii")

    def verify(self, service: AttestationService,
               expected_mrenclave: bytes | None = None) -> bool:
        """Check the quote chains to a genuine CPU (and, optionally, that
        the enclave identity matches the build the verifier expects)."""
        key: RsaPublicKey = service.attestation_key_for(self.cpu_id)
        if not key.verify(self.report_bytes(), self.signature):
            raise AttestationError("enclave quote signature invalid")
        if expected_mrenclave is not None and self.mrenclave != expected_mrenclave:
            raise AttestationError(
                "MRENCLAVE mismatch: enclave is not the expected build"
            )
        return True


def measure_program(program_class: type) -> bytes:
    """MRENCLAVE: hash of the program's code identity.

    Uses the class's qualified name and source text — a faithful stand-in
    for hashing the enclave's initial memory contents: any code change
    yields a different measurement.
    """
    try:
        source = inspect.getsource(program_class)
    except (OSError, TypeError):
        source = repr(program_class)
    identity = f"{program_class.__module__}.{program_class.__qualname__}\n{source}"
    return sha256_bytes(identity.encode())


class Enclave:
    """A loaded enclave instance hosting one program object."""

    def __init__(self, cpu: SgxCpu, program_class: type, *args, **kwargs):
        self._cpu = cpu
        self.mrenclave = measure_program(program_class)
        self._program = program_class(*args, **kwargs)
        self._destroyed = False
        # EGETKEY analog: programs that define _bind_enclave get a handle to
        # in-enclave facilities (sealing key derivation). The method is
        # private, so it is not reachable as an ecall from the host.
        bind = getattr(self._program, "_bind_enclave", None)
        if callable(bind):
            bind(self)

    # -- entry points ---------------------------------------------------------

    def ecall(self, entry_point: str, *args, **kwargs):
        """Call an exported entry point inside the enclave.

        Only public methods of the program are exported; private state and
        private methods are not reachable from the host.
        """
        if self._destroyed:
            raise EnclaveError("enclave has been destroyed")
        if entry_point.startswith("_"):
            raise EnclaveError(
                f"entry point {entry_point!r} is not exported (private)"
            )
        handler = getattr(self._program, entry_point, None)
        if handler is None or not callable(handler):
            raise EnclaveError(f"no such entry point: {entry_point!r}")
        return handler(*args, **kwargs)

    def destroy(self):
        """Tear down the enclave; in-memory state is irrecoverably lost.

        This models a TSR restart (paper section 5.5): whatever was not
        sealed to disk is gone.
        """
        self._program = None
        self._destroyed = True

    @property
    def alive(self) -> bool:
        return not self._destroyed

    # -- sealing & attestation ----------------------------------------------------

    def sealing_key(self) -> bytes:
        """The CPU+enclave-bound sealing key (usable only from inside)."""
        if self._destroyed:
            raise EnclaveError("enclave has been destroyed")
        return self._cpu.derive_sealing_key(self.mrenclave)

    def quote(self, report_data: bytes) -> EnclaveQuote:
        """Produce remote-attestation evidence carrying ``report_data``.

        TSR puts the public signing key's fingerprint in ``report_data`` so
        clients know the key they receive came from *this* enclave.
        """
        if self._destroyed:
            raise EnclaveError("enclave has been destroyed")
        unsigned = EnclaveQuote(
            cpu_id=self._cpu.cpu_id,
            mrenclave=self.mrenclave,
            report_data=report_data,
            signature=b"",
        )
        signature = self._cpu.sign_quote(unsigned.report_bytes())
        return EnclaveQuote(
            cpu_id=self._cpu.cpu_id,
            mrenclave=self.mrenclave,
            report_data=report_data,
            signature=signature,
        )

    # -- adversary surface -----------------------------------------------------------

    def host_memory_dump(self) -> dict:
        """What a root adversary sees when dumping the host process.

        Enclave memory is hardware-encrypted; the dump exposes only the
        enclave's existence and its public metadata, never program state.
        """
        return {
            "enclave_loaded": not self._destroyed,
            "mrenclave": self.mrenclave.hex(),
            "cpu_id": self._cpu.cpu_id,
            # Note: deliberately no reference to self._program state.
        }
