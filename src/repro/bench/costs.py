"""Cost constants mapping package-manager work onto simulated time.

The package manager itself does real Python work, but end-to-end install
latency (Fig. 11) is dominated by syscall-level costs our in-memory model
does not pay: fsync-backed file writes, xattr setting, fork/exec of
scripts, and package-database updates.  The constants below are calibrated
against the paper's testbed numbers (average install 110 ms from a plain
mirror, 141 ms through TSR — the delta being signature installation) and
documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.osim.pkgmgr import InstallStats


@dataclass(frozen=True)
class InstallCostModel:
    """Seconds per package-manager operation on the simulated node."""

    base_s: float = 0.030           # db lock, dependency solve, cleanup
    per_file_write_s: float = 0.0011  # write + fsync of an extracted file
    per_mib_written_s: float = 0.004  # payload streaming to disk
    per_xattr_s: float = 0.0006     # setxattr(security.ima) syscall
    per_script_s: float = 0.007     # fork/exec /bin/sh + script body
    per_db_update_s: float = 0.004  # rewrite of /lib/apk/db/installed

    def install_seconds(self, stats: InstallStats) -> float:
        """Local (non-network) time for one package-manager operation."""
        return (
            self.base_s
            + stats.files_written * self.per_file_write_s
            + (stats.bytes_written / (1024 * 1024)) * self.per_mib_written_s
            + stats.xattrs_written * self.per_xattr_s
            + stats.scripts_run * self.per_script_s
            + stats.packages * self.per_db_update_s
        )
