#!/usr/bin/env python3
"""Fleet attestation through an update wave.

A monitoring system watches a fleet of integrity-enforced nodes while a
security update rolls out.  Half the fleet updates straight from mirrors,
half through TSR.  The mirror half drowns the operator in false positives;
the TSR half stays green — and an actually compromised node still lights
up red.

Run:  python examples/fleet_attestation.py
"""

from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario

FLEET_SIZE = 6


def main():
    print("== generating a scaled Alpine-like repository ==")
    workload = generate_workload(scale=0.004, seed=7)
    scenario = build_scenario(workload=workload, key_bits=1024)
    report = scenario.refresh_report
    print(f"TSR sanitized {report.sanitized} packages "
          f"({len(report.rejected)} rejected)")
    if report.insecure_findings:
        print(f"TSR flagged insecure-account packages (CVE-2019-5021 "
              f"pattern): {report.insecure_findings}")

    # Pick an installable package that exists in the sanitized index.
    sanitized = {r.package.name for r in report.results}
    target = sorted(sanitized)[0]
    print(f"update wave will install {target!r} fleet-wide")

    print(f"\n== booting a fleet of {FLEET_SIZE} nodes ==")
    fleet = []
    for i in range(FLEET_SIZE):
        use_tsr = i % 2 == 0
        node, pm = scenario.new_node(f"node-{i:02d}", use_tsr=use_tsr)
        pm.update()
        fleet.append((node, pm, use_tsr))

    print("\n== rolling out the update ==")
    for node, pm, use_tsr in fleet:
        pm.install(target)
        pm.exercise(target)
        node.load_file("/etc/passwd")

    # One TSR node is actually compromised after the update.
    compromised_node = fleet[0][0]
    compromised_node.fs.write_file("/usr/bin/implant", b"\x7fELF implant")
    compromised_node.load_file("/usr/bin/implant")

    print("\n== monitoring sweep ==")
    print(f"{'node':<10} {'channel':<8} {'verdict':<10} violations")
    for node, _, use_tsr in fleet:
        verdict = scenario.monitor.verify_node(node)
        channel = "TSR" if use_tsr else "mirror"
        status = "TRUSTED" if verdict.trusted else "FLAGGED"
        detail = verdict.violations[0].path if verdict.violations else "-"
        print(f"{node.name:<10} {channel:<8} {status:<10} {detail}")

    rate = scenario.monitor.false_positive_rate()
    print(f"\nfraction of flagged verifications this sweep: {rate:.0%}")
    print("mirror-channel nodes are all false positives; the one red TSR "
          "node is the real implant.")


if __name__ == "__main__":
    main()
