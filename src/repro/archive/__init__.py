"""Archive formats: ustar+PAX tar, gzip segments, apk packages, APKINDEX.

Sanitization (the paper's core mechanism) rewrites real archives: it
extracts an apk's three gzip segments, modifies scripts in the control
segment, injects per-file IMA signatures as PAX extended headers into the
data segment, and re-signs the result.  This package implements those wire
formats from scratch so the sanitizer exercises the same code path the Rust
prototype did.
"""

from repro.archive.tar import TarEntry, read_tar, write_tar
from repro.archive.gz import gzip_compress, gzip_decompress, split_gzip_streams
from repro.archive.apk import ApkPackage, PackageFile, SIGNATURE_PAX_KEY
from repro.archive.index import IndexEntry, RepositoryIndex

__all__ = [
    "TarEntry",
    "read_tar",
    "write_tar",
    "gzip_compress",
    "gzip_decompress",
    "split_gzip_streams",
    "ApkPackage",
    "PackageFile",
    "SIGNATURE_PAX_KEY",
    "IndexEntry",
    "RepositoryIndex",
]
