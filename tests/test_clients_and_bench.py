"""Tests for repository clients, attested onboarding, and bench helpers."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.bench.costs import InstallCostModel
from repro.bench.report import PaperTable, record_table, recorded_tables, reset_tables
from repro.core.client import (
    MirrorRepositoryClient,
    TsrRepositoryClient,
    deploy_policy_with_attestation,
)
from repro.osim.pkgmgr import InstallStats
from repro.sgx.platform import AttestationService
from repro.simnet.latency import Continent
from repro.simnet.network import Host
from repro.util.errors import AttestationError
from repro.workload.scenario import build_scenario


def _packages():
    return [ApkPackage(name="musl", version="1.1.24-r2",
                       files=[PackageFile("/lib/ld-musl.so", b"\x7fELF")])]


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(packages=_packages(), key_bits=1024,
                          with_monitor=False)


class TestClients:
    def test_tsr_client_fetches_index_and_package(self, scenario):
        scenario.network.add_host(Host("client-host", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "client-host",
                                     scenario.tsr.hostname, scenario.repo_id)
        index = RepositoryIndex.from_bytes(client.fetch_index())
        assert index.verify(scenario.tsr_public_key)
        blob = client.fetch_package("musl")
        assert ApkPackage.parse(blob).verify([scenario.tsr_public_key])

    def test_mirror_client_fetches_upstream(self, scenario):
        scenario.network.add_host(Host("client-host-2", Continent.EUROPE))
        mirror = next(iter(scenario.mirrors))
        client = MirrorRepositoryClient(scenario.network, "client-host-2",
                                        mirror)
        index = RepositoryIndex.from_bytes(client.fetch_index())
        assert index.verify(scenario.distro_key.public_key)

    def test_clients_advance_clock(self, scenario):
        scenario.network.add_host(Host("client-host-3", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "client-host-3",
                                     scenario.tsr.hostname, scenario.repo_id)
        before = scenario.clock.now()
        client.fetch_index()
        assert scenario.clock.now() > before


class TestAttestedOnboarding:
    def test_happy_path(self, scenario):
        scenario.network.add_host(Host("owner", Continent.EUROPE))
        repo_id, key = deploy_policy_with_attestation(
            scenario.network, "owner", scenario.tsr.hostname,
            scenario.policy.to_yaml(), scenario.attestation_service,
            expected_mrenclave=scenario.tsr._enclave.mrenclave,
        )
        assert repo_id.startswith("repo-")
        assert key.fingerprint()

    def test_wrong_mrenclave_rejected(self, scenario):
        scenario.network.add_host(Host("owner-2", Continent.EUROPE))
        with pytest.raises(AttestationError):
            deploy_policy_with_attestation(
                scenario.network, "owner-2", scenario.tsr.hostname,
                scenario.policy.to_yaml(), scenario.attestation_service,
                expected_mrenclave=b"\x00" * 32,
            )

    def test_unknown_attestation_service_rejected(self, scenario):
        scenario.network.add_host(Host("owner-3", Continent.EUROPE))
        with pytest.raises(AttestationError):
            deploy_policy_with_attestation(
                scenario.network, "owner-3", scenario.tsr.hostname,
                scenario.policy.to_yaml(), AttestationService(),
            )


class TestInstallCostModel:
    def test_monotone_in_every_dimension(self):
        model = InstallCostModel()
        base = InstallStats(packages=1, files_written=2, bytes_written=1000,
                            xattrs_written=0, scripts_run=0)
        bigger = InstallStats(packages=1, files_written=20,
                              bytes_written=10_000, xattrs_written=20,
                              scripts_run=2)
        assert model.install_seconds(bigger) > model.install_seconds(base)

    def test_xattrs_add_cost(self):
        """The Fig.-11 delta driver: signature installation costs time."""
        model = InstallCostModel()
        plain = InstallStats(packages=1, files_written=10, bytes_written=10_000)
        signed = InstallStats(packages=1, files_written=10,
                              bytes_written=10_000, xattrs_written=10)
        assert model.install_seconds(signed) > model.install_seconds(plain)

    def test_typical_regime_matches_paper_order(self):
        model = InstallCostModel()
        typical = InstallStats(packages=1, files_written=15,
                               bytes_written=150_000, xattrs_written=15,
                               scripts_run=1)
        seconds = model.install_seconds(typical)
        assert 0.03 < seconds < 0.3  # the paper's ~100-200 ms regime


class TestPaperTable:
    def test_render_and_record(self):
        reset_tables()
        table = PaperTable(experiment="Table X", title="demo",
                           columns=["a", "b"])
        table.add_row(1, "two")
        table.note("a note")
        record_table(table)
        rendered = recorded_tables()[0].render()
        assert "Table X" in rendered
        assert "a note" in rendered
        reset_tables()
        assert recorded_tables() == []

    def test_row_arity_checked(self):
        table = PaperTable(experiment="T", title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_alignment(self):
        table = PaperTable(experiment="T", title="t",
                           columns=["name", "value"])
        table.add_row("a-very-long-cell", 1)
        table.add_row("b", 22222)
        lines = table.render().splitlines()
        # Header and rows share the same separator column position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1
