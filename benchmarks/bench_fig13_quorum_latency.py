"""Figure 13 — latency of downloading the metadata index via quorum.

Paper (TSR in Europe, official Alpine mirrors): < 400 ms with up to five
same-continent mirrors; < 1.2 s with ten; mirrors spread across three
continents behave like the North-America set (~ fastest f+1 win) and nine
cross-continent mirrors reach ~2.2 s.

Setup: a full-scale (11,581-entry) metadata index served by synthetic
mirrors; the TSR host's downlink is shared across concurrent fetches and
each mirror pays a TLS-handshake delay of two extra RTTs.
"""

import pytest

from repro.archive.index import IndexEntry, RepositoryIndex
from repro.bench.report import PaperTable, record_table
from repro.core.policy import MirrorPolicyEntry
from repro.core.quorum import QuorumReader
from repro.crypto.rsa import generate_keypair
from repro.simnet.latency import Continent, LatencyModel
from repro.simnet.network import Host, Network
from repro.util.stats import human_duration

_TSR_DOWNLINK = 11 * 1024 * 1024  # bytes/s; calibrated in EXPERIMENTS.md

_SCENARIOS = {
    "Europe": [Continent.EUROPE],
    "North America": [Continent.NORTH_AMERICA],
    "Asia": [Continent.ASIA],
    "All": [Continent.EUROPE, Continent.NORTH_AMERICA, Continent.ASIA],
}


@pytest.fixture(scope="module")
def signed_index_bytes():
    key = generate_keypair(1024, seed=13)
    index = RepositoryIndex(serial=42)
    for i in range(11581):
        index.add(IndexEntry(
            name=f"pkg-{i:05d}", version="1.0-r0", size=250_000,
            sha256=f"{i:064x}",
        ))
    index.sign(key)
    return index.to_bytes(), key.public_key


def _measure(index_bytes, public_key, continents, count) -> float:
    network = Network(latency=LatencyModel(seed=5))
    network.timeout = 60.0
    network.add_host(Host("tsr.eu", Continent.EUROPE,
                          downlink_bandwidth=_TSR_DOWNLINK))
    mirrors = []
    for i in range(count):
        continent = continents[i % len(continents)]
        name = f"mirror-{i}"
        handler = lambda op, payload, blob=index_bytes: (blob, len(blob))
        handshake = 2 * network.latency.base_rtt(Continent.EUROPE, continent)
        network.add_host(Host(name, continent, handler=handler,
                              extra_delay=handshake,
                              bandwidth=_TSR_DOWNLINK))
        mirrors.append(MirrorPolicyEntry(hostname=name, continent=continent))
    reader = QuorumReader(network, "tsr.eu", mirrors, [public_key])
    return reader.read_index().elapsed


def test_fig13_quorum_latency(signed_index_bytes, benchmark):
    index_bytes, public_key = signed_index_bytes
    counts = list(range(1, 11))

    def sweep():
        series = {}
        for label, continents in _SCENARIOS.items():
            series[label] = [
                _measure(index_bytes, public_key, continents, n)
                for n in counts
            ]
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = PaperTable(
        experiment="Figure 13",
        title="Metadata index latency vs mirror count (simulated)",
        columns=["mirrors", *(label for label in _SCENARIOS)],
    )
    for idx, n in enumerate(counts):
        table.add_row(n, *(human_duration(series[label][idx])
                           for label in _SCENARIOS))
    table.note("paper anchors: <=5 same-continent < 400 ms; 10 mirrors "
               "< 1.2 s; 9 cross-continent ~ 2.2 s; All ~ North America")
    record_table(table)

    eu = series["Europe"]
    asia = series["Asia"]
    all_mix = series["All"]
    na = series["North America"]
    # Paper anchor: up to five same-continent mirrors stay under 400 ms.
    assert all(latency < 0.4 for latency in eu[:5])
    # Ten mirrors stay in the paper's ~1.2 s regime.
    assert eu[9] < 1.5
    # Latency grows with the mirror count (quorum widens).
    assert eu[9] > eu[0]
    # Cross-continent sets are slower than same-continent ones.
    assert asia[8] > eu[8]
    # "All" behaves like the faster continents, not like Asia: TSR contacts
    # the fastest f+1 mirrors first.
    assert all_mix[8] < asia[8]
    assert abs(all_mix[8] - na[8]) < 0.5 * asia[8]
