"""Interpreter executing parsed scripts against a filesystem-like host.

The host is whatever object provides the :class:`ScriptHost` surface — in
practice the simulated OS filesystem (:class:`repro.osim.fs.SimFileSystem`).
The interpreter captures stdout, threads pipeline text between commands, and
applies output redirections through the host so every filesystem effect is
visible to the integrity-measurement layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.scripts import commands as command_table
from repro.scripts.parser import parse_script
from repro.scripts.shell_ast import (
    Command,
    ConditionalList,
    IfStatement,
    Pipeline,
    Script,
    Statement,
)
from repro.util.errors import ScriptError


@runtime_checkable
class ScriptHost(Protocol):
    """Filesystem surface the interpreter executes against."""

    def exists(self, path: str) -> bool: ...
    def isfile(self, path: str) -> bool: ...
    def isdir(self, path: str) -> bool: ...
    def read_file(self, path: str) -> bytes: ...
    def write_file(self, path: str, data: bytes, mode: int | None = None) -> None: ...
    def append_file(self, path: str, data: bytes) -> None: ...
    def mkdir(self, path: str, parents: bool = False) -> None: ...
    def remove(self, path: str, recursive: bool = False) -> None: ...
    def symlink(self, target: str, link: str) -> None: ...
    def chmod(self, path: str, mode: int) -> None: ...
    def rename(self, src: str, dst: str) -> None: ...
    def touch(self, path: str) -> None: ...
    def set_xattr(self, path: str, name: str, value: bytes) -> None: ...


@dataclass
class ExecutionResult:
    """Outcome of running a script."""

    exit_code: int
    stdout: str
    commands_run: int


class _ExitSignal(Exception):
    def __init__(self, code: int):
        super().__init__(f"exit {code}")
        self.code = code


@dataclass
class _Context:
    host: ScriptHost
    stdout: list[str] = field(default_factory=list)
    commands_run: int = 0


class Interpreter:
    """Executes the shell subset; raises :class:`ScriptError` on anything
    outside the supported command set (strict by design — TSR rejects what
    it cannot reason about)."""

    def __init__(self, host: ScriptHost):
        self._host = host

    def run(self, script: Script | str) -> ExecutionResult:
        if isinstance(script, str):
            script = parse_script(script)
        context = _Context(host=self._host)
        try:
            code = self._run_statements(script.statements, context)
        except _ExitSignal as signal:
            code = signal.code
        return ExecutionResult(
            exit_code=code,
            stdout="".join(context.stdout),
            commands_run=context.commands_run,
        )

    # -- execution ----------------------------------------------------------

    def _run_statements(self, statements: list[Statement], context: _Context) -> int:
        code = 0
        for statement in statements:
            code = self._run_statement(statement, context)
        return code

    def _run_statement(self, statement: Statement, context: _Context) -> int:
        if isinstance(statement, IfStatement):
            condition = self._run_conditional(statement.condition, context)
            if condition == 0:
                return self._run_statements(statement.then_body, context)
            if statement.else_body:
                return self._run_statements(statement.else_body, context)
            return 0
        return self._run_conditional(statement, context)

    def _run_conditional(self, conditional: ConditionalList, context: _Context) -> int:
        code = self._run_pipeline(conditional.pipelines[0], context)
        for connector, pipeline in zip(conditional.connectors,
                                       conditional.pipelines[1:]):
            if connector == "&&" and code != 0:
                continue
            if connector == "||" and code == 0:
                continue
            code = self._run_pipeline(pipeline, context)
        return code

    def _run_pipeline(self, pipeline: Pipeline, context: _Context) -> int:
        stdin = ""
        code = 0
        last = len(pipeline.commands) - 1
        for index, command in enumerate(pipeline.commands):
            code, output = self._run_command(command, stdin, context)
            if index != last:
                stdin = output
            else:
                self._deliver_output(command, output, context)
        return code

    def _run_command(self, command: Command, stdin: str,
                     context: _Context) -> tuple[int, str]:
        implementation = command_table.lookup(command.name)
        if implementation is None:
            raise ScriptError(
                f"unsupported command {command.name!r} at line {command.line}"
            )
        context.commands_run += 1
        code, output = implementation(context.host, command.args, stdin)
        if code == command_table.EXIT_REQUESTED:
            raise _ExitSignal(int(output or "0"))
        return code, output

    def _deliver_output(self, command: Command, output: str, context: _Context):
        if command.redirect is None:
            context.stdout.append(output)
            return
        data = output.encode()
        if command.redirect.append and self._host.exists(command.redirect.path):
            self._host.append_file(command.redirect.path, data)
        else:
            self._host.write_file(command.redirect.path, data)
