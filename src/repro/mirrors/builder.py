"""Helpers wiring repositories and mirrors onto the simulated network."""

from __future__ import annotations

from dataclasses import dataclass

from repro.mirrors.mirror import Mirror, MirrorBehavior
from repro.mirrors.repository import OriginalRepository
from repro.simnet.latency import Continent, DEFAULT_BANDWIDTH_BYTES_PER_S
from repro.simnet.network import Host, Network


@dataclass(frozen=True)
class MirrorSpec:
    """Deployment description of one mirror."""

    name: str
    continent: Continent
    behavior: MirrorBehavior = MirrorBehavior.HONEST
    pinned_serial: int | None = None
    bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_S


def build_mirror_network(origin: OriginalRepository, specs: list[MirrorSpec],
                         network: Network) -> dict[str, Mirror]:
    """Instantiate mirrors and register them as network hosts."""
    mirrors: dict[str, Mirror] = {}
    for spec in specs:
        mirror = Mirror(spec.name, origin, behavior=spec.behavior,
                        pinned_serial=spec.pinned_serial,
                        bandwidth=spec.bandwidth)
        mirrors[spec.name] = mirror
        network.add_host(Host(
            name=spec.name,
            continent=spec.continent,
            handler=mirror.handle,
            bandwidth=spec.bandwidth,
        ))
    return mirrors


def sync_all(mirrors: dict[str, Mirror]):
    """Propagate the origin's latest snapshot to every (honest) mirror."""
    for mirror in mirrors.values():
        mirror.sync()
