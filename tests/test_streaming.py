"""Streaming-scale differential suite: the event-stream solver API,
lazy trace generation, the retirable client fleet, and the streaming
replay mode.

The contract under test everywhere: streaming is a *memory*
representation change, not a behaviour change.  Transfer timings are
bit-identical to the one-shot solve (the stream replays the same
engine on the same enqueues), discrete replay outcomes (installs,
served serials, published bytes) are exact, and metric sums differ only
by float re-association; solver/fleet state must track the *active*
streams, not the whole history.
"""

import math
import random

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.simnet.schedule import ParallelTransferSchedule
from repro.workload.generator import (
    StreamingTrace,
    Trace,
    TraceEvent,
    generate_trace,
)
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    ClientFleet,
    build_scenario,
    multi_tenant_refresh,
)


# -- solver event stream -------------------------------------------------------


def _random_plan(rng):
    """A multi-wave enqueue plan: (channel, key, setup, size, bandwidth,
    wave offset) tuples grouped into nondecreasing wave instants."""
    waves = []
    at = 0.0
    for w in range(rng.randint(2, 5)):
        at += rng.uniform(0.0, 4.0)
        items = []
        for i in range(rng.randint(1, 6)):
            channel = f"ch-{rng.randint(0, 5)}"
            items.append((
                channel,
                ("k", w, i),
                rng.uniform(0.0, 0.5),
                rng.choice((0, rng.randint(1, 500_000))),
                rng.uniform(0.5, 20.0),
            ))
        waves.append((at, items))
    return waves


class TestScheduleStream:
    def test_stream_matches_one_shot_solve_exactly(self):
        for seed in range(12):
            rng = random.Random(f"stream-diff:{seed}")
            waves = _random_plan(rng)
            capacity = rng.uniform(5.0, 40.0)

            control = ParallelTransferSchedule(downlink_bandwidth=capacity)
            streamed = ParallelTransferSchedule(downlink_bandwidth=capacity)
            stream = streamed.stream(0.0)
            collected = {}
            for at, items in waves:
                stream.advance_to(at)
                collected.update(stream.drain())
                for channel, key, setup, size, bandwidth in items:
                    gap = stream.channel_free(channel)
                    if gap is None:
                        gap = 0.0
                    elif gap == math.inf:
                        gap = at  # live channel: no wave gap
                    extra = max(0.0, at - gap) if gap != at else 0.0
                    control.enqueue(channel, key, setup + extra, size,
                                    bandwidth)
                    streamed.enqueue(channel, key, setup + extra, size,
                                     bandwidth)
            collected.update(stream.solve_pending())

            reference = control.solve()
            assert set(collected) == set(reference)
            for key, timing in reference.items():
                assert collected[key].start == timing.start, (seed, key)
                assert collected[key].finish == timing.finish, (seed, key)

    def test_retirement_bounds_live_state(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=100.0)
        stream = schedule.stream(0.0)
        for wave in range(50):
            at = float(wave)
            stream.advance_to(at)
            stream.drain()
            # Each wave uses fresh channels; old ones must retire.
            for i in range(4):
                schedule.enqueue(f"c-{wave}-{i}", ("k", wave, i),
                                 at + 0.01, 10, 50.0)
            stats = stream.stats()
            assert stats["live_channels"] <= 8
            assert stats["queued_cells"] <= 8
        stream.advance_to(51.0)
        stream.drain()
        stats = stream.stats()
        assert stats["live_channels"] == 0
        assert stats["pending_items"] == 0
        assert stats["total_settled"] == stats["total_enqueued"] == 200
        # Slots are recycled, not grown per channel.
        assert stats["free_slots"] <= 8

    def test_frontier_rules(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        stream = schedule.stream(0.0)
        stream.advance_to(5.0)
        with pytest.raises(ValueError):
            stream.advance_to(4.0)
        # An enqueue whose setup ends before the frontier is rejected:
        # the stream cannot rewrite already-settled history.
        with pytest.raises(ValueError):
            schedule.enqueue("late", ("late", 0), 1.0, 100, 5.0)

    def test_channel_free_and_forget(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        stream = schedule.stream(0.0)
        schedule.enqueue("a", ("a", 0), 0.5, 10, 5.0)
        assert stream.channel_free("a") == math.inf
        assert stream.channel_free("never") is None
        with pytest.raises(ValueError):
            stream.forget_channel("a")
        stream.advance_to(100.0)
        timings = stream.drain()
        assert stream.channel_free("a") == timings[("a", 0)].finish
        stream.forget_channel("a")
        assert stream.channel_free("a") is None

    def test_streaming_schedule_guards(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        schedule.enqueue("a", ("a", 0), 0.0, 10, 5.0)
        with pytest.raises(RuntimeError):
            schedule.stream(0.0)  # not empty

        fresh = ParallelTransferSchedule(downlink_bandwidth=10.0)
        fresh.stream(1.0)
        with pytest.raises(RuntimeError):
            fresh.stream(1.0)  # already streaming
        with pytest.raises(ValueError):
            fresh.solve(start_time=0.0)  # wrong plan origin
        with pytest.raises(RuntimeError):
            fresh.solve_reference()
        fresh.limit_channel("a", 4.0)
        fresh.limit_channel("a", 4.0)  # same cap: fine
        with pytest.raises(ValueError):
            fresh.limit_channel("a", 8.0)  # cap changes need re-solving

    def test_solve_on_stream_reports_pending(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=10.0)
        stream = schedule.stream(0.0)
        schedule.enqueue("a", ("a", 0), 0.0, 100, 5.0)
        schedule.enqueue("a", ("a", 1), 0.0, 100, 5.0)
        mid = schedule.solve()
        assert set(mid) == {("a", 0), ("a", 1)}
        stream.advance_to(1000.0)
        drained = stream.drain()
        for key, timing in drained.items():
            assert mid[key].start == timing.start
            assert mid[key].finish == timing.finish
        # Drained items vanish from subsequent mid-plan solves.
        assert schedule.solve() == {}


# -- streaming trace generation ------------------------------------------------


class TestStreamingTrace:
    KW = dict(
        rounds=7, interval=1.0, publish_fraction=0.2,
        sync_lag=0.1, refresh_lag=0.3, pull_lag=2.4,  # overlapping rounds
        mirror_names=["m1", "m2", "m3"],
        lagging_mirrors={"m2": 0.7}, frozen_mirrors=("m3",),
        fleet_size=9, clients_per_wave=4, seed=21,
    )

    def test_streamed_order_matches_materialized(self):
        materialized = generate_trace(**self.KW)
        streamed = generate_trace(**self.KW, streaming=True)
        assert isinstance(streamed, StreamingTrace)
        assert list(streamed.iter_events()) == materialized.ordered()
        assert streamed.horizon == materialized.horizon
        assert streamed.rounds() == materialized.rounds()

    def test_iter_events_is_restartable(self):
        streamed = generate_trace(**self.KW, streaming=True)
        assert list(streamed.iter_events()) == list(streamed.iter_events())

    def test_rotation_covers_every_client(self):
        streamed = generate_trace(**self.KW, streaming=True)
        pulled = set()
        per_wave = []
        for event in streamed.iter_events():
            if event.kind == "fleet_pull":
                assert event.clients is not None
                per_wave.append(len(event.clients))
                pulled.update(event.clients)
        assert pulled == set(range(9))
        assert all(count == 4 for count in per_wave)

    def test_rotation_validation(self):
        with pytest.raises(ValueError):
            generate_trace(rounds=2, interval=1.0, fleet_size=10)
        with pytest.raises(ValueError):
            generate_trace(rounds=2, interval=1.0, clients_per_wave=3)

    def test_ordered_cache_returns_same_object(self):
        trace = generate_trace(rounds=3, interval=1.0)
        first = trace.ordered()
        assert trace.ordered() is first  # no re-sort per access
        trace.events.append(TraceEvent(at=99.0, kind="publish"))
        second = trace.ordered()
        assert second is not first
        assert second[-1].at == 99.0
        assert trace.ordered() is second

    def test_trace_iter_events_matches_ordered(self):
        trace = generate_trace(rounds=3, interval=1.0)
        assert list(trace.iter_events()) == trace.ordered()


# -- lazy / retirable fleet ----------------------------------------------------


def _mini_packages(count=8, reps=1500):
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=[PackageFile(f"/usr/bin/pkg{i}",
                               (b"\x7fELF" + bytes([i])) * reps)],
        ))
    return packages


def _replay_scenario():
    scenario = build_scenario(packages=_mini_packages(), refresh=False,
                              with_monitor=False)
    multi_tenant_refresh(scenario)  # bootstrap publication
    return scenario


class TestLazyFleet:
    def test_lazy_boots_on_demand(self):
        scenario = _replay_scenario()
        fleet = ClientFleet(scenario, 10, name_prefix="lazy", lazy=True)
        assert fleet.booted_total == 0
        assert fleet.active_count == 0
        client = fleet.client(3)
        assert client.name == "lazy-003"
        assert fleet.client(3) is client  # cached, not re-booted
        assert fleet.booted_total == 1
        assert "lazy-003" in scenario.nodes
        assert fleet.subset([3, 7]) == [client, fleet.client(7)]
        assert fleet.booted_total == 2
        assert [c.name for c in fleet.clients] == ["lazy-003", "lazy-007"]
        with pytest.raises(IndexError):
            fleet.client(10)

    def test_retire_releases_node_and_keeps_stats(self):
        scenario = _replay_scenario()
        fleet = ClientFleet(scenario, 4, name_prefix="ret", lazy=True,
                            delta_updates=True)
        client = fleet.client(1)
        client.manager.update()
        client.manager.install("pkg-01")
        before = fleet.delta_stats().as_dict()
        fleet.retire(1)
        assert fleet.active_count == 0
        assert "ret-001" not in scenario.nodes
        with pytest.raises(Exception):
            scenario.network.host("ret-001")
        # Accounting of the retired client survives its node.
        assert fleet.delta_stats().as_dict() == before
        fleet.retire(1)  # idempotent

    def test_set_as_of_applies_at_boot(self):
        scenario = _replay_scenario()
        fleet = ClientFleet(scenario, 3, name_prefix="asof", lazy=True)
        fleet.set_as_of(12.5)
        assert fleet.client(0).manager.client.as_of == 12.5
        fleet.set_as_of(14.0)
        assert fleet.client(0).manager.client.as_of == 14.0
        assert fleet.client(1).manager.client.as_of == 14.0

    def test_eager_fleet_unchanged(self):
        scenario = _replay_scenario()
        fleet = ClientFleet(scenario, 3, name_prefix="eager")
        assert fleet.booted_total == 3
        assert len(fleet.clients) == 3
        assert fleet.client(2).name == "eager-002"


# -- streaming replay differential --------------------------------------------


def _assert_replay_equivalent(materialized, streaming):
    """Discrete outcomes exact; folded metric sums equal up to float
    re-association; percentiles within the sketch's error contract."""
    for attr in ("rounds", "clients", "installs", "failed_pulls",
                 "failed_installs", "client_wire_bytes", "downloaded_bytes",
                 "deduped_downloads", "evicted_redownloads", "prescans",
                 "pull_wire_bytes", "publishes"):
        assert getattr(materialized, attr) == getattr(streaming, attr), attr
    for attr in ("wall_elapsed", "horizon", "staleness_mean",
                 "staleness_max", "availability_mean", "availability_max"):
        assert getattr(streaming, attr) == pytest.approx(
            getattr(materialized, attr), rel=1e-9, abs=1e-9), attr
    folded = streaming.streaming
    assert folded is not None
    assert folded.staleness_sketch.count == streaming.clients
    # Windowed fold conserves total stale mass.
    assert sum(folded.window_stale_seconds) == pytest.approx(
        folded.staleness_sum, rel=1e-9, abs=1e-9)
    exact_samples = [
        latency
        for timeline in materialized.timelines.values()
        for latency in timeline.availability.values()
        if latency is not None
    ]
    assert folded.availability_count == len(exact_samples)
    # Quantile surface: sketch rank error, loose value check here (the
    # sketch suite pins the tight bound).
    for q in (5, 50, 95):
        assert streaming.staleness_quantile(q) == pytest.approx(
            materialized.staleness_quantile(q), rel=0.25, abs=1e-6)
        assert streaming.availability_quantile(q) == pytest.approx(
            materialized.availability_quantile(q), rel=0.25, abs=1e-6)


class TestStreamingReplay:
    def test_whole_fleet_trace_equivalence(self):
        kwargs = dict(rounds=4, interval=3.0, publish_fraction=0.2, seed=5)
        materialized = replay_trace(
            _replay_scenario(), generate_trace(**kwargs),
            clients=6, mode="interleaved")
        streaming = replay_trace(
            _replay_scenario(), generate_trace(**kwargs, streaming=True),
            clients=6, mode="streaming")
        _assert_replay_equivalent(materialized, streaming)
        # Whole-fleet waves boot everyone; nothing retires before the end.
        assert streaming.streaming.clients_booted == 6

    def test_rotating_fleet_equivalence_and_retirement(self):
        kwargs = dict(rounds=8, interval=3.0, publish_fraction=0.2, seed=5,
                      fleet_size=12, clients_per_wave=3)
        scenario_m = _replay_scenario()
        materialized = replay_trace(
            scenario_m, generate_trace(**kwargs),
            clients=12, mode="interleaved")
        scenario_s = _replay_scenario()
        streaming = replay_trace(
            scenario_s, generate_trace(**kwargs, streaming=True),
            clients=12, mode="streaming")
        _assert_replay_equivalent(materialized, streaming)

        # Served bytes are byte-identical across modes.
        assert scenario_m.tsr.get_index_bytes(scenario_m.repo_id) == \
            scenario_s.tsr.get_index_bytes(scenario_s.repo_id)

        folded = streaming.streaming
        assert folded.clients_booted == 12
        # Solver state tracked the wave size, not the fleet size.
        assert folded.peak_live_channels <= 3 + len(scenario_s.mirrors) + 2
        # Rotated-out clients' nodes were torn down mid-replay: of the
        # 12 booted, only the tail waves' clients may survive.
        survivors = [name for name in scenario_s.nodes
                     if name.startswith("replay-")]
        assert len(survivors) <= 6

    def test_streaming_report_shape(self):
        kwargs = dict(rounds=3, interval=3.0, seed=9,
                      fleet_size=6, clients_per_wave=2)
        report = replay_trace(
            _replay_scenario(), generate_trace(**kwargs, streaming=True),
            clients=6, mode="streaming")
        assert report.mode == "streaming"
        assert report.timelines == {}
        assert report.refresh_rounds == []
        assert report.rounds == 3
        folded = report.streaming
        assert folded.refresh_totals["rounds"] == 3
        assert folded.window_seconds == 3.0
        assert folded.final_stream_stats["settled_undrained"] == 0
        # Sketches serialize (the bench artifact path).
        payload = folded.staleness_sketch.to_dict()
        assert payload["count"] == report.clients

    def test_streaming_rejects_unknown_mode_kwarg_surface(self):
        with pytest.raises(ValueError):
            replay_trace(_replay_scenario(),
                         generate_trace(rounds=1, interval=1.0),
                         clients=2, mode="nonsense")
