"""The integrity monitoring system (paper Figure 6, component B).

Remotely verifies fleets of integrity-enforced nodes: challenges each node
with a nonce, checks the TPM quote, replays the IMA measurement list
against PCR 10, and appraises every measured file — either against the
known-good baseline whitelist or against digital signatures from trusted
keys (the TSR signing key after Figure 7's onboarding).
"""

from repro.attest.monitor import (
    MonitoringSystem,
    VerificationReport,
    Violation,
    baseline_whitelist,
)

__all__ = [
    "MonitoringSystem",
    "VerificationReport",
    "Violation",
    "baseline_whitelist",
]
