"""Probabilistic prime generation for RSA key material.

Miller-Rabin with 40 rounds gives a < 2^-80 error probability, which is the
standard engineering choice. A small-prime sieve rejects most candidates
cheaply before the expensive witness loop runs.
"""

from __future__ import annotations

import random

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227,
    229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349,
]

MILLER_RABIN_ROUNDS = 40


def is_probable_prime(candidate: int, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test with a small-prime pre-filter."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False
    rng = rng or random.Random()
    # Write candidate - 1 as d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(MILLER_RABIN_ROUNDS):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits and top two bits set.

    Setting the two most significant bits guarantees that the product of two
    such primes has exactly ``2 * bits`` bits, which keeps RSA modulus (and
    therefore signature) sizes deterministic — the paper's 256-byte
    signatures per file depend on that.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2))  # exact bit length
        candidate |= 1  # odd
        if is_probable_prime(candidate, rng):
            return candidate
