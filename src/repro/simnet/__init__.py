"""Deterministic network simulation.

The paper's latency experiments (Figs. 10, 11, 13, Table 3) depend on
geography (mirrors across Asia / Europe / North America), bandwidth, and
host failures.  This package provides a simulated clock, a continent-level
latency model calibrated to the paper's reported numbers, and a synchronous
request/response transport with failure injection.

Simulated time never mixes with wall-clock time: everything here advances a
:class:`SimClock`, and the bench harness labels such results "simulated".
"""

from repro.simnet.clock import SimClock
from repro.simnet.latency import Continent, LatencyModel, DEFAULT_LATENCY_MODEL
from repro.simnet.network import (
    Host,
    Network,
    Request,
    Response,
    ScheduledFetchSession,
    TransferProbe,
)
from repro.simnet.schedule import (
    ParallelTransferSchedule,
    TransferTiming,
    max_min_rates,
)

__all__ = [
    "SimClock",
    "Continent",
    "LatencyModel",
    "DEFAULT_LATENCY_MODEL",
    "Host",
    "Network",
    "ParallelTransferSchedule",
    "Request",
    "Response",
    "ScheduledFetchSession",
    "TransferProbe",
    "TransferTiming",
    "max_min_rates",
]
