"""Synthetic Alpine-like workloads calibrated to the paper's statistics.

The paper evaluates on Alpine v3.11 main + community: 11,581 packages,
~3 GB, with the script census of Tables 1-2 and the size / file-count
distributions behind Figs. 8-9.  This package samples synthetic package
populations from those published distributions (details in EXPERIMENTS.md);
``scale`` shrinks the population while preserving proportions.

Beyond single rounds, :mod:`repro.workload.generator` also builds
timestamped multi-round :class:`Trace` event streams and
:mod:`repro.workload.replay` replays them — serially or as one plan-wide
interleaved schedule — measuring per-client staleness and update
availability (EXPERIMENTS.md §7).
"""

from repro.workload.generator import (
    GeneratedWorkload,
    Trace,
    TraceEvent,
    WorkloadExpectation,
    evolve_packages,
    generate_trace,
    generate_workload,
    generate_update_batch,
    PAPER_TOTALS,
)
from repro.workload.replay import (
    TraceReplay,
    TraceReplayReport,
    replay_trace,
)
from repro.workload.scenario import (
    ClientFleet,
    FleetRefreshReport,
    Scenario,
    build_multi_tenant_scenario,
    build_scenario,
    fleet_refresh,
    multi_tenant_refresh,
    run_pull_wave,
)

__all__ = [
    "GeneratedWorkload",
    "Trace",
    "TraceEvent",
    "WorkloadExpectation",
    "evolve_packages",
    "generate_trace",
    "generate_workload",
    "generate_update_batch",
    "PAPER_TOTALS",
    "TraceReplay",
    "TraceReplayReport",
    "replay_trace",
    "ClientFleet",
    "FleetRefreshReport",
    "Scenario",
    "build_multi_tenant_scenario",
    "build_scenario",
    "fleet_refresh",
    "multi_tenant_refresh",
    "run_pull_wave",
]
