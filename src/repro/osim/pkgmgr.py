"""The apk-like package manager.

Implements the client side of the update pipeline (paper section 2.2):
fetch and verify the signed metadata index, resolve dependencies, download
packages, verify size + hash against the index and the package signature
against the trusted keyring, run installation scripts through the shell
interpreter, and extract files — transparently materialising PAX
``security.ima`` records as filesystem xattrs, exactly what GNU tar does on
a real system (paper section 5.3).

TSR transparency (paper section 4.3) shows up here as an interface: the
package manager talks to any :class:`RepositoryClient`, and a TSR instance
is just another repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.archive.apk import ApkPackage, ParsedApk, parse_apk_cached_with_cost
from repro.archive.index import (
    IndexEntry,
    RepositoryIndex,
    parse_index_cached,
)
from repro.core.delta import (
    apply_index_delta,
    apply_package_delta,
    parse_index_delta_envelope,
    parse_package_delta_envelope,
)
from repro.crypto.hashes import sha256_hex
from repro.crypto.rsa import RsaPublicKey
from repro.osim.os import IntegrityEnforcedOS
from repro.osim.pkgdb import InstalledPackage
from repro.osim.version import is_newer
from repro.scripts.interpreter import Interpreter
from repro.util.errors import (
    DeltaError,
    IntegrityError,
    PackageManagerError,
    PackagingError,
    RollbackError,
    SignatureError,
)


#: Full-pull reasons that mean "the answer I just got was bad", not
#: merely "no delta was possible".  These re-pulls bypass an edge
#: replica via the client's ``fetch_*_origin`` surface (when it has
#: one), so a tampering or rolled-back replica cannot answer its own
#: recovery traffic.
_RECOVERY_REASONS = frozenset({"rejected", "rollback-rejected"})


class RepositoryClient(Protocol):
    """Anything a package manager can download from.

    Clients may additionally offer the scheduled batch surface
    (``fetch_packages`` / ``fetch_index_and_packages``, as the clients in
    :mod:`repro.core.client` do); :meth:`PackageManager.install_batch`
    detects and uses it to overlap the index refresh with package
    downloads on one transfer schedule, and falls back to serial fetches
    otherwise.
    """

    def fetch_index(self) -> bytes: ...
    def fetch_package(self, name: str) -> bytes: ...


@dataclass
class InstallStats:
    """Accounting for one package-manager operation (feeds the latency
    cost model of the Fig. 11 bench)."""

    packages: int = 0
    files_written: int = 0
    bytes_written: int = 0
    xattrs_written: int = 0
    scripts_run: int = 0
    bytes_downloaded: int = 0
    #: Bytes that actually crossed the network for this operation.  Equal
    #: to ``bytes_downloaded`` (logical blob bytes) for full pulls;
    #: smaller when delta updates reconstructed blobs from deltas.
    bytes_on_wire: int = 0
    operations: list[str] = field(default_factory=list)


@dataclass
class DeltaStats:
    """One package manager's delta-update accounting across operations.

    Fallback dicts count full pulls by reason — the server-tagged reasons
    (``depth``, ``unknown-base``, ``not-smaller``, …) plus the client-side
    ``no-base`` (nothing cached to delta against) and ``rejected`` (an
    envelope that failed to apply or verify; the adversarial tests pin
    that every rejection is followed by a clean full-pull recovery).
    """

    index_deltas: int = 0
    index_unchanged: int = 0
    index_rejected: int = 0
    index_rollbacks: int = 0
    index_full: dict[str, int] = field(default_factory=dict)
    package_deltas: int = 0
    package_rejected: int = 0
    package_full: dict[str, int] = field(default_factory=dict)
    #: Installs satisfied by the cached base without any transfer.
    base_reuses: int = 0
    index_wire_bytes: int = 0
    package_wire_bytes: int = 0

    @staticmethod
    def _bump(counter: dict[str, int], reason: str):
        counter[reason] = counter.get(reason, 0) + 1

    def merge(self, other: "DeltaStats"):
        self.index_deltas += other.index_deltas
        self.index_unchanged += other.index_unchanged
        self.index_rejected += other.index_rejected
        self.index_rollbacks += other.index_rollbacks
        self.package_deltas += other.package_deltas
        self.package_rejected += other.package_rejected
        self.base_reuses += other.base_reuses
        self.index_wire_bytes += other.index_wire_bytes
        self.package_wire_bytes += other.package_wire_bytes
        for reason, count in other.index_full.items():
            self.index_full[reason] = self.index_full.get(reason, 0) + count
        for reason, count in other.package_full.items():
            self.package_full[reason] = \
                self.package_full.get(reason, 0) + count

    def as_dict(self) -> dict:
        return {
            "index_deltas": self.index_deltas,
            "index_unchanged": self.index_unchanged,
            "index_rejected": self.index_rejected,
            "index_rollbacks": self.index_rollbacks,
            "index_full": dict(self.index_full),
            "package_deltas": self.package_deltas,
            "package_rejected": self.package_rejected,
            "package_full": dict(self.package_full),
            "base_reuses": self.base_reuses,
            "index_wire_bytes": self.index_wire_bytes,
            "package_wire_bytes": self.package_wire_bytes,
        }


class PackageManager:
    """The OS-side update client."""

    def __init__(self, node: IntegrityEnforcedOS, client: RepositoryClient,
                 trusted_keys: list[RsaPublicKey],
                 delta_updates: bool = False):
        self._node = node
        self._client = client
        self.trusted_keys = list(trusted_keys)
        self._index: RepositoryIndex | None = None
        self._interpreter = Interpreter(node.fs)
        #: Blobs downloaded ahead of time by :meth:`install_batch`;
        #: consumed (and verified) by ``_download_verified``.
        self._prefetched: dict[str, bytes] = {}
        #: Delta updates: fetch index diffs and chunked package patches
        #: against locally cached bases when the client supports it,
        #: falling back to full pulls whenever a delta is unavailable or
        #: fails to verify.  Installed bytes are identical either way.
        self.delta_updates = delta_updates
        self.delta_stats = DeltaStats()
        #: Last verified full blob per package name — the patch bases.
        self._delta_bases: dict[str, bytes] = {}

    @property
    def client(self) -> RepositoryClient:
        """The repository client this manager downloads through (fleet
        drivers re-route it across sessions / time-stamp its requests)."""
        return self._client

    # -- index handling -----------------------------------------------------------

    def _authenticate_index(self, blob: bytes) -> RepositoryIndex:
        # A whole fleet authenticating one pull wave parses and verifies
        # the same signed bytes: the blob-level parse memo and the RSA
        # verify memo make the repeats dictionary hits (each client still
        # gets its own index copy).
        index = parse_index_cached(blob)
        if not any(index.verify(key) for key in self.trusted_keys):
            raise SignatureError("repository index signature not trusted")
        self._index = index
        return index

    def update(self) -> RepositoryIndex:
        """``apk update``: fetch and authenticate the metadata index.

        With :attr:`delta_updates` enabled, asks the repository for a
        signed diff against the currently held index serial instead of
        the full index; any envelope that is stale, malformed, or fails
        signature verification falls back to a full pull, so an update
        never ends worse than the baseline.
        """
        if self.delta_updates:
            return self._update_delta()
        return self._authenticate_index(self._client.fetch_index())

    def _update_full(self, reason: str) -> RepositoryIndex:
        """Delta-mode full-index fallback, counted under ``reason``."""
        DeltaStats._bump(self.delta_stats.index_full, reason)
        fetch = self._client.fetch_index
        if reason in _RECOVERY_REASONS:
            fetch = getattr(self._client, "fetch_index_origin", fetch)
        blob = fetch()
        self.delta_stats.index_wire_bytes += len(blob)
        return self._authenticate_index(blob)

    def _update_delta(self) -> RepositoryIndex:
        fetch_delta = getattr(self._client, "fetch_index_delta", None)
        if fetch_delta is None or self._index is None:
            return self._update_full("no-base")
        base = self._index
        payload = fetch_delta(base.serial)
        self.delta_stats.index_wire_bytes += len(payload)
        try:
            envelope = parse_index_delta_envelope(payload)
        except DeltaError:
            self.delta_stats.index_rejected += 1
            return self._update_full("rejected")
        if envelope.kind == "full":
            # Server-side fallback: the tagged full index authenticates
            # exactly like a baseline pull (failures propagate).
            DeltaStats._bump(self.delta_stats.index_full,
                             envelope.reason or "server")
            return self._authenticate_index(envelope.full_bytes)
        try:
            if envelope.kind == "same":
                if envelope.serial != base.serial \
                        or envelope.body_sha256 != base.body_hash():
                    raise DeltaError(
                        "unchanged-index envelope does not match the "
                        "held index"
                    )
                self.delta_stats.index_unchanged += 1
                return base
            rebuilt = apply_index_delta(base, envelope)
            index = self._authenticate_index(rebuilt.to_bytes())
        except RollbackError:
            # A validly-addressed delta targeting an older serial: the
            # paper's rollback attack.  Refuse it, then recover via the
            # full path (whose signed index the client still verifies).
            self.delta_stats.index_rollbacks += 1
            return self._update_full("rollback-rejected")
        except (DeltaError, PackagingError, SignatureError):
            self.delta_stats.index_rejected += 1
            return self._update_full("rejected")
        self.delta_stats.index_deltas += 1
        return index

    @property
    def index(self) -> RepositoryIndex:
        if self._index is None:
            raise PackageManagerError("no index: run update() first")
        return self._index

    def available_upgrades(self) -> list[IndexEntry]:
        """Installed packages with a newer version in the index."""
        upgrades = []
        for installed in self._node.pkgdb.all():
            entry = self.index.get(installed.name)
            if entry is not None and is_newer(entry.version, installed.version):
                upgrades.append(entry)
        return upgrades

    # -- resolution ------------------------------------------------------------------

    def resolve_install_order(self, name: str) -> list[IndexEntry]:
        """Dependencies-first order for a package and its closure.

        Iterative DFS on an explicit frame stack: a recursive inner
        function would close over itself (and the manager), leaving a
        dead reference cycle behind on every install — retired fleet
        nodes would then linger until a cycle-GC pass instead of freeing
        by refcount.
        """
        order: list[IndexEntry] = []
        visiting: set[str] = set()
        done: set[str] = set()
        #: [pkg_name, index entry, remaining-deps iterator]; the last
        #: two stay None until the frame is expanded.
        stack: list[list] = [[name, None, None]]
        while stack:
            frame = stack[-1]
            pkg_name, entry, deps = frame
            if deps is None:
                if pkg_name in done:
                    stack.pop()
                    continue
                if pkg_name in visiting:
                    raise PackageManagerError(
                        f"dependency cycle involving {pkg_name!r}"
                    )
                entry = self.index.get(pkg_name)
                if entry is None:
                    raise PackageManagerError(
                        f"unsatisfiable dependency: {pkg_name!r}")
                visiting.add(pkg_name)
                frame[1] = entry
                frame[2] = iter(entry.depends)
                continue
            for dep in deps:
                stack.append([dep, None, None])
                break
            else:
                stack.pop()
                visiting.discard(pkg_name)
                done.add(pkg_name)
                order.append(entry)
        return order

    # -- download & verification --------------------------------------------------------

    def _fetch_full(self, entry: IndexEntry, stats: InstallStats,
                    reason: str) -> bytes:
        """Delta-mode full-blob fallback, counted under ``reason``."""
        DeltaStats._bump(self.delta_stats.package_full, reason)
        fetch = self._client.fetch_package
        if reason in _RECOVERY_REASONS:
            fetch = getattr(self._client, "fetch_package_origin", fetch)
        blob = fetch(entry.name)
        self._account_wire(stats, len(blob))
        return blob

    def _account_wire(self, stats: InstallStats, size: int):
        stats.bytes_on_wire += size
        self.delta_stats.package_wire_bytes += size

    def _fetch_blob(self, entry: IndexEntry, stats: InstallStats) -> bytes:
        """Fetch one package's bytes, via the delta path when possible.

        Whatever this returns is verified against the signed index by the
        caller, so a reconstructed blob is accepted iff a full pull of
        the same bytes would be.
        """
        if not self.delta_updates:
            blob = self._client.fetch_package(entry.name)
            self._account_wire(stats, len(blob))
            return blob
        fetch_delta = getattr(self._client, "fetch_package_delta", None)
        base = self._delta_bases.get(entry.name)
        if fetch_delta is None or base is None:
            return self._fetch_full(entry, stats, "no-base")
        if sha256_hex(base) == entry.sha256:
            # The cached base *is* the pinned version: no transfer at all.
            self.delta_stats.base_reuses += 1
            return base
        payload = fetch_delta(entry.name, sha256_hex(base))
        self._account_wire(stats, len(payload))
        try:
            kind, reason, rest = parse_package_delta_envelope(payload)
            if kind == "full":
                DeltaStats._bump(self.delta_stats.package_full,
                                 reason or "server")
                return rest
            blob = apply_package_delta(base, payload)
        except (DeltaError, PackagingError):
            self.delta_stats.package_rejected += 1
            return self._fetch_full(entry, stats, "rejected")
        self.delta_stats.package_deltas += 1
        return blob

    def _download_verified(self, entry: IndexEntry, stats: InstallStats) -> ParsedApk:
        blob = self._prefetched.pop(entry.name, None)
        if blob is None:
            blob = self._fetch_blob(entry, stats)
        else:
            self._account_wire(stats, len(blob))  # prefetched over the wire
        stats.bytes_downloaded += len(blob)
        if len(blob) != entry.size:
            raise IntegrityError(
                f"{entry.describe()}: size {len(blob)} != index size {entry.size} "
                "(endless-data defence)"
            )
        if sha256_hex(blob) != entry.sha256:
            raise IntegrityError(
                f"{entry.describe()}: content hash does not match signed index"
            )
        # The hash check above just pinned blob == entry.sha256, so the
        # pool-warmed parse memo can be consulted under the index digest
        # (serial runs keep the memo empty and parse inline, as before).
        parsed = parse_apk_cached_with_cost(blob, entry.sha256)[0]
        parsed.verify(self.trusted_keys)
        if parsed.package.name != entry.name:
            raise IntegrityError(
                f"index entry {entry.name!r} delivered package "
                f"{parsed.package.name!r}"
            )
        if self.delta_updates:
            # Only fully verified blobs become patch bases, so a poisoned
            # delta can never linger: the next delta diffs against bytes
            # the signed index vouched for.
            self._delta_bases[entry.name] = blob
        return parsed

    # -- install / upgrade / remove --------------------------------------------------------

    def install(self, name: str, stats: InstallStats | None = None) -> InstallStats:
        """Install a package and its dependency closure."""
        stats = stats if stats is not None else InstallStats()
        for entry in self.resolve_install_order(name):
            installed = self._node.pkgdb.get(entry.name)
            if installed is not None:
                if installed.version == entry.version:
                    continue
                self._upgrade_one(entry, stats)
            else:
                self._install_one(entry, stats)
        return stats

    def install_batch(self, names: list[str], connections: int = 1,
                      stats: InstallStats | None = None) -> InstallStats:
        """Install several packages with overlapped index + downloads.

        Refreshes the metadata index concurrently with optimistic downloads
        of the named packages (one transfer schedule — safe, because every
        blob is verified against the fresh index before use), resolves the
        dependency closures against that index, fetches any missing
        dependencies in a second scheduled wave, and installs everything
        from the prefetched pool.  Produces the same installed state as
        ``update()`` followed by serial ``install()`` calls; only the
        transfer schedule differs.
        """
        stats = stats if stats is not None else InstallStats()
        if not names:
            return stats
        fetch_bundle = getattr(self._client, "fetch_index_and_packages", None)
        if fetch_bundle is not None:
            index_blob, blobs = fetch_bundle(list(names),
                                             connections=connections)
        else:
            index_blob, blobs = self._client.fetch_index(), {}
        self._authenticate_index(index_blob)

        needed: list[str] = []
        for name in names:
            for entry in self.resolve_install_order(name):
                if entry.name in needed:
                    continue
                installed = self._node.pkgdb.get(entry.name)
                if installed is not None and installed.version == entry.version:
                    continue
                needed.append(entry.name)
        missing = [name for name in needed if name not in blobs]
        if missing:
            fetch_many = getattr(self._client, "fetch_packages", None)
            if fetch_many is not None:
                blobs.update(fetch_many(missing, connections=connections))
            else:
                blobs.update({name: self._client.fetch_package(name)
                              for name in missing})
        self._prefetched.update(
            {name: blobs[name] for name in needed if name in blobs}
        )
        try:
            for name in names:
                self.install(name, stats)
        finally:
            self._prefetched.clear()
        return stats

    def upgrade_all(self) -> InstallStats:
        """``apk upgrade``: bring every installed package to index version."""
        stats = InstallStats()
        for entry in self.available_upgrades():
            self.install(entry.name, stats)
        return stats

    def uninstall(self, name: str) -> InstallStats:
        stats = InstallStats()
        installed = self._node.pkgdb.get(name)
        if installed is None:
            raise PackageManagerError(f"package not installed: {name}")
        # Re-fetch the package to obtain its de-installation scripts.
        entry = self.index.get(name)
        scripts = {}
        if entry is not None:
            try:
                scripts = self._download_verified(entry, InstallStats()).package.scripts
            except (IntegrityError, SignatureError):
                scripts = {}
        self._run_script(scripts, ".pre-deinstall", stats)
        for path in installed.files:
            if self._node.fs.exists(path):
                self._node.fs.remove(path)
        self._run_script(scripts, ".post-deinstall", stats)
        self._node.pkgdb.remove(name)
        stats.packages += 1
        stats.operations.append(f"del {name}")
        return stats

    def _install_one(self, entry: IndexEntry, stats: InstallStats):
        parsed = self._download_verified(entry, stats)
        package = parsed.package
        self._run_script(package.scripts, ".pre-install", stats)
        self._extract(package, stats)
        self._run_script(package.scripts, ".post-install", stats)
        self._record(package, entry, parsed)
        stats.packages += 1
        stats.operations.append(f"add {entry.describe()}")

    def _upgrade_one(self, entry: IndexEntry, stats: InstallStats):
        parsed = self._download_verified(entry, stats)
        package = parsed.package
        previous = self._node.pkgdb.get(entry.name)
        self._run_script(package.scripts, ".pre-upgrade", stats)
        self._extract(package, stats)
        # Remove files the new version no longer ships.
        new_paths = {f.path for f in package.files}
        if previous is not None:
            for path in previous.files:
                if path not in new_paths and self._node.fs.exists(path):
                    self._node.fs.remove(path)
        self._run_script(package.scripts, ".post-upgrade", stats)
        self._record(package, entry, parsed)
        stats.packages += 1
        stats.operations.append(f"upg {entry.describe()}")

    def _extract(self, package: ApkPackage, stats: InstallStats):
        """Extract data-segment files; PAX security.ima records become
        filesystem xattrs (the GNU-tar behaviour TSR relies on)."""
        for pkg_file in package.files:
            self._node.fs.write_file(pkg_file.path, pkg_file.content,
                                     mode=pkg_file.mode)
            stats.files_written += 1
            stats.bytes_written += len(pkg_file.content)
            if pkg_file.ima_signature is not None:
                self._node.fs.set_xattr(pkg_file.path, "security.ima",
                                        pkg_file.ima_signature)
                stats.xattrs_written += 1

    def _run_script(self, scripts: dict[str, str], hook: str, stats: InstallStats):
        source = scripts.get(hook)
        if source is None:
            return
        # Scripts run in the package-manager context: their transient reads
        # are not measured (the dont_measure policy rule; see ImaSubsystem).
        with self._node.ima.measurement_exempt():
            result = self._interpreter.run(source)
        stats.scripts_run += 1
        if result.exit_code != 0:
            raise PackageManagerError(
                f"installation script {hook} failed with exit {result.exit_code}"
            )

    def _record(self, package: ApkPackage, entry: IndexEntry, parsed: ParsedApk):
        self._node.pkgdb.add(InstalledPackage(
            name=package.name,
            version=package.version,
            content_hash=entry.sha256,
            files=tuple(sorted(f.path for f in package.files)),
        ))

    # -- post-install exercising -----------------------------------------------------------

    def exercise(self, name: str):
        """Open every file of an installed package (services restarting),
        which drives the IMA measurements verifiers will see."""
        installed = self._node.pkgdb.get(name)
        if installed is None:
            raise PackageManagerError(f"package not installed: {name}")
        self._node.exercise_paths(list(installed.files))


# -- host-pool pull-wave prewarm ----------------------------------------------


def prewarm_pull_wave(tsr, repo_ids: list[str],
                      trusted_keys_by_repo: dict[str, list[RsaPublicKey]],
                      pool=None, delta: bool = False) -> None:
    """Warm the memos a fleet pull wave is about to hit, on worker
    processes.

    Every client in a pull wave parses and signature-verifies the same
    sanitized blobs (the wave serves the repository's current
    publication), so the content-determined work is done once per blob on
    the pool and each client then splices memo hits: identical ParsedApk
    objects, identical verify verdicts, identical install sets and wire
    bytes.  With ``delta`` pulls, chunk offsets of the current and
    previous publications' blobs (the reconstruction bases) are warmed
    too.  Publications are peeked via
    :meth:`TrustedSoftwareRepository.publications` — a pure read that
    bypasses the serving cache, so cache hit/miss and eviction state are
    untouched.  A no-op without a pool.
    """
    if pool is None:
        return
    from repro.archive.apk import parse_verify_batch
    from repro.archive.chunks import chunk_offsets_batch
    items: list[tuple[bytes, tuple]] = []
    bases: list[bytes] = []
    for repo_id in repo_ids:
        publications = tsr.publications(repo_id)
        if not publications:
            continue
        keys = tuple(trusted_keys_by_repo.get(repo_id, ()))
        current = publications[-1]
        for name in sorted(current.blobs):
            items.append((current.blobs[name], keys))
        if delta:
            bases.extend(current.blobs[name]
                         for name in sorted(current.blobs))
            if len(publications) > 1:
                previous = publications[-2]
                bases.extend(previous.blobs[name]
                             for name in sorted(previous.blobs))
    parse_verify_batch(items, pool=pool)
    if bases:
        chunk_offsets_batch(bases, pool=pool)
