"""In-memory filesystem with permissions and extended attributes.

The tree holds three node kinds: files (content + mode + xattrs),
directories, and symlinks.  Integrity hooks subscribe to the *open* path —
that is where the kernel's IMA measures files before they reach memory —
and to writes, which lets tests assert measurement behaviour precisely.

Paths are absolute and normalized; parent directories must exist (except
via ``mkdir(parents=True)`` / ``write_file`` which creates parents, like a
package manager extracting an archive does).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.util.errors import FileSystemError

_MAX_SYMLINK_DEPTH = 8


@dataclass
class FileNode:
    content: bytes
    mode: int = 0o644
    xattrs: dict[str, bytes] = field(default_factory=dict)


@dataclass
class DirNode:
    children: dict[str, "Node"] = field(default_factory=dict)
    mode: int = 0o755


@dataclass
class SymlinkNode:
    target: str


Node = FileNode | DirNode | SymlinkNode

OpenHook = Callable[[str, FileNode], None]
WriteHook = Callable[[str, FileNode], None]


def normalize(path: str) -> str:
    """Normalize to an absolute path with no trailing slash (except root)."""
    if not path.startswith("/"):
        raise FileSystemError(f"path must be absolute: {path!r}")
    parts: list[str] = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    return "/" + "/".join(parts)


class SimFileSystem:
    """The simulated VFS; satisfies :class:`repro.scripts.ScriptHost`."""

    def __init__(self):
        self._root = DirNode()
        self._open_hooks: list[OpenHook] = []
        self._write_hooks: list[WriteHook] = []

    # -- hooks ---------------------------------------------------------------

    def install_open_hook(self, hook: OpenHook):
        """Called with (path, node) on every file open; may raise to veto
        the open — this is where IMA-appraisal enforcement plugs in."""
        self._open_hooks.append(hook)

    def install_write_hook(self, hook: WriteHook):
        self._write_hooks.append(hook)

    def clear_hooks(self):
        """Detach every open/write hook.

        The hooks are bound methods of the IMA subsystem, which itself
        holds this filesystem — the only reference cycle in the node
        graph.  Breaking it here lets a torn-down node free by plain
        refcounting instead of waiting for a generational GC pass (a
        rotating 10^5-client fleet would otherwise hold thousands of
        retired node graphs between gen-2 collections).
        """
        self._open_hooks.clear()
        self._write_hooks.clear()

    # -- traversal -------------------------------------------------------------

    def _walk_to(self, path: str, *, follow: bool = True,
                 depth: int = 0) -> Node | None:
        if depth > _MAX_SYMLINK_DEPTH:
            raise FileSystemError(f"too many levels of symbolic links: {path}")
        path = normalize(path)
        node: Node = self._root
        if path == "/":
            return node
        parts = path[1:].split("/")
        for index, part in enumerate(parts):
            if isinstance(node, SymlinkNode):
                node = self._walk_to(node.target, depth=depth + 1)
            if not isinstance(node, DirNode):
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        if follow and isinstance(node, SymlinkNode):
            resolved = self._walk_to(node.target, follow=True, depth=depth + 1)
            return resolved
        return node

    def _parent_of(self, path: str, create: bool = False) -> tuple[DirNode, str]:
        path = normalize(path)
        if path == "/":
            raise FileSystemError("cannot operate on the filesystem root")
        parent_path, _, name = path.rpartition("/")
        parent_path = parent_path or "/"
        node = self._walk_to(parent_path)
        if node is None:
            if not create:
                raise FileSystemError(f"no such directory: {parent_path}")
            self.mkdir(parent_path, parents=True)
            node = self._walk_to(parent_path)
        if not isinstance(node, DirNode):
            raise FileSystemError(f"not a directory: {parent_path}")
        return node, name

    # -- predicates ------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self._walk_to(path) is not None

    def isfile(self, path: str) -> bool:
        return isinstance(self._walk_to(path), FileNode)

    def isdir(self, path: str) -> bool:
        return isinstance(self._walk_to(path), DirNode)

    def issymlink(self, path: str) -> bool:
        return isinstance(self._walk_to(path, follow=False), SymlinkNode)

    # -- file operations ---------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Open a file for reading; fires integrity open hooks."""
        node = self._walk_to(path)
        if node is None:
            raise FileSystemError(f"no such file: {path}")
        if not isinstance(node, FileNode):
            raise FileSystemError(f"not a regular file: {path}")
        for hook in self._open_hooks:
            hook(normalize(path), node)
        return node.content

    def write_file(self, path: str, data: bytes, mode: int | None = None):
        if not isinstance(data, (bytes, bytearray)):
            raise FileSystemError(f"file content must be bytes: {path}")
        parent, name = self._parent_of(path, create=True)
        existing = parent.children.get(name)
        if isinstance(existing, DirNode):
            raise FileSystemError(f"is a directory: {path}")
        if isinstance(existing, FileNode):
            existing.content = bytes(data)
            if mode is not None:
                existing.mode = mode
            # Overwriting drops xattrs: a fresh write invalidates any prior
            # integrity label, just like the kernel resets security.ima.
            existing.xattrs.clear()
            node = existing
        else:
            node = FileNode(content=bytes(data), mode=mode if mode is not None else 0o644)
            parent.children[name] = node
        for hook in self._write_hooks:
            hook(normalize(path), node)

    def append_file(self, path: str, data: bytes):
        node = self._walk_to(path)
        if node is None:
            self.write_file(path, data)
            return
        if not isinstance(node, FileNode):
            raise FileSystemError(f"not a regular file: {path}")
        node.content += bytes(data)
        node.xattrs.clear()
        for hook in self._write_hooks:
            hook(normalize(path), node)

    def touch(self, path: str):
        if self.exists(path):
            return
        self.write_file(path, b"")

    def remove(self, path: str, recursive: bool = False):
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise FileSystemError(f"no such file or directory: {path}")
        if isinstance(node, DirNode) and node.children and not recursive:
            raise FileSystemError(f"directory not empty: {path}")
        del parent.children[name]

    def mkdir(self, path: str, parents: bool = False):
        path = normalize(path)
        if path == "/":
            return
        parent_path, _, name = path.rpartition("/")
        parent_path = parent_path or "/"
        parent = self._walk_to(parent_path)
        if parent is None:
            if not parents:
                raise FileSystemError(f"no such directory: {parent_path}")
            self.mkdir(parent_path, parents=True)
            parent = self._walk_to(parent_path)
        if not isinstance(parent, DirNode):
            raise FileSystemError(f"not a directory: {parent_path}")
        existing = parent.children.get(name)
        if existing is not None:
            if isinstance(existing, DirNode) and parents:
                return
            raise FileSystemError(f"file exists: {path}")
        parent.children[name] = DirNode()

    def symlink(self, target: str, link: str):
        parent, name = self._parent_of(link, create=True)
        if name in parent.children:
            raise FileSystemError(f"file exists: {link}")
        parent.children[name] = SymlinkNode(target=target)

    def readlink(self, path: str) -> str:
        node = self._walk_to(path, follow=False)
        if not isinstance(node, SymlinkNode):
            raise FileSystemError(f"not a symlink: {path}")
        return node.target

    def chmod(self, path: str, mode: int):
        node = self._walk_to(path)
        if node is None:
            raise FileSystemError(f"no such file or directory: {path}")
        if isinstance(node, SymlinkNode):
            raise FileSystemError(f"cannot chmod a symlink: {path}")
        node.mode = mode

    def rename(self, src: str, dst: str):
        src_parent, src_name = self._parent_of(src)
        node = src_parent.children.get(src_name)
        if node is None:
            raise FileSystemError(f"no such file or directory: {src}")
        dst_parent, dst_name = self._parent_of(dst, create=True)
        existing = dst_parent.children.get(dst_name)
        if isinstance(existing, DirNode):
            dst_parent = existing
            dst_name = src_name
        del src_parent.children[src_name]
        dst_parent.children[dst_name] = node

    # -- xattrs ------------------------------------------------------------------

    def set_xattr(self, path: str, name: str, value: bytes):
        node = self._walk_to(path)
        if not isinstance(node, FileNode):
            raise FileSystemError(f"xattrs only supported on files: {path}")
        node.xattrs[name] = bytes(value)

    def get_xattr(self, path: str, name: str) -> bytes | None:
        node = self._walk_to(path)
        if not isinstance(node, FileNode):
            raise FileSystemError(f"xattrs only supported on files: {path}")
        return node.xattrs.get(name)

    def list_xattrs(self, path: str) -> dict[str, bytes]:
        node = self._walk_to(path)
        if not isinstance(node, FileNode):
            raise FileSystemError(f"xattrs only supported on files: {path}")
        return dict(node.xattrs)

    # -- introspection --------------------------------------------------------------

    def list_dir(self, path: str) -> list[str]:
        node = self._walk_to(path)
        if not isinstance(node, DirNode):
            raise FileSystemError(f"not a directory: {path}")
        return sorted(node.children)

    def file_mode(self, path: str) -> int:
        node = self._walk_to(path)
        if node is None or isinstance(node, SymlinkNode):
            raise FileSystemError(f"no such file or directory: {path}")
        return node.mode

    def walk_files(self, start: str = "/") -> list[str]:
        """All regular-file paths under ``start`` in sorted order."""
        node = self._walk_to(start)
        if node is None:
            raise FileSystemError(f"no such directory: {start}")
        found: list[str] = []

        def recurse(prefix: str, current: Node):
            if isinstance(current, FileNode):
                found.append(prefix or "/")
            elif isinstance(current, DirNode):
                for name in sorted(current.children):
                    recurse(f"{prefix}/{name}", current.children[name])

        start = normalize(start)
        recurse("" if start == "/" else start, node)
        return found
