"""Pipelined refresh engine: overlap downloads, scans, and sanitization.

The paper's refresh is strictly phased — quorum, then every download, then
every sanitization — which leaves the mirrors idle while the enclave works
and the enclave idle while bytes move (Table 3's 17-minute download ahead
of a 13-minute sanitization).  This module reschedules one refresh on the
simulated clock as a pipeline over three resource classes:

* **mirror channels** — one concurrent stream per policy mirror, each at
  the mirror's own serving bandwidth, all sharing the TSR host's downlink
  (max-min fairly, via the incremental solver in
  :class:`repro.simnet.schedule.ParallelTransferSchedule`);
* **the enclave** — a serial channel; a package is scanned the moment its
  blob is local, and sanitized as soon as the scan is done *unless* its
  scripts splice the repository-wide account prelude, in which case it
  waits for the catalog barrier (the last scan);
* **cache shards** — disk reads/writes serialize per shard only, so a
  cache-hit lookup no longer queues behind an insert on another shard.

Correctness is inherited, not re-argued: the engine performs exactly the
same ecalls as the sequential path (scan everything, freeze the catalog,
sanitize everything), and the enclave itself refuses an illegal overlap
(:meth:`TsrProgram.sanitize_package_precatalog` rejects catalog-dependent
packages).  Tests assert the pipelined and sequential modes produce the
same package sets, rejections, and verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sanitizer import SanitizationRejected, SanitizationResult
from repro.core.service import matches_expected
from repro.simnet.latency import (
    LOCAL_DISK_BANDWIDTH_BYTES_PER_S,
    LOCAL_DISK_SEEK_S,
)
from repro.simnet.network import Request
from repro.simnet.schedule import ParallelTransferSchedule
from repro.util.errors import NetworkError

#: Default request size for a package fetch (control message).
_REQUEST_BYTES = 256


@dataclass
class PipelineOutcome:
    """Everything one pipelined refresh produced, plus its schedule."""

    #: Makespan of the overlapped schedule (seconds after the quorum).
    makespan: float
    #: Sum of per-package download durations (setup + transfer + stalls).
    download_elapsed: float
    #: Sum of simulated in-enclave sanitization durations.
    sanitize_elapsed: float
    downloaded_bytes: int
    rejected: list[tuple[str, str]]
    results: list[SanitizationResult]
    catalog_info: dict
    #: Package name -> mirror hostname that served it (downloads only).
    mirror_assignments: dict[str, str] = field(default_factory=dict)
    #: Packages sanitized before the catalog barrier.
    sanitized_early: int = 0
    #: When the catalog froze, relative to the phase start.
    catalog_barrier_at: float = 0.0


@dataclass
class _Job:
    """One package travelling through the pipeline."""

    name: str
    blob: bytes
    ready: float
    needs_catalog: bool = False


class RefreshPipeline:
    """Schedules one repository refresh over mirrors, enclave, and shards."""

    def __init__(self, service, repo_id: str, mirrors: list[dict],
                 expected: dict[str, dict], max_streams: int | None = None):
        self._service = service
        self._network = service._network
        self._repo_id = repo_id
        self._expected = expected
        self._ordered_mirrors = service.mirrors_by_rtt(mirrors)
        streams = len(self._ordered_mirrors)
        if max_streams is not None:
            if max_streams < 1:
                raise ValueError("max_streams must be >= 1")
            streams = min(streams, max_streams)
        self._channels = self._ordered_mirrors[:streams]
        self._shard_free: dict[int, float] = {}

    # -- public entry -------------------------------------------------------

    def run(self, changed: list[str]) -> PipelineOutcome:
        """Fetch, scan, and sanitize ``changed``; returns the schedule."""
        jobs, download_elapsed, downloaded_bytes, assignments = \
            self._acquire_blobs(changed)

        # Scan every blob in index order (zero simulated cost, as in the
        # sequential path: scans are metadata work dwarfed by transfers).
        enclave = self._service._enclave
        by_name = {job.name: job for job in jobs}
        for name in changed:
            job = by_name[name]
            info = enclave.ecall("scan_package", self._repo_id, job.blob)
            job.needs_catalog = info["needs_catalog"]
        barrier_at = max((job.ready for job in jobs), default=0.0)

        # Enclave channel: FIFO by blob-readiness; catalog-independent
        # packages sanitize immediately, the rest queue behind the barrier.
        rejected: list[tuple[str, str]] = []
        results: list[SanitizationResult] = []
        sanitize_elapsed = 0.0
        sanitized_early = 0
        enclave_free = 0.0
        deferred: list[_Job] = []
        for job in sorted(jobs, key=lambda j: (j.ready, j.name)):
            if job.needs_catalog:
                deferred.append(job)
                continue
            start = max(enclave_free, job.ready)
            duration = self._sanitize(job, "sanitize_package_precatalog",
                                      rejected, results)
            if duration is not None:
                sanitize_elapsed += duration
                sanitized_early += 1
                enclave_free = start + duration
                self._charge_shard_write(job.name, len(results[-1].blob),
                                         enclave_free)
        catalog_info = enclave.ecall("finish_catalog", self._repo_id)
        enclave_free = max(enclave_free, barrier_at)
        for job in deferred:
            start = max(enclave_free, job.ready)
            duration = self._sanitize(job, "sanitize_package", rejected,
                                      results)
            if duration is not None:
                sanitize_elapsed += duration
                enclave_free = start + duration
                self._charge_shard_write(job.name, len(results[-1].blob),
                                         enclave_free)

        makespan = max([enclave_free, barrier_at,
                        *self._shard_free.values()] or [0.0])
        return PipelineOutcome(
            makespan=makespan,
            download_elapsed=download_elapsed,
            sanitize_elapsed=sanitize_elapsed,
            downloaded_bytes=downloaded_bytes,
            rejected=rejected,
            results=results,
            catalog_info=catalog_info,
            mirror_assignments=assignments,
            sanitized_early=sanitized_early,
            catalog_barrier_at=barrier_at,
        )

    # -- blob acquisition ---------------------------------------------------

    def _acquire_blobs(self, changed: list[str]) -> tuple[
            list[_Job], float, int, dict[str, str]]:
        """Cache-check then multi-mirror fetch; returns jobs with ready times."""
        cache = self._service.cache
        jobs: list[_Job] = []
        to_download: list[str] = []
        for name in changed:
            want = self._expected[name]
            cached = cache.get_original(self._repo_id, name)
            if cached is not None and matches_expected(cached, want):
                ready = self._charge_shard_read(name, len(cached), 0.0)
                jobs.append(_Job(name=name, blob=cached, ready=ready))
            else:
                to_download.append(name)

        download_elapsed = 0.0
        downloaded_bytes = 0
        assignments: dict[str, str] = {}
        if not to_download:
            return jobs, download_elapsed, downloaded_bytes, assignments

        fetched, durations, finishes, assignments = \
            self._download_pipelined(to_download)
        # Charge cache writes in completion order: the shard queues see
        # blobs as they land, not in index order.
        for name in sorted(to_download, key=lambda n: (finishes[n], n)):
            blob = fetched[name]
            downloaded_bytes += len(blob)
            download_elapsed += durations[name]
            cache.put_original(self._repo_id, name, blob)
            self._charge_shard_write(name, len(blob), finishes[name])
            jobs.append(_Job(name=name, blob=blob, ready=finishes[name]))
        return jobs, download_elapsed, downloaded_bytes, assignments

    def _download_pipelined(self, names: list[str]) -> tuple[
            dict[str, bytes], dict[str, float], dict[str, float],
            dict[str, str]]:
        """Fan the downloads out over per-mirror channels.

        Assignment is longest-processing-time-first onto the channel with
        the least estimated backlog (sizes come from the quorum-validated
        index, so the estimate needs no extra round trips).  Failed or
        corrupt transfers are reinserted into the live schedule on the
        earliest-free not-yet-tried channel — starting no earlier than the
        moment the failure was detected — and the schedule re-solved, so
        retries overlap with still-running downloads instead of running in
        a serial pass after the parallel phase.  Retry start gaps are
        pinned against the schedule state at decision time; the re-solve
        may still shift concurrent streams through downlink contention.
        """
        src = self._network.host(self._service.hostname)
        schedule = ParallelTransferSchedule(
            downlink_bandwidth=src.downlink_bandwidth
        )
        # Retries may open channels beyond the fan-out cap: any policy
        # mirror not yet tried for a package is fair game, as in the old
        # sequential fallback.
        hosts = {mirror["hostname"]: self._network.host(mirror["hostname"])
                 for mirror in self._ordered_mirrors}
        setup_est = {}
        for hostname, host in hosts.items():
            setup_est[hostname] = (
                self._network.latency.base_rtt(src.continent, host.continent)
                + self._network.latency.transfer_time(_REQUEST_BYTES,
                                                      host.bandwidth)
                + host.processing_time + host.extra_delay
            )

        estimates = {channel["hostname"]: 0.0 for channel in self._channels}
        queues: dict[str, list[str]] = {h: [] for h in estimates}
        for name in sorted(names, key=lambda n: -self._expected[n]["size"]):
            hostname = min(estimates, key=lambda h: (estimates[h], h))
            queues[hostname].append(name)
            estimates[hostname] += (
                setup_est[hostname]
                + self._expected[name]["size"] / hosts[hostname].bandwidth
            )

        fetched: dict[str, bytes] = {}
        candidate: dict[str, bytes] = {}          # this round, unverified
        attempt_keys: dict[str, list] = {name: [] for name in names}
        channel_items: dict[str, list] = {h: [] for h in hosts}
        tried: dict[str, set[str]] = {name: set() for name in names}
        assignments: dict[str, str] = {}
        success_key: dict[str, object] = {}
        last_error: dict[str, object] = {}
        pending: list[str] = []

        def issue(name: str, hostname: str, attempt: int, extra_wait: float):
            """Probe one fetch and enqueue it (or its timeout stall)."""
            tried[name].add(hostname)
            try:
                probe = self._network.probe(
                    self._service.hostname,
                    Request(hostname, "get_package", payload=name),
                )
            except NetworkError as exc:
                # A dead mirror stalls its channel for the timeout.
                last_error[name] = exc
                key = ("stall", attempt, name)
                schedule.enqueue(hostname, key,
                                 extra_wait + self._network.timeout, 0,
                                 hosts[hostname].bandwidth)
                attempt_keys[name].append(key)
                channel_items[hostname].append(key)
                return None
            key = (attempt, name)
            schedule.enqueue(hostname, key, extra_wait + probe.setup,
                             probe.size_bytes, probe.bandwidth)
            attempt_keys[name].append(key)
            channel_items[hostname].append(key)
            candidate[name] = probe.payload
            assignments[name] = hostname
            success_key[name] = key
            return probe

        for hostname, queue in queues.items():
            for name in queue:
                if issue(name, hostname, 0, 0.0) is None:
                    pending.append(name)

        attempt = 0
        timings = schedule.solve()
        while True:
            # Verify against the quorum index; corrupt blobs join retries.
            for name in sorted(candidate):
                if matches_expected(candidate[name], self._expected[name]):
                    fetched[name] = candidate[name]
                else:
                    last_error[name] = (
                        f"mirror {assignments[name]} served a blob that "
                        "does not match the quorum-validated index"
                    )
                    pending.append(name)
                    del assignments[name]
                    del success_key[name]
            candidate.clear()
            if not pending:
                break
            channel_free = {
                h: max((timings[k].finish for k in channel_items[h]),
                       default=0.0)
                for h in hosts
            }
            retry_now = sorted(
                set(pending),
                key=lambda n: (timings[attempt_keys[n][-1]].finish, n),
            )
            pending = []
            attempt += 1
            for name in retry_now:
                detect = timings[attempt_keys[name][-1]].finish
                eligible = [h for h in hosts if h not in tried[name]]
                if not eligible:
                    raise NetworkError(
                        f"package {name!r} unavailable from every policy "
                        f"mirror: {last_error.get(name)}"
                    )
                hostname = min(eligible,
                               key=lambda h: (channel_free[h], h))
                extra_wait = max(0.0, detect - channel_free[hostname])
                probe = issue(name, hostname, attempt, extra_wait)
                if probe is None:
                    channel_free[hostname] += \
                        extra_wait + self._network.timeout
                    pending.append(name)
                else:
                    channel_free[hostname] += (
                        extra_wait + probe.setup
                        + probe.size_bytes / probe.bandwidth
                    )
            timings = schedule.solve()

        durations = {
            name: sum(timings[key].duration for key in keys)
            for name, keys in attempt_keys.items()
        }
        finishes = {name: timings[key].finish
                    for name, key in success_key.items()}
        return fetched, durations, finishes, assignments

    # -- per-resource accounting -------------------------------------------

    def _sanitize(self, job: _Job, ecall: str,
                  rejected: list[tuple[str, str]],
                  results: list[SanitizationResult]) -> float | None:
        """Really execute one sanitization; returns its simulated duration."""
        try:
            result = self._service._enclave.ecall(ecall, self._repo_id,
                                                  job.blob)
        except SanitizationRejected as exc:
            rejected.append((job.name, exc.reason))
            return None
        duration = self._service.simulated_sanitize_duration(result)
        self._service.cache.put_sanitized(self._repo_id, job.name, result.blob)
        results.append(result)
        return duration

    def _shard_busy(self, name: str, size: int, at: float) -> float:
        """Serialize one disk operation on the blob's cache shard."""
        shard = self._service.cache.shard_index(self._repo_id, name)
        start = max(self._shard_free.get(shard, 0.0), at)
        finish = start + LOCAL_DISK_SEEK_S \
            + size / LOCAL_DISK_BANDWIDTH_BYTES_PER_S
        self._shard_free[shard] = finish
        return finish

    def _charge_shard_read(self, name: str, size: int, at: float) -> float:
        return self._shard_busy(name, size, at)

    def _charge_shard_write(self, name: str, size: int, at: float) -> float:
        return self._shard_busy(name, size, at)
