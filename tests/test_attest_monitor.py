"""Tests for the integrity monitoring system."""

import pytest

from repro.attest.monitor import MonitoringSystem, baseline_whitelist
from repro.crypto.hashes import sha256_bytes
from repro.ima.subsystem import ima_signature_for
from repro.osim.os import IntegrityEnforcedOS


@pytest.fixture(scope="module")
def whitelist():
    return baseline_whitelist()


def _enrolled(monitor: MonitoringSystem, name="node") -> IntegrityEnforcedOS:
    node = IntegrityEnforcedOS(name)
    node.boot()
    monitor.enroll_node(name, node.tpm.attestation_public_key)
    return node


class TestHappyPath:
    def test_pristine_node_trusted(self, whitelist):
        monitor = MonitoringSystem(whitelist=whitelist)
        node = _enrolled(monitor)
        report = monitor.verify_node(node)
        assert report.trusted
        assert report.quote_valid and report.log_matches_pcr

    def test_signed_new_file_accepted(self, whitelist, rsa_key):
        monitor = MonitoringSystem(whitelist=whitelist,
                                   trusted_signing_keys=[rsa_key.public_key])
        node = _enrolled(monitor)
        content = b"\x7fELF new tool"
        node.fs.write_file("/usr/bin/tool", content)
        node.fs.set_xattr("/usr/bin/tool", "security.ima",
                          ima_signature_for(content, rsa_key))
        node.load_file("/usr/bin/tool")
        assert monitor.verify_node(node).trusted

    def test_trust_key_after_onboarding(self, whitelist, rsa_key):
        monitor = MonitoringSystem(whitelist=whitelist)
        node = _enrolled(monitor)
        content = b"\x7fELF tsr-signed"
        node.fs.write_file("/usr/bin/t", content)
        node.fs.set_xattr("/usr/bin/t", "security.ima",
                          ima_signature_for(content, rsa_key))
        node.load_file("/usr/bin/t")
        assert not monitor.verify_node(node).trusted
        monitor.trust_key(rsa_key.public_key)  # Figure-7 key distribution
        assert monitor.verify_node(node).trusted


class TestViolations:
    def test_unsigned_new_file_flagged(self, whitelist):
        """The paper's false-positive problem in one test: a legitimate
        but unsigned change is indistinguishable from an attack."""
        monitor = MonitoringSystem(whitelist=whitelist)
        node = _enrolled(monitor)
        node.fs.write_file("/usr/bin/updated", b"\x7fELF updated binary")
        node.load_file("/usr/bin/updated")
        report = monitor.verify_node(node)
        assert not report.trusted
        assert any(v.path == "/usr/bin/updated" for v in report.violations)

    def test_wrong_signer_flagged(self, whitelist, rsa_key, rsa_key_alt):
        monitor = MonitoringSystem(whitelist=whitelist,
                                   trusted_signing_keys=[rsa_key.public_key])
        node = _enrolled(monitor)
        content = b"\x7fELF adversary-signed"
        node.fs.write_file("/usr/bin/evil", content)
        node.fs.set_xattr("/usr/bin/evil", "security.ima",
                          ima_signature_for(content, rsa_key_alt))
        node.load_file("/usr/bin/evil")
        report = monitor.verify_node(node)
        assert any("not issued by any trusted key" in v.reason
                   for v in report.violations)

    def test_unenrolled_node_rejected(self, whitelist):
        monitor = MonitoringSystem(whitelist=whitelist)
        node = IntegrityEnforcedOS("stranger")
        node.boot()
        report = monitor.verify_node(node)
        assert not report.trusted
        assert any("not enrolled" in v.reason for v in report.violations)

    def test_wrong_attestation_key_rejected(self, whitelist):
        monitor = MonitoringSystem(whitelist=whitelist)
        node = _enrolled(monitor, "node-a")
        impostor = IntegrityEnforcedOS("node-a")  # same name, other TPM...
        impostor.tpm = IntegrityEnforcedOS("node-b").tpm  # ...swapped chip
        impostor.boot()
        report = monitor.verify_node(impostor)
        assert not report.trusted

    def test_forged_log_detected(self, whitelist):
        """An adversary who strips entries from the IMA log cannot match
        the quoted PCR-10 value."""
        monitor = MonitoringSystem(whitelist=whitelist)
        node = _enrolled(monitor)
        node.fs.write_file("/usr/bin/malware", b"evil")
        node.load_file("/usr/bin/malware")
        nonce = monitor.fresh_nonce()
        evidence = node.attest(nonce)
        evidence.ima_log.pop()  # hide the malware measurement
        report = monitor.verify_evidence(evidence, nonce)
        assert not report.log_matches_pcr
        assert not report.trusted

    def test_replayed_quote_rejected(self, whitelist):
        monitor = MonitoringSystem(whitelist=whitelist)
        node = _enrolled(monitor)
        old_evidence = node.attest(b"old-nonce")
        report = monitor.verify_evidence(old_evidence, b"fresh-nonce")
        assert not report.quote_valid


class TestFleetStatistics:
    def test_false_positive_rate(self, whitelist):
        monitor = MonitoringSystem(whitelist=whitelist)
        clean = _enrolled(monitor, "clean")
        drifted = _enrolled(monitor, "drifted")
        drifted.fs.write_file("/usr/bin/x", b"unsigned update")
        drifted.load_file("/usr/bin/x")
        monitor.verify_node(clean)
        monitor.verify_node(drifted)
        assert monitor.false_positive_rate() == pytest.approx(0.5)
        assert len(monitor.verification_history()) == 2

    def test_empty_history_rate_zero(self):
        assert MonitoringSystem().false_positive_rate() == 0.0
