"""Tests for the TSR service: deployment, refresh, serving, rollback."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.core.client import deploy_policy_with_attestation
from repro.core.service import SEALED_STATE_PATH
from repro.crypto.rsa import RsaPublicKey
from repro.mirrors.mirror import MirrorBehavior
from repro.mirrors.builder import MirrorSpec
from repro.simnet.latency import Continent
from repro.simnet.network import Host, Request
from repro.util.errors import NetworkError, RollbackError
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario


def _mini_packages():
    return [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")]),
        ApkPackage(name="nginx", version="1.16-r0", depends=["musl"],
                   scripts={".pre-install": "addgroup -S www\nadduser -S -G www nginx\n"},
                   files=[PackageFile("/usr/sbin/nginx", b"\x7fELF nginx")]),
        ApkPackage(name="badpkg", version="1-r0",
                   scripts={".post-install": "add-shell /bin/badsh\n"}),
    ]


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(packages=_mini_packages(), key_bits=1024)


class TestDeployment:
    def test_policy_deployment_returns_key_and_quote(self, scenario):
        assert scenario.repo_id.startswith("repo-")
        assert isinstance(scenario.tsr_public_key, RsaPublicKey)

    def test_attested_deployment_from_remote_owner(self, scenario):
        scenario.network.add_host(Host("os-owner", Continent.EUROPE))
        repo_id, key = deploy_policy_with_attestation(
            scenario.network, "os-owner", scenario.tsr.hostname,
            scenario.policy.to_yaml(), scenario.attestation_service,
            expected_mrenclave=scenario.tsr._enclave.mrenclave,
        )
        assert repo_id != scenario.repo_id  # a second, isolated tenant
        assert key != scenario.tsr_public_key  # distinct per-tenant keys

    def test_signing_key_not_in_host_memory(self, scenario):
        dump = repr(scenario.tsr._enclave.host_memory_dump())
        assert "signing" not in dump
        assert scenario.tsr_public_key.fingerprint() not in dump


class TestRefresh:
    def test_refresh_sanitizes_and_rejects(self, scenario):
        report = scenario.refresh_report
        assert report.sanitized == 2
        assert [name for name, _ in report.rejected] == ["badpkg"]
        assert report.serial == scenario.origin.serial

    def test_sanitized_index_signed_by_tsr(self, scenario):
        index = RepositoryIndex.from_bytes(
            scenario.tsr.get_index_bytes(scenario.repo_id)
        )
        assert index.verify(scenario.tsr_public_key)
        assert set(index.entries) == {"musl", "nginx"}

    def test_rejected_package_not_served(self, scenario):
        with pytest.raises(NetworkError):
            scenario.tsr.serve_package(scenario.repo_id, "badpkg")

    def test_incremental_refresh_only_changed(self, scenario):
        scenario.origin.publish(ApkPackage(
            name="musl", version="1.1.24-r3",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl r3")],
        ))
        scenario.sync_mirrors()
        report = scenario.tsr.refresh(scenario.repo_id)
        assert report.changed_packages == ["musl"]
        assert report.sanitized == 1

    def test_served_package_verifies_under_tsr_key(self, scenario):
        blob = scenario.tsr.serve_package(scenario.repo_id, "nginx")
        parsed = ApkPackage.parse(blob)
        assert parsed.verify([scenario.tsr_public_key])


class TestRollbackProtection:
    def test_cache_tamper_detected(self, scenario):
        good = scenario.tsr.serve_package(scenario.repo_id, "nginx")
        scenario.tsr.cache.tamper_sanitized(
            scenario.repo_id, "nginx", good[:-4] + b"\x00\x00\x00\x00"
        )
        with pytest.raises(RollbackError):
            scenario.tsr.serve_package(scenario.repo_id, "nginx")
        # Restore for later tests.
        scenario.tsr.cache.put_sanitized(scenario.repo_id, "nginx", good)

    def test_cache_rollback_to_old_version_detected(self, scenario):
        current = scenario.tsr.serve_package(scenario.repo_id, "musl")
        scenario.origin.publish(ApkPackage(
            name="musl", version="1.1.24-r4",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl r4")],
        ))
        scenario.sync_mirrors()
        scenario.tsr.refresh(scenario.repo_id)
        new = scenario.tsr.serve_package(scenario.repo_id, "musl")
        assert new != current
        # Adversary rolls the cache back to the older sanitized blob.
        scenario.tsr.cache.tamper_sanitized(scenario.repo_id, "musl", current)
        with pytest.raises(RollbackError):
            scenario.tsr.serve_package(scenario.repo_id, "musl")
        scenario.tsr.cache.put_sanitized(scenario.repo_id, "musl", new)

    def test_restart_restores_state(self, scenario):
        before = scenario.tsr.get_index_bytes(scenario.repo_id)
        scenario.tsr.restart()
        after = scenario.tsr.get_index_bytes(scenario.repo_id)
        assert before == after
        # Serving still works and still verifies cached blobs.
        blob = scenario.tsr.serve_package(scenario.repo_id, "nginx")
        assert ApkPackage.parse(blob).verify([scenario.tsr_public_key])

    def test_restart_with_stale_sealed_state_rejected(self, scenario):
        stale = scenario.tsr.cache.disk.read_file(SEALED_STATE_PATH)
        # A refresh advances the monotonic counter and reseals.
        scenario.origin.publish(ApkPackage(name="zlib", version="1-r0"))
        scenario.sync_mirrors()
        scenario.tsr.refresh(scenario.repo_id)
        # Adversary rolls the sealed state file back to the stale copy.
        scenario.tsr.cache.disk.write_file(SEALED_STATE_PATH, stale)
        with pytest.raises(RollbackError):
            scenario.tsr.restart()
        # Recover: reseal current state for any following tests.
        scenario.tsr._enclave = type(scenario.tsr._enclave)(
            scenario.tsr._cpu, type(scenario.tsr._enclave._program),
            key_bits=1024,
        )


class TestEndToEndInstall:
    def test_node_installs_and_attests_clean(self):
        workload = generate_workload(scale=0.004, seed=5)
        scenario = build_scenario(workload=workload, key_bits=1024)
        node, pm = scenario.new_node()
        pm.update()
        # Install a sanitizable package with user creation if available,
        # otherwise any sanitized package.
        index = pm.index
        target = next(
            (name for name, kind in workload.category.items()
             if kind == "user_group" and index.get(name) is not None),
            index.package_names()[0],
        )
        pm.install(target)
        pm.exercise(target)
        node.load_file("/etc/passwd")
        report = scenario.monitor.verify_node(node)
        assert report.trusted, report.violations
