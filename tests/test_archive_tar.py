"""Tests for the from-scratch tar/PAX implementation."""

import io
import tarfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive.tar import (
    TYPE_DIRECTORY,
    TYPE_SYMLINK,
    TarEntry,
    read_tar,
    write_tar,
)
from repro.util.errors import PackagingError


class TestRoundTrip:
    def test_single_file(self):
        blob = write_tar([TarEntry(name="etc/motd", data=b"hello")])
        entries = read_tar(blob)
        assert len(entries) == 1
        assert entries[0].name == "etc/motd"
        assert entries[0].data == b"hello"

    def test_metadata_preserved(self):
        entry = TarEntry(name="bin/tool", data=b"\x7fELF", mode=0o755,
                         uid=3, gid=4, mtime=1234, uname="op", gname="ops")
        restored = read_tar(write_tar([entry]))[0]
        assert restored.mode == 0o755
        assert (restored.uid, restored.gid) == (3, 4)
        assert restored.mtime == 1234
        assert (restored.uname, restored.gname) == ("op", "ops")

    def test_directory_and_symlink(self):
        entries = [
            TarEntry(name="usr/lib/", typeflag=TYPE_DIRECTORY, mode=0o755),
            TarEntry(name="usr/lib/libssl.so", typeflag=TYPE_SYMLINK,
                     linkname="libssl.so.1.1"),
        ]
        restored = read_tar(write_tar(entries))
        assert restored[0].is_dir
        assert restored[1].is_symlink
        assert restored[1].linkname == "libssl.so.1.1"

    def test_empty_archive(self):
        assert read_tar(write_tar([])) == []

    def test_many_files_order_preserved(self):
        entries = [TarEntry(name=f"f{i}", data=bytes([i])) for i in range(50)]
        restored = read_tar(write_tar(entries))
        assert [e.name for e in restored] == [f"f{i}" for i in range(50)]

    @given(st.binary(max_size=2000), st.integers(0, 0o777))
    @settings(max_examples=30)
    def test_any_content_roundtrips(self, content, mode):
        entry = TarEntry(name="blob.bin", data=content, mode=mode)
        restored = read_tar(write_tar([entry]))[0]
        assert restored.data == content
        assert restored.mode == mode


class TestPaxHeaders:
    def test_xattr_roundtrip(self):
        entry = TarEntry(name="bin/sh", data=b"#!")
        entry.set_xattr("security.ima", b"\x03\x02" + bytes(range(64)))
        restored = read_tar(write_tar([entry]))[0]
        assert restored.xattrs()["security.ima"] == b"\x03\x02" + bytes(range(64))

    def test_binary_signature_value(self):
        signature = bytes(range(256))
        entry = TarEntry(name="lib/libc.so", data=b"x")
        entry.set_xattr("security.ima", signature)
        restored = read_tar(write_tar([entry]))[0]
        assert restored.xattrs()["security.ima"] == signature

    def test_multiple_pax_records(self):
        entry = TarEntry(name="f", data=b"d")
        entry.pax_headers["comment"] = b"sanitized by TSR"
        entry.set_xattr("security.ima", b"\x01")
        entry.set_xattr("user.checksum", b"ab")
        restored = read_tar(write_tar([entry]))[0]
        assert restored.pax_headers["comment"] == b"sanitized by TSR"
        assert set(restored.xattrs()) == {"security.ima", "user.checksum"}

    def test_pax_only_precedes_owner(self):
        entries = [
            TarEntry(name="plain", data=b"1"),
            TarEntry(name="signed", data=b"2",
                     pax_headers={"SCHILY.xattr.security.ima": b"sig"}),
        ]
        restored = read_tar(write_tar(entries))
        assert restored[0].pax_headers == {}
        assert restored[1].xattrs() == {"security.ima": b"sig"}

    @given(st.dictionaries(
        st.text(st.characters(min_codepoint=33, max_codepoint=126), min_size=1,
                max_size=30).filter(lambda s: "=" not in s),
        st.binary(max_size=300),
        max_size=5,
    ))
    @settings(max_examples=30)
    def test_any_records_roundtrip(self, records):
        entry = TarEntry(name="f", data=b"", pax_headers=dict(records))
        restored = read_tar(write_tar([entry]))[0]
        assert restored.pax_headers == records


class TestInterop:
    """Our writer must produce archives GNU-compatible readers accept."""

    def test_stdlib_tarfile_reads_our_output(self):
        blob = write_tar([
            TarEntry(name="etc/passwd", data=b"root:x:0:0::/root:/bin/ash\n"),
            TarEntry(name="usr/", typeflag=TYPE_DIRECTORY, mode=0o755),
        ])
        with tarfile.open(fileobj=io.BytesIO(blob)) as tf:
            names = tf.getnames()
            member = tf.extractfile("etc/passwd")
            assert member is not None
            assert member.read().startswith(b"root:x:")
        assert "etc/passwd" in names

    def test_stdlib_tarfile_sees_pax_xattrs(self):
        entry = TarEntry(name="bin/busybox", data=b"bb")
        entry.set_xattr("security.ima", b"\x03abc")
        blob = write_tar([entry])
        with tarfile.open(fileobj=io.BytesIO(blob)) as tf:
            member = tf.getmember("bin/busybox")
            assert member.pax_headers.get("SCHILY.xattr.security.ima") == "\x03abc"

    def test_we_read_stdlib_tarfile_output(self):
        buffer = io.BytesIO()
        with tarfile.open(fileobj=buffer, mode="w", format=tarfile.USTAR_FORMAT) as tf:
            info = tarfile.TarInfo("hello.txt")
            payload = b"from stdlib"
            info.size = len(payload)
            tf.addfile(info, io.BytesIO(payload))
        entries = read_tar(buffer.getvalue())
        assert entries[0].name == "hello.txt"
        assert entries[0].data == b"from stdlib"


class TestErrors:
    def test_truncated_stream_rejected(self):
        blob = write_tar([TarEntry(name="f", data=b"x" * 600)])
        with pytest.raises(PackagingError):
            read_tar(blob[:700])

    def test_corrupt_checksum_rejected(self):
        blob = bytearray(write_tar([TarEntry(name="f", data=b"x")]))
        blob[0] ^= 0xFF  # flip a byte inside the header
        with pytest.raises(PackagingError):
            read_tar(bytes(blob))

    def test_bad_magic_rejected(self):
        blob = bytearray(write_tar([TarEntry(name="f", data=b"x")]))
        blob[257:262] = b"junk!"
        with pytest.raises(PackagingError):
            read_tar(bytes(blob))

    def test_name_too_long_rejected(self):
        with pytest.raises(PackagingError):
            write_tar([TarEntry(name="x" * 150, data=b"")])

    def test_directory_with_data_rejected(self):
        with pytest.raises(PackagingError):
            write_tar([TarEntry(name="d/", typeflag=TYPE_DIRECTORY, data=b"oops")])

    def test_missing_end_marker_rejected(self):
        blob = write_tar([TarEntry(name="f", data=b"x")])
        with pytest.raises(PackagingError):
            read_tar(blob[:-1024])
