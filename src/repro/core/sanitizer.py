"""Package sanitization (paper sections 4.2 and 5.3).

Sanitizing a package means:

1. **verify** its authenticity and integrity (signature over the control
   segment, datahash over the data segment) against the policy's trusted
   signer keys;
2. **classify** its installation scripts (Table 2) and reject the package
   if any operation is neither safe nor sanitizable (configuration
   changes, shell activation);
3. **rewrite** the scripts: account-creation commands are replaced by the
   repository-wide deterministic prelude; ``passwd -d`` (the
   CVE-2019-5021 pattern) is dropped; predicted configuration files and
   ``touch``-created empty files get ``setfattr`` lines installing TSR's
   IMA signatures;
4. **sign** every file in the data segment (256-byte RSA signatures into
   PAX ``security.ima`` records);
5. **repack** and re-sign the package with the repository's key.

Each phase is timed individually — Table 4's correlations and Fig. 8/12
are computed from these timings.

The pipeline is split at the trust-relevant boundary between
*content-determined* and *repository-determined* work:

* :meth:`Sanitizer.analyze_blob` — parse, verify, classify, and filter
  the scripts.  The result (:class:`PackageAnalysis`) depends only on the
  package bytes and the trusted signer set, so a multi-tenant TSR can
  compute it once per unique upstream blob and share it across tenant
  repositories (the enclave memoizes it under the blob hash — see
  :mod:`repro.core.program`).  Rejections are content-determined too and
  are recorded in the analysis for replay.
* :meth:`Sanitizer.finish_from_analysis` — everything keyed to one
  repository: splice this repository's account prelude and IMA signature
  lines into the filtered scripts, sign every file with the repository
  key, and repack.  Output bytes are identical whether the analysis was
  computed fresh or replayed from the memo.

:meth:`Sanitizer.sanitize_blob` composes the two (the single-tenant
path); its output is unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.archive.apk import ApkPackage, ParsedApk
from repro.core.catalog import RepositoryCatalog
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.ima.subsystem import ima_signature_for, ima_signature_with_cost
from repro.scripts.classify import OperationType, ScriptProfile, classify_script
from repro.scripts.parser import parse_script
from repro.scripts.shell_ast import (
    ConditionalList,
    IfStatement,
    Pipeline,
    Script,
    Statement,
)
from repro.util.errors import ReproError, ScriptError

_ACCOUNT_COMMANDS = frozenset({"adduser", "addgroup", "passwd"})

CONFIG_PATHS = ("/etc/passwd", "/etc/shadow", "/etc/group")


class SanitizationRejected(ReproError):
    """The package cannot be made safe; TSR refuses to publish it."""

    def __init__(self, package: str, reason: str):
        super().__init__(f"package {package!r} rejected: {reason}")
        self.package = package
        self.reason = reason


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each sanitization phase."""

    verify: float = 0.0
    archive: float = 0.0
    scripts: float = 0.0
    sign: float = 0.0

    @property
    def total(self) -> float:
        return self.verify + self.archive + self.scripts + self.sign

    def proportions(self) -> dict[str, float]:
        total = self.total or 1e-12
        return {
            "verify": self.verify / total,
            "archive": self.archive / total,
            "scripts": self.scripts / total,
            "sign": self.sign / total,
        }


@dataclass
class SanitizationResult:
    """A sanitized package plus the measurements the evaluation needs."""

    package: ApkPackage
    blob: bytes
    original_size: int
    sanitized_size: int
    file_count: int
    uncompressed_size: int
    timings: PhaseTimings
    profile: ScriptProfile
    insecure_findings: list[tuple[str, str]] = field(default_factory=list)
    #: True when the content-determined analysis came from the shared
    #: refresh memo (another tenant already paid for parse/verify/classify).
    shared_analysis: bool = False

    @property
    def size_overhead(self) -> float:
        """Fractional growth, e.g. 0.12 for +12 % (Fig. 9)."""
        if self.original_size == 0:
            return 0.0
        return (self.sanitized_size - self.original_size) / self.original_size

    @property
    def working_set_bytes(self) -> int:
        """Peak enclave memory estimate: compressed blob + extracted data."""
        return self.original_size + self.uncompressed_size


@dataclass
class HookAnalysis:
    """Content-determined rewrite state of one installation script."""

    profile: ScriptProfile
    #: Verbatim source for safe scripts (no rewrite needed); None when the
    #: script was filtered and must be re-rendered per repository.
    source: str | None = None
    #: Statements retained after dropping account pipelines (unsafe-but-
    #: sanitizable scripts only).
    kept: list[Statement] = field(default_factory=list)
    #: Original shebang (falls back to ``#!/bin/sh`` at render time).
    shebang: str | None = None
    #: Paths ``touch``-created by the retained statements.
    touched: list[str] = field(default_factory=list)


@dataclass
class PackageAnalysis:
    """Everything about one blob that does not depend on the repository.

    Shareable across tenants whose policies trust the same signer set;
    ``timings`` records the parse/verify/classify cost so the *first*
    repository to sanitize the blob accounts it and memo hits do not.
    """

    package: ApkPackage
    original_size: int
    profile: ScriptProfile
    hooks: dict[str, HookAnalysis]
    timings: PhaseTimings
    #: (package name, reason) when classification rejected the package.
    rejection: tuple[str, str] | None = None

    def charged(self) -> "PackageAnalysis":
        """A view of this analysis whose shared cost is already paid."""
        return PackageAnalysis(
            package=self.package,
            original_size=self.original_size,
            profile=self.profile,
            hooks=self.hooks,
            timings=PhaseTimings(),
            rejection=self.rejection,
        )


class Sanitizer:
    """Sanitizes packages for one TSR repository (one policy)."""

    def __init__(self, signing_key: RsaPrivateKey,
                 trusted_signers: list[RsaPublicKey],
                 catalog: RepositoryCatalog,
                 init_config: dict[str, str]):
        self._signing_key = signing_key
        self._trusted_signers = list(trusted_signers)
        self._catalog = catalog
        self._predicted_config = catalog.predict_config(init_config)
        self._config_signatures = {
            path: ima_signature_for(content.encode(), signing_key)
            for path, content in self._predicted_config.items()
        }
        self._prelude_lines = catalog.prelude_script_lines()
        self._empty_file_signature = ima_signature_for(b"", signing_key)

    @property
    def predicted_config(self) -> dict[str, str]:
        return dict(self._predicted_config)

    @property
    def public_key(self) -> RsaPublicKey:
        return self._signing_key.public_key

    # -- the pipeline ------------------------------------------------------------

    def sanitize_blob(self, blob: bytes) -> SanitizationResult:
        """Run the full sanitization pipeline on raw apk bytes."""
        return self.finish_from_analysis(self.analyze_blob(blob))

    def analyze_blob(self, blob: bytes) -> PackageAnalysis:
        """The content-determined half: parse, verify, classify, filter.

        Never raises for rejected packages — the rejection is recorded so
        a memoized analysis replays it identically per repository.
        """
        timings = PhaseTimings()

        start = time.perf_counter()
        parsed = ApkPackage.parse(blob)
        timings.archive += time.perf_counter() - start

        start = time.perf_counter()
        _, verify_cost = parsed.verify_with_cost(self._trusted_signers)
        # A memoized verdict returns in microseconds but represents the
        # same enclave work as the first computation: charge whichever is
        # larger, so memo hits and fresh verifies account identically.
        timings.verify += max(time.perf_counter() - start, verify_cost)

        package = parsed.package

        start = time.perf_counter()
        profile = ScriptProfile()
        hooks: dict[str, HookAnalysis] = {}
        rejection: tuple[str, str] | None = None
        for hook, source in package.scripts.items():
            try:
                script = parse_script(source)
                hook_profile = classify_script(script)
            except ScriptError as exc:
                rejection = (package.name,
                             f"unparseable script {hook}: {exc}")
                break
            profile = profile.merge(hook_profile)
            if not hook_profile.sanitizable:
                bad = ", ".join(sorted(
                    op.label for op in hook_profile.unsafe_operations
                    if not op.sanitizable
                ))
                rejection = (package.name, f"script {hook} performs: {bad}")
                break
            if hook_profile.safe:
                hooks[hook] = HookAnalysis(profile=hook_profile,
                                           source=source)
                continue
            kept = _filter_statements(script.statements)
            hooks[hook] = HookAnalysis(
                profile=hook_profile,
                kept=kept,
                shebang=script.shebang,
                touched=_touched_paths(kept),
            )
        timings.scripts += time.perf_counter() - start

        return PackageAnalysis(
            package=package,
            original_size=len(blob),
            profile=profile,
            hooks=hooks,
            timings=timings,
            rejection=rejection,
        )

    def finish_from_analysis(self,
                             analysis: PackageAnalysis) -> SanitizationResult:
        """The repository-determined half: render, sign, repack.

        Raises :class:`SanitizationRejected` when the analysis recorded a
        rejection; the shared parse/verify/classify cost carried in
        ``analysis.timings`` is folded into the result's timings (a memo
        hit passes a zero-cost :meth:`PackageAnalysis.charged` view).
        """
        if analysis.rejection is not None:
            raise SanitizationRejected(*analysis.rejection)
        package = analysis.package
        timings = PhaseTimings(
            verify=analysis.timings.verify,
            archive=analysis.timings.archive,
            scripts=analysis.timings.scripts,
        )

        start = time.perf_counter()
        new_scripts: dict[str, str] = {}
        profile = analysis.profile
        for hook, hook_analysis in analysis.hooks.items():
            if hook_analysis.source is not None:
                new_scripts[hook] = hook_analysis.source  # nothing to change
            else:
                new_scripts[hook] = self._render_hook(hook_analysis)
        timings.scripts += time.perf_counter() - start

        start = time.perf_counter()
        signed_files = []
        sign_cost = 0.0
        for pkg_file in package.files:
            signature, cost = ima_signature_with_cost(pkg_file.content,
                                                      self._signing_key)
            sign_cost += cost
            signed_files.append(type(pkg_file)(
                path=pkg_file.path,
                content=pkg_file.content,
                mode=pkg_file.mode,
                ima_signature=signature,
            ))
        config_signatures = {}
        if OperationType.USER_GROUP_CREATION in profile.operations:
            config_signatures = dict(self._config_signatures)
        # Memoized signatures return instantly but stand for real enclave
        # signing work: charge the recorded fresh cost when it dominates.
        timings.sign += max(time.perf_counter() - start, sign_cost)

        sanitized = ApkPackage(
            name=package.name,
            version=package.version,
            arch=package.arch,
            description=package.description,
            depends=list(package.depends),
            scripts=new_scripts,
            files=signed_files,
            config_signatures=config_signatures,
        )

        start = time.perf_counter()
        sanitized_blob, repack_cost = sanitized.build_with_cost(
            self._signing_key, key_name="tsr")
        # Spliced (memoized) segments charge their recorded deflate cost.
        timings.archive += max(time.perf_counter() - start, repack_cost)

        uncompressed = sum(len(f.content) for f in package.files)
        findings = [
            (pkg, user) for pkg, user in self._catalog.insecure_findings
            if pkg == package.name
        ]
        return SanitizationResult(
            package=sanitized,
            blob=sanitized_blob,
            original_size=analysis.original_size,
            sanitized_size=len(sanitized_blob),
            file_count=len(package.files),
            uncompressed_size=uncompressed,
            timings=timings,
            profile=profile,
            insecure_findings=findings,
        )

    # -- script rewriting -----------------------------------------------------------

    def _render_hook(self, analysis: HookAnalysis) -> str:
        """Render one filtered script with this repository's prelude and
        IMA signature lines (the repository-determined rewrite half)."""
        lines: list[str] = []
        if OperationType.USER_GROUP_CREATION in analysis.profile.operations:
            # Deterministic account prelude replaces the script's own
            # adduser/addgroup/passwd commands.
            lines.extend(self._prelude_lines)
        rewritten = Script(statements=analysis.kept,
                           shebang=analysis.shebang or "#!/bin/sh")
        body = rewritten.render().splitlines()
        if body and body[0].startswith("#!"):
            shebang, body = body[0], body[1:]
        else:
            shebang = "#!/bin/sh"
        lines = [shebang, *lines, *body]
        if OperationType.USER_GROUP_CREATION in analysis.profile.operations:
            for path in CONFIG_PATHS:
                signature = self._config_signatures[path]
                lines.append(
                    f"setfattr -n security.ima -v 0x{signature.hex()} {path}"
                )
        for path in analysis.touched:
            lines.append(
                "setfattr -n security.ima -v "
                f"0x{self._empty_file_signature.hex()} {path}"
            )
        return "\n".join(lines) + "\n"


def _filter_statements(statements: list[Statement]) -> list[Statement]:
    """Drop account-management pipelines; recurse into if-statements."""
    kept: list[Statement] = []
    for statement in statements:
        if isinstance(statement, IfStatement):
            then_body = _filter_statements(statement.then_body)
            else_body = _filter_statements(statement.else_body)
            if not then_body and not else_body:
                continue
            kept.append(IfStatement(condition=statement.condition,
                                    then_body=then_body, else_body=else_body))
            continue
        filtered = _filter_conditional(statement)
        if filtered is not None:
            kept.append(filtered)
    return kept


def _filter_conditional(conditional: ConditionalList) -> ConditionalList | None:
    pipelines: list[Pipeline] = []
    connectors: list[str] = []
    previous_connector: str | None = None
    for index, pipeline in enumerate(conditional.pipelines):
        connector = conditional.connectors[index - 1] if index else None
        if _is_account_pipeline(pipeline):
            # Dropping `adduser x && mkdir y` must keep `mkdir y`
            # unconditional; the prelude guarantees the account exists.
            previous_connector = ";" if connector is not None else None
            continue
        if pipelines:
            connectors.append(previous_connector or connector or ";")
        pipelines.append(pipeline)
        previous_connector = None
    if not pipelines:
        return None
    return ConditionalList(pipelines=pipelines, connectors=connectors)


def _is_account_pipeline(pipeline: Pipeline) -> bool:
    return any(cmd.name in _ACCOUNT_COMMANDS for cmd in pipeline.commands)


def _touched_paths(statements: list[Statement]) -> list[str]:
    """Paths created by ``touch`` in the retained statements."""
    touched: list[str] = []
    for command in Script(statements=statements).iter_commands():
        if command.name == "touch":
            touched.extend(arg for arg in command.args if not arg.startswith("-"))
    return touched
