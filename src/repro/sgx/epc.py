"""The EPC (enclave page cache) performance model.

SGXv1 reserves ~128 MB for enclave pages; working sets beyond that incur
EPC paging, the dominant SGX overhead the paper measures (Fig. 12):

* sanitization inside SGX runs ~1.18x slower than native at the median,
* packages whose decompressed size exceeds the EPC hit ~1.96x,
* end to end, the full-repository sanitization goes from 9.5 to 13.6 min
  (~1.43x).

``overhead_factor`` reproduces that shape: a constant instrumentation
factor below the EPC limit, growing linearly with the paged fraction above
it and saturating at the measured worst case.  Calibration constants are
documented in EXPERIMENTS.md and exercised by the Fig. 12 bench.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_EPC_BYTES = 128 * 1024 * 1024

#: Multiplier for enclave transitions + memory-encryption overhead (median
#: SGX slowdown the paper reports for EPC-resident packages).
BASE_FACTOR = 1.18

#: Worst-case multiplier once the working set is dominated by paging.
MAX_FACTOR = 1.96


@dataclass(frozen=True)
class EpcModel:
    """Cost model translating working-set size into an SGX slowdown."""

    epc_bytes: int = DEFAULT_EPC_BYTES
    base_factor: float = BASE_FACTOR
    max_factor: float = MAX_FACTOR

    def exceeds_epc(self, working_set_bytes: int) -> bool:
        return working_set_bytes > self.epc_bytes

    def overhead_factor(self, working_set_bytes: int) -> float:
        """Slowdown multiplier for a given enclave working set."""
        if working_set_bytes < 0:
            raise ValueError("negative working set")
        if working_set_bytes <= self.epc_bytes:
            return self.base_factor
        # Paged fraction of the working set drives the extra cost; one full
        # EPC of excess already pays the worst-case penalty.
        excess = working_set_bytes - self.epc_bytes
        paged_fraction = min(1.0, excess / self.epc_bytes)
        return self.base_factor + (self.max_factor - self.base_factor) * paged_fraction

    def simulated_duration(self, native_seconds: float,
                           working_set_bytes: int) -> float:
        """Native execution time mapped to in-enclave time."""
        if native_seconds < 0:
            raise ValueError("negative duration")
        return native_seconds * self.overhead_factor(working_set_bytes)
