"""Tests for the multi-tenant refresh orchestrator and its layers:
cross-tenant dedupe, shared-enclave serialization, quorum/download
interleaving, cache eviction accounting, and per-repo config hoisting."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.core.cache import PackageCache
from repro.core.orchestrator import RefreshOrchestrator
from repro.core.quorum import entry_agreement
from repro.mirrors.mirror import MirrorBehavior
from repro.util.errors import QuorumError
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    build_scenario,
    multi_tenant_refresh,
)


def _mini_packages(count=8, reps=2000):
    """Small population; every third package creates accounts."""
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=[PackageFile(f"/usr/bin/pkg{i}",
                               (b"\x7fELF" + bytes([i])) * reps)],
        ))
    return packages


def _twin_scenarios(tenants=3, overlap=0.5, **kwargs):
    build = lambda: build_multi_tenant_scenario(  # noqa: E731
        tenants=tenants, overlap=overlap, packages=_mini_packages(), **kwargs)
    return build(), build()


# -- differential: orchestrated == N serial phased refreshes -------------------


class TestOrchestratedDifferential:
    def test_byte_identical_outputs_and_verdicts(self):
        serial_s, orch_s = _twin_scenarios()
        serial = multi_tenant_refresh(serial_s, orchestrated=False)
        orch = multi_tenant_refresh(orch_s)
        assert not serial.orchestrated and orch.orchestrated
        assert set(serial.reports) == set(orch.reports)
        for repo_id in serial_s.tenants:
            a, b = serial.reports[repo_id], orch.reports[repo_id]
            assert a.serial == b.serial
            assert a.changed_packages == b.changed_packages
            assert dict(a.rejected) == dict(b.rejected)
            assert a.sanitized == b.sanitized
            assert sorted(a.insecure_findings) == sorted(b.insecure_findings)
            # Signed sanitized indexes agree byte for byte.
            assert (serial_s.tsr.get_index_bytes(repo_id)
                    == orch_s.tsr.get_index_bytes(repo_id))
            # Served packages are byte-identical.
            for name in b.changed_packages:
                if orch_s.tsr.cache.has_sanitized(repo_id, name):
                    assert (serial_s.tsr.serve_package(repo_id, name)
                            == orch_s.tsr.serve_package(repo_id, name))

    def test_orchestrated_beats_serial_wall_clock(self):
        serial_s, orch_s = _twin_scenarios()
        serial = multi_tenant_refresh(serial_s, orchestrated=False)
        orch = multi_tenant_refresh(orch_s)
        assert orch.wall_elapsed < serial.wall_elapsed
        # Resource-seconds exceed the makespan: phases really overlapped.
        assert orch.phase_sum > orch.wall_elapsed

    def test_clock_advances_by_makespan(self):
        _, scenario = _twin_scenarios()
        before = scenario.clock.now()
        orch = multi_tenant_refresh(scenario)
        assert scenario.clock.now() - before == pytest.approx(
            orch.wall_elapsed)

    def test_orchestrated_single_repo_matches_phased(self):
        """One tenant through the orchestrator is still verdict-identical."""
        a = build_scenario(packages=_mini_packages(), refresh=False,
                           with_monitor=False)
        b = build_scenario(packages=_mini_packages(), refresh=False,
                           with_monitor=False)
        phased = a.tsr.refresh(a.repo_id)
        orch = multi_tenant_refresh(b, repo_ids=[b.repo_id])
        report = orch.reports[b.repo_id]
        assert report.serial == phased.serial
        assert report.changed_packages == phased.changed_packages
        assert a.tsr.get_index_bytes(a.repo_id) == \
            b.tsr.get_index_bytes(b.repo_id)


# -- cross-tenant dedupe -------------------------------------------------------


class TestCrossTenantDedupe:
    def test_shared_packages_downloaded_once(self):
        _, scenario = _twin_scenarios(tenants=3, overlap=0.5)
        orch = multi_tenant_refresh(scenario)
        # The shared core is fetched by one tenant and ridden by the rest.
        assert orch.downloads_deduped > 0
        assert orch.dedupe_bytes_saved > 0
        reports = [orch.reports[r] for r in scenario.tenants]
        # First tenant paid for the core; later tenants deduped it.
        assert sum(r.deduped_downloads for r in reports[1:]) > 0
        # Total bytes moved < what N independent refreshes would move.
        independent = sum(r.downloaded_bytes + r.deduped_download_bytes
                          for r in reports)
        assert orch.downloaded_bytes < independent

    def test_scan_and_analysis_memoized_across_tenants(self):
        _, scenario = _twin_scenarios(tenants=3, overlap=0.5)
        orch = multi_tenant_refresh(scenario)
        assert orch.scans_deduped > 0
        assert orch.sanitize_shared > 0
        stats = orch.memo_stats
        assert stats["scan_hits"] == orch.scans_deduped
        assert stats["analysis_hits"] >= orch.sanitize_shared
        # Every tenant still produced its own full report.
        for repo_id in scenario.tenants:
            report = orch.reports[repo_id]
            assert report.sanitized == len(report.changed_packages)

    def test_dedupe_reaches_later_single_repo_refresh(self):
        """A phased refresh after an orchestrated one rides the content
        store: the new tenant's shared core is not re-downloaded."""
        _, scenario = _twin_scenarios(tenants=2, overlap=0.5)
        multi_tenant_refresh(scenario, repo_ids=[scenario.tenants[0]])
        late = scenario.add_tenant(
            package_whitelist=frozenset(
                p.name for p in _mini_packages()[:4]))
        report = scenario.tsr.refresh(late)
        assert report.deduped_downloads > 0

    def test_catalogs_identical_to_direct_scan(self):
        """Delta replay == direct scan, byte for byte in the catalog."""
        serial_s, orch_s = _twin_scenarios(tenants=2, overlap=1.0)
        multi_tenant_refresh(serial_s, orchestrated=False)
        multi_tenant_refresh(orch_s)
        for repo_id in serial_s.tenants:
            a = serial_s.tsr._enclave.ecall("export_state")[repo_id]
            b = orch_s.tsr._enclave.ecall("export_state")[repo_id]
            assert a["catalog"] == b["catalog"]


# -- enclave serialization -----------------------------------------------------


class TestEnclaveSerialization:
    def test_timeline_is_serial_and_complete(self):
        _, scenario = _twin_scenarios(tenants=3, overlap=0.5)
        orch = multi_tenant_refresh(scenario)
        timeline = orch.enclave_timeline
        assert len(timeline) == orch.sanitized
        previous_finish = 0.0
        for repo_id, name, start, finish in timeline:
            assert start >= previous_finish - 1e-9  # no overlap
            assert finish >= start
            previous_finish = finish
        # All tenants' jobs rode the one channel.
        assert {entry[0] for entry in timeline} == set(scenario.tenants)

    def test_tenants_interleave_on_the_enclave(self):
        """The serial channel is FIFO by blob readiness, not grouped by
        tenant: with overlapping downloads, tenants alternate."""
        _, scenario = _twin_scenarios(tenants=3, overlap=0.5)
        orch = multi_tenant_refresh(scenario)
        order = [entry[0] for entry in orch.enclave_timeline]
        switches = sum(1 for i in range(1, len(order))
                       if order[i] != order[i - 1])
        assert switches > len(set(order)) - 1  # more than one block each


# -- quorum/download interleaving ----------------------------------------------


class TestQuorumInterleaving:
    def _lagging_mirror_scenario(self):
        scenario = build_scenario(packages=_mini_packages(count=6),
                                  refresh=False, with_monitor=False)
        # Freeze a first-wave mirror, then publish an update it never
        # syncs: the first quorum wave disagrees and must widen, but the
        # packages common to both index serials are already agreed.
        scenario.mirrors["mirror-eu-1.example"].behavior = \
            MirrorBehavior.FREEZE
        scenario.origin.publish(ApkPackage(
            name="pkg-00", version="1.1-r0",
            files=[PackageFile("/usr/bin/pkg0", b"\x7fELF new" * 2000)],
        ))
        scenario.sync_mirrors()
        return scenario

    def test_agreed_entries_download_during_widening(self):
        scenario = self._lagging_mirror_scenario()
        orch = multi_tenant_refresh(scenario, repo_ids=[scenario.repo_id])
        report = orch.reports[scenario.repo_id]
        # The 5 unchanged packages are common to the stale and fresh
        # indexes -> agreed by the first wave -> fetched while widening.
        assert report.interleaved_downloads == 5

    def test_interleaved_verdicts_match_phased(self):
        a = self._lagging_mirror_scenario()
        b = self._lagging_mirror_scenario()
        phased = a.tsr.refresh(a.repo_id)
        orch = multi_tenant_refresh(b, repo_ids=[b.repo_id])
        report = orch.reports[b.repo_id]
        assert report.serial == phased.serial
        assert sorted(report.changed_packages) == \
            sorted(phased.changed_packages)
        assert a.tsr.get_index_bytes(a.repo_id) == \
            b.tsr.get_index_bytes(b.repo_id)

    def test_stale_cached_original_does_not_suppress_interleave(self):
        """Incremental refresh: an updated package whose *old* blob is
        cached must still be fetched optimistically once f+1 responses
        agree on its new hash — a stale named original is no substitute."""
        scenario = build_scenario(packages=_mini_packages(count=5),
                                  refresh=False, with_monitor=False)
        scenario.tsr.refresh(scenario.repo_id)  # warm the named cache
        # pkg-00 updates at serial 2; only the slow NA mirror lags to
        # serial 3, so the first (EU) wave disagrees on the whole index
        # while agreeing on pkg-00's *new* hash.
        scenario.origin.publish(ApkPackage(
            name="pkg-00", version="2.0-r0",
            files=[PackageFile("/usr/bin/pkg0", b"\x7fELF v2" * 2000)]))
        scenario.mirrors["mirror-eu-1.example"].sync()
        scenario.origin.publish(ApkPackage(
            name="pkg-01", version="2.0-r0",
            files=[PackageFile("/usr/bin/pkg1", b"\x7fELF v2b" * 2000)]))
        scenario.mirrors["mirror-eu-2.example"].sync()
        scenario.mirrors["mirror-na-1.example"].sync()
        orch = multi_tenant_refresh(scenario, repo_ids=[scenario.repo_id])
        report = orch.reports[scenario.repo_id]
        # pkg-00 v2 is carried by both EU mirrors (f+1 agreement) and is
        # not satisfied by the stale v1 original -> interleaved; pkg-01
        # v2 has only one vote during widening; everything else is a
        # valid cache hit.
        assert report.interleaved_downloads == 1
        assert sorted(report.changed_packages) == ["pkg-00", "pkg-01"]
        assert report.sanitized == 2

    def test_interleave_off_still_correct(self):
        scenario = self._lagging_mirror_scenario()
        orch = multi_tenant_refresh(scenario, repo_ids=[scenario.repo_id],
                                    interleave=False)
        report = orch.reports[scenario.repo_id]
        assert report.interleaved_downloads == 0
        assert report.sanitized == len(report.changed_packages)

    def test_entry_agreement_pigeonhole(self):
        index_a = RepositoryIndex(serial=1)
        index_b = RepositoryIndex(serial=2)
        from repro.archive.index import IndexEntry
        shared = IndexEntry(name="common", version="1", size=10, sha256="aa")
        index_a.add(shared)
        index_b.add(shared)
        index_b.add(IndexEntry(name="only-b", version="1", size=5,
                               sha256="bb"))
        agreed = entry_agreement([index_a, index_b], needed=2)
        assert set(agreed) == {"common"}
        assert agreed["common"] == {"sha256": "aa", "size": 10}
        assert entry_agreement([index_a], needed=2) == {}

    def test_quorum_failure_still_raises(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  refresh=False, with_monitor=False)
        for name in list(scenario.mirrors):
            scenario.network.set_down(name)
        with pytest.raises(QuorumError):
            multi_tenant_refresh(scenario, repo_ids=[scenario.repo_id])


# -- orchestrator input validation --------------------------------------------


class TestOrchestratorValidation:
    def test_rejects_empty_and_duplicate_repos(self):
        _, scenario = _twin_scenarios(tenants=2)
        with pytest.raises(ValueError):
            RefreshOrchestrator(scenario.tsr, [])
        repo = scenario.tenants[0]
        with pytest.raises(ValueError):
            RefreshOrchestrator(scenario.tsr, [repo, repo])
        with pytest.raises(ValueError):
            RefreshOrchestrator(scenario.tsr, [repo], max_streams=0)

    def test_max_streams_caps_tenant_fanout(self):
        _, scenario = _twin_scenarios(tenants=2, overlap=0.0)
        orch = multi_tenant_refresh(scenario, max_streams=1)
        for report in orch.reports.values():
            assert len(set(report.mirror_assignments.values())) <= 1


# -- cache eviction ------------------------------------------------------------


class TestCacheEviction:
    def test_lru_eviction_within_budget(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100)
        cache.put_original("r", "a", b"x" * 60)
        cache.put_original("r", "b", b"y" * 30)
        assert cache.shard_used_bytes(0) == 90
        cache.put_original("r", "c", b"z" * 50)  # evicts a (LRU)
        assert cache.get_original("r", "a") is None
        assert cache.get_original("r", "b") == b"y" * 30
        assert cache.get_original("r", "c") == b"z" * 50
        stats = cache.shard_stats()[0]
        assert stats.evictions == 1
        assert stats.evicted_bytes == 60
        assert cache.shard_used_bytes(0) <= 100

    def test_reads_refresh_recency(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100)
        cache.put_original("r", "a", b"x" * 50)
        cache.put_original("r", "b", b"y" * 30)
        assert cache.get_original("r", "a") is not None  # a now MRU
        cache.put_original("r", "c", b"z" * 40)  # evicts b, not a
        assert cache.get_original("r", "a") is not None
        assert cache.get_original("r", "b") is None

    def test_oversized_blob_never_self_evicts(self):
        cache = PackageCache(shards=1, shard_budget_bytes=10)
        cache.put_original("r", "big", b"x" * 50)
        assert cache.get_original("r", "big") == b"x" * 50

    def test_eviction_attribution_pops_once(self):
        cache = PackageCache(shards=1, shard_budget_bytes=50)
        cache.put_original("r", "a", b"x" * 40)
        cache.put_original("r", "b", b"y" * 40)  # evicts a
        assert cache.original_was_evicted("r", "a")
        assert not cache.original_was_evicted("r", "a")  # popped
        assert not cache.original_was_evicted("r", "b")

    def test_content_store_round_trip_and_eviction(self):
        cache = PackageCache(shards=1, shard_budget_bytes=100)
        sha = cache.put_content(b"blob-1" * 10)
        assert cache.get_content(sha) == b"blob-1" * 10
        assert cache.has_content(sha)
        cache.put_content(b"blob-2" * 12)  # 60 + 72 > 100 -> evicts first
        assert cache.get_content(sha) is None
        assert cache.content_was_evicted(sha)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            PackageCache(shard_budget_bytes=0)

    def test_sealed_state_survives_eviction_pressure(self):
        """Non-package state written directly to the root disk is never an
        eviction candidate."""
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  with_monitor=False,
                                  cache_budget_bytes=4096, cache_shards=1)
        from repro.core.service import SEALED_STATE_PATH
        assert scenario.tsr.cache.disk.isfile(SEALED_STATE_PATH)
        assert sum(s.evictions for s in scenario.tsr.cache.shard_stats()) > 0

    def test_eviction_caused_redownload_surfaces_in_report(self):
        """Tiny budget: tenant A's landed content is evicted before a
        later plan needs it -> the re-download is attributed."""
        scenario = build_multi_tenant_scenario(
            tenants=2, overlap=1.0, packages=_mini_packages(count=6),
            cache_budget_bytes=6000, cache_shards=1)
        first, second = scenario.tenants
        multi_tenant_refresh(scenario, repo_ids=[first])
        orch = multi_tenant_refresh(scenario, repo_ids=[second])
        report = orch.reports[second]
        # With everything shared, whatever was not evicted dedupes and the
        # evicted remainder is re-downloaded and counted.
        assert report.evicted_redownloads > 0
        assert report.evicted_redownloads + report.deduped_downloads + \
            report.interleaved_downloads >= 1
        assert report.sanitized == len(report.changed_packages)

    def test_generous_budget_dedupes_instead(self):
        scenario = build_multi_tenant_scenario(
            tenants=2, overlap=1.0, packages=_mini_packages(count=6))
        first, second = scenario.tenants
        multi_tenant_refresh(scenario, repo_ids=[first])
        orch = multi_tenant_refresh(scenario, repo_ids=[second])
        report = orch.reports[second]
        assert report.evicted_redownloads == 0
        assert report.deduped_downloads == len(report.changed_packages)
        assert report.downloaded_bytes == 0


# -- per-repo config hoisting --------------------------------------------------


class TestRepoConfigHoisting:
    def test_config_cached_across_refreshes(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  refresh=False, with_monitor=False)
        tsr = scenario.tsr
        config = tsr.repo_config(scenario.repo_id)
        assert tsr.repo_config(scenario.repo_id) is config
        calls = []
        original_ecall = tsr._enclave.ecall

        def counting_ecall(entry_point, *args, **kwargs):
            calls.append(entry_point)
            return original_ecall(entry_point, *args, **kwargs)

        tsr._enclave.ecall = counting_ecall
        try:
            tsr.refresh(scenario.repo_id)
            tsr.refresh(scenario.repo_id)
        finally:
            tsr._enclave.ecall = original_ecall
        # The per-call config resolution is gone: the only state exports
        # left are the one-per-refresh sealing flow.
        assert calls.count("export_state") == 2

    def test_config_contents(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  refresh=False, with_monitor=False)
        config = scenario.tsr.repo_config(scenario.repo_id)
        assert config.repo_id == scenario.repo_id
        assert len(config.mirrors) == 3
        assert config.fault_tolerance == 1
        assert config.quorum_needed == 2
        assert {m["hostname"] for m in config.ordered_mirrors} == \
            {m["hostname"] for m in config.mirrors}
        assert config.policy.fault_tolerance == 1

    def test_restart_drops_config_cache(self):
        scenario = build_scenario(packages=_mini_packages(count=4),
                                  with_monitor=False)
        config = scenario.tsr.repo_config(scenario.repo_id)
        scenario.tsr.restart()
        assert scenario.tsr.repo_config(scenario.repo_id) is not config
        # And the repo still refreshes after the restart.
        report = scenario.tsr.refresh(scenario.repo_id)
        assert report.serial >= 1


# -- multi-tenant scenario construction ---------------------------------------


class TestMultiTenantScenario:
    def test_tenant_isolation(self):
        _, scenario = _twin_scenarios(tenants=3, overlap=0.5)
        assert len(scenario.tenants) == 3
        keys = [scenario.tenant_keys[r].fingerprint()
                for r in scenario.tenants]
        assert len(set(keys)) == 3  # per-tenant enclave-held keys
        multi_tenant_refresh(scenario)
        indexes = [
            RepositoryIndex.from_bytes(scenario.tsr.get_index_bytes(r))
            for r in scenario.tenants
        ]
        names = [set(i.entries) for i in indexes]
        # Overlapping cores, distinct exclusive slices.
        assert names[0] & names[1]
        assert names[0] != names[1]

    def test_overlap_bounds_validated(self):
        with pytest.raises(ValueError):
            build_multi_tenant_scenario(tenants=0,
                                        packages=_mini_packages(count=2))
        with pytest.raises(ValueError):
            build_multi_tenant_scenario(overlap=1.5,
                                        packages=_mini_packages(count=2))
        with pytest.raises(ValueError):
            build_multi_tenant_scenario(tenants=2, packages=[])

    def test_full_overlap_shares_everything(self):
        _, scenario = _twin_scenarios(tenants=2, overlap=1.0)
        orch = multi_tenant_refresh(scenario)
        first, second = scenario.tenants
        assert orch.reports[first].changed_packages == \
            orch.reports[second].changed_packages
        assert orch.reports[second].deduped_downloads == \
            len(orch.reports[second].changed_packages)
