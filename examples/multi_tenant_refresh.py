#!/usr/bin/env python3
"""Orchestrated multi-tenant refresh: two tenants, one plan, one enclave.

Two organizations share a cloud-hosted TSR (paper section 5.2) and their
package whitelists overlap in a common core (musl, zlib, nginx).  Instead
of refreshing each repository in its own phased pass, the orchestrator
plans both refreshes on one transfer schedule: the quorum reads
interleave, the shared upstream blobs are downloaded / scanned / analyzed
once (per-tenant signing and cataloging still run per repository), and
both tenants' sanitizations serialize on the single enclave.

Run:  python examples/multi_tenant_refresh.py
"""

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.workload.scenario import build_scenario, multi_tenant_refresh


def main():
    packages = [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl" * 800)]),
        ApkPackage(name="zlib", version="1.2.11-r3", depends=["musl"],
                   files=[PackageFile("/lib/libz.so", b"\x7fELF zlib" * 900)]),
        ApkPackage(name="nginx", version="1.16.1-r6", depends=["musl"],
                   scripts={".pre-install": "addgroup -S www\n"
                                            "adduser -S -G www nginx\n"},
                   files=[PackageFile("/usr/sbin/nginx", b"\x7fELF nginx" * 700)]),
        ApkPackage(name="redis", version="5.0.7-r0", depends=["musl"],
                   scripts={".pre-install": "adduser -S -D -H redis\n"},
                   files=[PackageFile("/usr/bin/redis", b"\x7fELF redis" * 600)]),
        ApkPackage(name="postgresql", version="12.2-r0", depends=["musl"],
                   files=[PackageFile("/usr/bin/postgres", b"\x7fELF pg" * 900)]),
    ]
    core = {"musl", "zlib", "nginx"}

    scenario = build_scenario(packages=packages, key_bits=1024,
                              refresh=False, with_monitor=False,
                              package_whitelist=frozenset(core | {"redis"}))
    tenant_a = scenario.repo_id
    tenant_b = scenario.add_tenant(
        package_whitelist=frozenset(core | {"postgresql"}))
    print(f"tenant A: {tenant_a}  whitelist: {sorted(core | {'redis'})}")
    print(f"tenant B: {tenant_b}  whitelist: {sorted(core | {'postgresql'})}")
    assert (scenario.tenant_keys[tenant_a].fingerprint()
            != scenario.tenant_keys[tenant_b].fingerprint())

    report = multi_tenant_refresh(scenario)
    print(f"\norchestrated wall-clock: {report.wall_elapsed * 1000:.1f} ms "
          f"(phase sum {report.phase_sum * 1000:.1f} ms)")
    print(f"cross-tenant dedupe: {report.downloads_deduped} downloads "
          f"({report.dedupe_bytes_saved} bytes not re-moved), "
          f"{report.scans_deduped} scans, "
          f"{report.sanitize_shared} shared analyses")
    for repo_id in scenario.tenants:
        tenant = report.reports[repo_id]
        print(f"  {repo_id}: sanitized={tenant.sanitized} "
              f"deduped={tenant.deduped_downloads} "
              f"downloaded={tenant.downloaded_bytes}B")

    # The shared core moved over the network exactly once.
    assert report.downloads_deduped == len(core)
    # Every sanitize job rode the single serial enclave channel.
    previous_finish = 0.0
    for repo_id, name, start, finish in report.enclave_timeline:
        assert start >= previous_finish - 1e-9
        previous_finish = finish
    print(f"enclave timeline: {len(report.enclave_timeline)} jobs, "
          "strictly serialized")

    # Tenants stay isolated: each index lists exactly its whitelist and is
    # signed with its own enclave-held key.
    index_a = RepositoryIndex.from_bytes(scenario.tsr.get_index_bytes(tenant_a))
    index_b = RepositoryIndex.from_bytes(scenario.tsr.get_index_bytes(tenant_b))
    assert set(index_a.entries) == core | {"redis"}
    assert set(index_b.entries) == core | {"postgresql"}
    assert index_a.verify(scenario.tenant_keys[tenant_a])
    assert index_b.verify(scenario.tenant_keys[tenant_b])
    print(f"tenant A index: {index_a.package_names()}")
    print(f"tenant B index: {index_b.package_names()}")

    # And the shared blobs still sanitize to *different* signed packages
    # per tenant (per-repo keys), byte-identical to a phased refresh.
    blob_a = scenario.tsr.serve_package(tenant_a, "musl")
    blob_b = scenario.tsr.serve_package(tenant_b, "musl")
    assert blob_a != blob_b
    print("\nmulti-tenant orchestrated refresh complete: one enclave, "
          "one schedule, per-tenant verdicts preserved.")


if __name__ == "__main__":
    main()
