"""Ablation A1 — what the quorum buys: freeze/replay attack outcomes as
the adversary controls more mirrors, vs the single-mirror baseline.

The paper's threat model tolerates f of 2f+1 Byzantine mirrors (section
4.5).  This ablation sweeps the number of frozen mirrors in a 5-mirror
deployment (f=2) and contrasts TSR's quorum with a conventional client
pinned to one mirror.
"""

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.core.policy import MirrorPolicyEntry
from repro.core.quorum import QuorumReader
from repro.crypto.rsa import generate_keypair
from repro.mirrors.builder import MirrorSpec, build_mirror_network, sync_all
from repro.mirrors.mirror import MirrorBehavior
from repro.mirrors.repository import OriginalRepository
from repro.simnet.latency import Continent
from repro.simnet.network import Host, Network
from repro.util.errors import QuorumError

_TOTAL_MIRRORS = 5  # f = 2


def _deploy(frozen: int):
    key = generate_keypair(1024, seed=21)
    origin = OriginalRepository(key)
    origin.publish(ApkPackage(
        name="openssl", version="1.1.1f-r0",
        files=[PackageFile("/usr/lib/libssl.so", b"vulnerable")],
    ))
    stale_serial = origin.serial
    origin.publish(ApkPackage(
        name="openssl", version="1.1.1g-r0",
        files=[PackageFile("/usr/lib/libssl.so", b"patched")],
    ))
    network = Network()
    network.add_host(Host("tsr.eu", Continent.EUROPE))
    specs = []
    for i in range(_TOTAL_MIRRORS):
        behavior = (MirrorBehavior.FREEZE if i < frozen
                    else MirrorBehavior.HONEST)
        specs.append(MirrorSpec(f"m{i}", Continent.EUROPE, behavior=behavior,
                                pinned_serial=stale_serial
                                if behavior is MirrorBehavior.FREEZE else None))
    mirrors = build_mirror_network(origin, specs, network)
    sync_all(mirrors)
    entries = [MirrorPolicyEntry(hostname=s.name, continent=s.continent)
               for s in specs]
    return origin, network, entries, key


def _latest_seen_by_quorum(frozen: int):
    origin, network, entries, key = _deploy(frozen)
    reader = QuorumReader(network, "tsr.eu", entries, [key.public_key])
    try:
        result = reader.read_index()
    except QuorumError:
        return "no quorum", origin.serial
    return result.index.serial, origin.serial


def test_ablation_quorum_vs_adversary(benchmark):
    sweep = benchmark.pedantic(
        lambda: [(_latest_seen_by_quorum(frozen)) for frozen in range(5)],
        rounds=1, iterations=1,
    )
    table = PaperTable(
        experiment="Ablation A1",
        title="Freeze attack vs quorum (5 mirrors, f=2)",
        columns=["frozen mirrors", "index serial accepted", "latest serial",
                 "update visible"],
    )
    outcomes = []
    for frozen, (accepted, latest) in enumerate(sweep):
        visible = accepted == latest
        outcomes.append(visible)
        table.add_row(frozen, accepted, latest, "YES" if visible else "NO")
    table.add_row("1 (single-mirror baseline)", "stale serial", "-",
                  "NO (frozen mirror hides it)")
    table.note("threat model holds for f<=2; above the bound the quorum "
               "cannot help, matching the 2f+1 arithmetic")
    record_table(table)

    # Up to f=2 frozen mirrors the update is always visible.
    assert outcomes[0] and outcomes[1] and outcomes[2]
    # Beyond the bound the adversary wins (this is expected, not a bug).
    assert not outcomes[3]
