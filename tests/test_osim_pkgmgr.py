"""Tests for the apk-like package manager against an in-memory repository."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import IndexEntry, RepositoryIndex
from repro.crypto.hashes import sha256_hex
from repro.ima.subsystem import AppraisalMode, ima_signature_for
from repro.osim.os import IntegrityEnforcedOS
from repro.osim.pkgmgr import PackageManager
from repro.util.errors import (
    IntegrityError,
    PackageManagerError,
    SignatureError,
)


class MemoryRepository:
    """A trivial in-process repository client for unit tests."""

    def __init__(self, signing_key, serial=1):
        self._key = signing_key
        self.serial = serial
        self._blobs: dict[str, bytes] = {}
        self._index = RepositoryIndex(serial=serial)

    def publish(self, package: ApkPackage):
        blob = package.build(self._key)
        self._blobs[package.name] = blob
        self._index.add(IndexEntry(
            name=package.name,
            version=package.version,
            size=len(blob),
            sha256=sha256_hex(blob),
            depends=tuple(package.depends),
        ))
        self._index.sign(self._key)

    def fetch_index(self) -> bytes:
        return self._index.to_bytes()

    def fetch_package(self, name: str) -> bytes:
        return self._blobs[name]


@pytest.fixture()
def repo(rsa_key):
    repo = MemoryRepository(rsa_key)
    repo.publish(ApkPackage(
        name="musl", version="1.1.24-r2",
        files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")],
    ))
    repo.publish(ApkPackage(
        name="zlib", version="1.2.11-r3", depends=["musl"],
        files=[PackageFile("/lib/libz.so.1", b"\x7fELF zlib")],
    ))
    repo.publish(ApkPackage(
        name="openssl", version="1.1.1g-r0", depends=["zlib", "musl"],
        scripts={".post-install": "mkdir -p /etc/ssl\n"},
        files=[PackageFile("/usr/lib/libssl.so.1.1", b"\x7fELF ssl")],
    ))
    return repo


@pytest.fixture()
def node():
    machine = IntegrityEnforcedOS("pm-node")
    machine.boot()
    return machine


@pytest.fixture()
def pm(node, repo, rsa_key):
    manager = PackageManager(node, repo, trusted_keys=[rsa_key.public_key])
    manager.update()
    return manager


class TestIndexHandling:
    def test_update_verifies_signature(self, pm):
        assert pm.index.serial == 1

    def test_untrusted_index_rejected(self, node, repo, rsa_key_alt):
        manager = PackageManager(node, repo, trusted_keys=[rsa_key_alt.public_key])
        with pytest.raises(SignatureError):
            manager.update()

    def test_index_required_before_install(self, node, repo, rsa_key):
        manager = PackageManager(node, repo, trusted_keys=[rsa_key.public_key])
        with pytest.raises(PackageManagerError):
            manager.install("musl")


class TestInstall:
    def test_install_extracts_files(self, pm, node):
        pm.install("musl")
        assert node.fs.read_file("/lib/ld-musl.so") == b"\x7fELF musl"
        assert node.pkgdb.get("musl").version == "1.1.24-r2"

    def test_install_resolves_dependencies(self, pm, node):
        stats = pm.install("openssl")
        assert node.pkgdb.installed_names() == {"musl", "zlib", "openssl"}
        assert stats.packages == 3

    def test_dependency_order(self, pm):
        order = [e.name for e in pm.resolve_install_order("openssl")]
        assert order.index("musl") < order.index("zlib")
        assert order.index("zlib") < order.index("openssl")

    def test_install_runs_scripts(self, pm, node):
        pm.install("openssl")
        assert node.fs.isdir("/etc/ssl")

    def test_install_idempotent(self, pm):
        pm.install("musl")
        stats = pm.install("musl")
        assert stats.packages == 0

    def test_missing_dependency_rejected(self, pm, repo, rsa_key):
        repo.publish(ApkPackage(name="broken", version="1-r0",
                                depends=["no-such-pkg"]))
        pm.update()
        with pytest.raises(PackageManagerError):
            pm.install("broken")

    def test_dependency_cycle_rejected(self, pm, repo):
        repo.publish(ApkPackage(name="a", version="1-r0", depends=["b"]))
        repo.publish(ApkPackage(name="b", version="1-r0", depends=["a"]))
        pm.update()
        with pytest.raises(PackageManagerError):
            pm.install("a")

    def test_size_mismatch_rejected(self, pm, repo):
        # Endless-data defence: blob longer than the signed index size.
        repo._blobs["musl"] += b"\x00" * 10
        with pytest.raises(IntegrityError):
            pm.install("musl")

    def test_hash_mismatch_rejected(self, pm, repo, rsa_key):
        other = ApkPackage(name="musl", version="1.1.24-r2",
                           files=[PackageFile("/lib/evil.so", b"evil")])
        blob = other.build(rsa_key)
        entry = pm.index.get("musl")
        repo._blobs["musl"] = blob + b"\x00" * (entry.size - len(blob)) \
            if len(blob) < entry.size else blob[:entry.size]
        with pytest.raises(IntegrityError):
            pm.install("musl")

    def test_untrusted_package_signature_rejected(self, pm, repo, rsa_key_alt):
        evil = ApkPackage(name="musl", version="1.1.24-r2",
                          files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")])
        blob = evil.build(rsa_key_alt)  # attacker's key
        repo._blobs["musl"] = blob
        entry = pm.index.get("musl")
        # Even with a matching index entry the signature must fail.
        repo._index.add(IndexEntry(name="musl", version="1.1.24-r2",
                                   size=len(blob), sha256=sha256_hex(blob)))
        repo._index.sign(repo._key)
        pm.update()
        with pytest.raises(SignatureError):
            pm.install("musl")

    def test_ima_xattrs_materialized(self, pm, node, repo, rsa_key):
        content = b"\x7fELF signed tool"
        package = ApkPackage(
            name="tool", version="1-r0",
            files=[PackageFile("/usr/bin/tool", content,
                               ima_signature=ima_signature_for(content, rsa_key))],
        )
        repo.publish(package)
        pm.update()
        pm.install("tool")
        assert node.fs.get_xattr("/usr/bin/tool", "security.ima") is not None

    def test_failing_script_aborts(self, pm, repo):
        repo.publish(ApkPackage(name="bad", version="1-r0",
                                scripts={".post-install": "exit 1\n"}))
        pm.update()
        with pytest.raises(PackageManagerError):
            pm.install("bad")


class TestUpgrade:
    def test_upgrade_replaces_files(self, pm, node, repo):
        pm.install("musl")
        repo.publish(ApkPackage(
            name="musl", version="1.1.24-r3",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl v2")],
        ))
        pm.update()
        upgrades = pm.available_upgrades()
        assert [e.version for e in upgrades] == ["1.1.24-r3"]
        pm.upgrade_all()
        assert node.fs.read_file("/lib/ld-musl.so") == b"\x7fELF musl v2"
        assert node.pkgdb.get("musl").version == "1.1.24-r3"

    def test_upgrade_removes_dropped_files(self, pm, node, repo):
        repo.publish(ApkPackage(
            name="app", version="1-r0",
            files=[PackageFile("/usr/bin/app", b"v1"),
                   PackageFile("/usr/share/app/legacy.dat", b"old")],
        ))
        pm.update()
        pm.install("app")
        repo.publish(ApkPackage(
            name="app", version="2-r0",
            files=[PackageFile("/usr/bin/app", b"v2")],
        ))
        pm.update()
        pm.upgrade_all()
        assert not node.fs.exists("/usr/share/app/legacy.dat")

    def test_upgrade_runs_upgrade_scripts(self, pm, node, repo):
        repo.publish(ApkPackage(name="svc", version="1-r0"))
        pm.update()
        pm.install("svc")
        repo.publish(ApkPackage(
            name="svc", version="2-r0",
            scripts={".post-upgrade": "touch /var/svc-upgraded\n"},
        ))
        pm.update()
        pm.upgrade_all()
        assert node.fs.exists("/var/svc-upgraded")

    def test_no_upgrades_when_current(self, pm):
        pm.install("musl")
        assert pm.available_upgrades() == []

    def test_tampered_db_triggers_upgrade(self, pm, node):
        """The Fig. 11 methodology: fake an outdated version in the DB."""
        pm.install("musl")
        node.pkgdb.mark_outdated("musl")
        assert [e.name for e in pm.available_upgrades()] == ["musl"]


class TestUninstall:
    def test_uninstall_removes_files(self, pm, node):
        pm.install("musl")
        pm.uninstall("musl")
        assert not node.fs.exists("/lib/ld-musl.so")
        assert node.pkgdb.get("musl") is None

    def test_uninstall_missing_rejected(self, pm):
        with pytest.raises(PackageManagerError):
            pm.uninstall("ghost")


class TestIntegrityInteraction:
    def test_exercise_measures_package_files(self, pm, node):
        pm.install("musl")
        before = {m.path for m in node.ima.measurements}
        assert "/lib/ld-musl.so" not in before
        pm.exercise("musl")
        after = {m.path for m in node.ima.measurements}
        assert "/lib/ld-musl.so" in after

    def test_unsigned_update_breaks_appraisal(self, repo, rsa_key):
        """End-to-end: enforcing node rejects files from un-sanitized
        packages — the core problem the paper solves."""
        node = IntegrityEnforcedOS("strict", appraisal=AppraisalMode.ENFORCE,
                                   vendor_key=rsa_key)
        node.boot()
        manager = PackageManager(node, repo, trusted_keys=[rsa_key.public_key])
        manager.update()
        manager.install("musl")  # extracts fine: writes are not appraised
        from repro.util.errors import FileSystemError
        with pytest.raises(FileSystemError):
            node.load_file("/lib/ld-musl.so")  # no security.ima -> denied
