"""Continent-level latency and bandwidth model.

Calibration anchors from the paper's testbed and evaluation:

* TSR runs in Europe; an official Alpine mirror on the same continent shows
  an average network latency of 26.4 ms (Fig. 10 setup).
* Downloading ~3 GB of packages from upstream takes ~17 minutes (Table 3),
  i.e. roughly 3 MB/s sustained from a single mirror.
* Cross-continent quorums (Fig. 13) reach ~2.2 s for nine mirrors, implying
  intercontinental round trips in the 100-300 ms range.

The matrix below encodes those anchors; jitter is deterministic per
(src, dst, sequence) so repeated runs produce identical series.
"""

from __future__ import annotations

import enum
import random

DEFAULT_BANDWIDTH_BYTES_PER_S = 3 * 1024 * 1024  # ~3 MB/s, Table 3 anchor
LOCAL_DISK_BANDWIDTH_BYTES_PER_S = 450 * 1024 * 1024  # SATA SSD, testbed
LOCAL_DISK_SEEK_S = 0.0001


class Continent(enum.Enum):
    """Geographic regions used in the paper's Fig. 13 scenarios."""

    EUROPE = "europe"
    NORTH_AMERICA = "north_america"
    ASIA = "asia"

    @classmethod
    def parse(cls, text: str) -> "Continent":
        normalized = text.strip().lower().replace(" ", "_").replace("-", "_")
        for member in cls:
            if member.value == normalized:
                return member
        aliases = {"eu": cls.EUROPE, "na": cls.NORTH_AMERICA, "as": cls.ASIA,
                   "america": cls.NORTH_AMERICA, "us": cls.NORTH_AMERICA}
        if normalized in aliases:
            return aliases[normalized]
        raise ValueError(f"unknown continent: {text!r}")


# Round-trip times in seconds between continents (symmetric).
_RTT_MATRIX: dict[frozenset[Continent], float] = {
    frozenset([Continent.EUROPE]): 0.0264,
    frozenset([Continent.NORTH_AMERICA]): 0.030,
    frozenset([Continent.ASIA]): 0.042,
    frozenset([Continent.EUROPE, Continent.NORTH_AMERICA]): 0.095,
    frozenset([Continent.EUROPE, Continent.ASIA]): 0.205,
    frozenset([Continent.NORTH_AMERICA, Continent.ASIA]): 0.160,
}

_JITTER_FRACTION = 0.15


class LatencyModel:
    """Deterministic RTT + bandwidth model between continents."""

    def __init__(self, rtt_matrix: dict[frozenset[Continent], float] | None = None,
                 jitter: float = _JITTER_FRACTION, seed: int = 0):
        self._rtt = dict(rtt_matrix or _RTT_MATRIX)
        if not 0 <= jitter < 1:
            raise ValueError(f"jitter fraction out of range: {jitter}")
        self._jitter = jitter
        self._seed = seed
        self._sequence = 0

    def base_rtt(self, src: Continent, dst: Continent) -> float:
        """Jitter-free round-trip time between two continents."""
        key = frozenset([src, dst])
        if key not in self._rtt:
            raise ValueError(f"no RTT configured for {src} <-> {dst}")
        return self._rtt[key]

    def rtt(self, src: Continent, dst: Continent) -> float:
        """Round-trip time with deterministic jitter applied."""
        base = self.base_rtt(src, dst)
        self._sequence += 1
        rng = random.Random(f"{self._seed}:{src.value}:{dst.value}:{self._sequence}")
        spread = base * self._jitter
        return max(0.0, base + rng.uniform(-spread, spread))

    def transfer_time(self, size_bytes: int,
                      bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_S) -> float:
        """Seconds to move a payload at the given sustained bandwidth."""
        if size_bytes < 0:
            raise ValueError("negative payload size")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        return size_bytes / bandwidth


DEFAULT_LATENCY_MODEL = LatencyModel()
