"""Tests for repository clients, attested onboarding, and bench helpers."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.bench.costs import InstallCostModel
from repro.bench.report import PaperTable, record_table, recorded_tables, reset_tables
from repro.core.client import (
    MirrorRepositoryClient,
    TsrRepositoryClient,
    deploy_policy_with_attestation,
)
from repro.osim.pkgmgr import InstallStats
from repro.sgx.platform import AttestationService
from repro.simnet.latency import Continent
from repro.simnet.network import Host
from repro.util.errors import AttestationError
from repro.workload.scenario import build_scenario


def _packages():
    return [ApkPackage(name="musl", version="1.1.24-r2",
                       files=[PackageFile("/lib/ld-musl.so", b"\x7fELF")])]


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(packages=_packages(), key_bits=1024,
                          with_monitor=False)


class TestClients:
    def test_tsr_client_fetches_index_and_package(self, scenario):
        scenario.network.add_host(Host("client-host", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "client-host",
                                     scenario.tsr.hostname, scenario.repo_id)
        index = RepositoryIndex.from_bytes(client.fetch_index())
        assert index.verify(scenario.tsr_public_key)
        blob = client.fetch_package("musl")
        assert ApkPackage.parse(blob).verify([scenario.tsr_public_key])

    def test_mirror_client_fetches_upstream(self, scenario):
        scenario.network.add_host(Host("client-host-2", Continent.EUROPE))
        mirror = next(iter(scenario.mirrors))
        client = MirrorRepositoryClient(scenario.network, "client-host-2",
                                        mirror)
        index = RepositoryIndex.from_bytes(client.fetch_index())
        assert index.verify(scenario.distro_key.public_key)

    def test_clients_advance_clock(self, scenario):
        scenario.network.add_host(Host("client-host-3", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "client-host-3",
                                     scenario.tsr.hostname, scenario.repo_id)
        before = scenario.clock.now()
        client.fetch_index()
        assert scenario.clock.now() > before


def _dep_packages():
    return [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF m" * 500)]),
        ApkPackage(name="zlib", version="1.2.11-r3", depends=["musl"],
                   files=[PackageFile("/lib/libz.so", b"\x7fELF z" * 700)]),
        ApkPackage(name="busybox", version="1.31-r0",
                   files=[PackageFile("/bin/busybox2", b"\x7fELF b" * 300)]),
    ]


class TestScheduledClientFetch:
    """Batch fetches and the overlapped index+package install path."""

    @pytest.fixture()
    def dep_scenario(self):
        return build_scenario(packages=_dep_packages(), key_bits=1024,
                              with_monitor=False)

    def test_fetch_packages_matches_serial_payloads(self, dep_scenario):
        scenario = dep_scenario
        scenario.network.add_host(Host("batch-host", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "batch-host",
                                     scenario.tsr.hostname, scenario.repo_id)
        serial = {name: client.fetch_package(name)
                  for name in ("musl", "zlib")}
        batch = client.fetch_packages(["musl", "zlib"], connections=2)
        assert batch == serial

    def test_batch_fetch_advances_clock_less_than_serial(self, dep_scenario):
        scenario = dep_scenario
        scenario.network.add_host(Host("t-serial", Continent.EUROPE))
        scenario.network.add_host(Host("t-batch", Continent.EUROPE))
        client_a = TsrRepositoryClient(scenario.network, "t-serial",
                                       scenario.tsr.hostname,
                                       scenario.repo_id)
        before = scenario.clock.now()
        for name in ("musl", "zlib", "busybox"):
            client_a.fetch_package(name)
        serial_elapsed = scenario.clock.now() - before
        client_b = TsrRepositoryClient(scenario.network, "t-batch",
                                       scenario.tsr.hostname,
                                       scenario.repo_id)
        before = scenario.clock.now()
        client_b.fetch_packages(["musl", "zlib", "busybox"], connections=3)
        batch_elapsed = scenario.clock.now() - before
        assert batch_elapsed < serial_elapsed

    def test_fetch_index_and_packages_overlaps(self, dep_scenario):
        scenario = dep_scenario
        scenario.network.add_host(Host("ov-host", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "ov-host",
                                     scenario.tsr.hostname, scenario.repo_id)
        index_blob, blobs = client.fetch_index_and_packages(
            ["musl", "zlib"], connections=2)
        index = RepositoryIndex.from_bytes(index_blob)
        assert index.verify(scenario.tsr_public_key)
        assert set(blobs) == {"musl", "zlib"}
        assert blobs["musl"] == client.fetch_package("musl")

    def test_connections_validated(self, dep_scenario):
        scenario = dep_scenario
        scenario.network.add_host(Host("val-host", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "val-host",
                                     scenario.tsr.hostname, scenario.repo_id)
        with pytest.raises(ValueError):
            client.fetch_packages(["musl"], connections=0)

    def test_install_batch_equivalent_to_serial_installs(self, dep_scenario):
        scenario = dep_scenario
        node_a, manager_a = scenario.new_node("serial-node")
        manager_a.update()
        stats_a = InstallStats()
        manager_a.install("zlib", stats_a)   # pulls musl via the closure
        manager_a.install("busybox", stats_a)

        node_b, manager_b = scenario.new_node("batch-node")
        stats_b = manager_b.install_batch(["zlib", "busybox"], connections=2)

        assert stats_b.packages == stats_a.packages == 3
        assert stats_b.bytes_downloaded == stats_a.bytes_downloaded
        assert ({p.name for p in node_b.pkgdb.all()}
                == {p.name for p in node_a.pkgdb.all()})
        for pkg in node_a.pkgdb.all():
            other = node_b.pkgdb.get(pkg.name)
            assert other is not None
            assert other.content_hash == pkg.content_hash

    def test_install_batch_faster_than_serial_path(self, dep_scenario):
        scenario = dep_scenario
        node_a, manager_a = scenario.new_node("slow-node")
        before = scenario.clock.now()
        manager_a.update()
        manager_a.install("zlib")
        manager_a.install("busybox")
        serial_elapsed = scenario.clock.now() - before

        node_b, manager_b = scenario.new_node("fast-node")
        before = scenario.clock.now()
        manager_b.install_batch(["zlib", "busybox"], connections=4)
        batch_elapsed = scenario.clock.now() - before
        assert batch_elapsed < serial_elapsed

    def test_empty_batch_is_free(self, dep_scenario):
        scenario = dep_scenario
        scenario.network.add_host(Host("empty-host", Continent.EUROPE))
        client = TsrRepositoryClient(scenario.network, "empty-host",
                                     scenario.tsr.hostname, scenario.repo_id)
        before = scenario.clock.now()
        assert client.fetch_packages([]) == {}
        assert scenario.clock.now() == before  # no phantom timeout

    def test_install_batch_rejected_name_matches_serial_error(self,
                                                              dep_scenario):
        """A name the repository does not serve must fail exactly like the
        serial path (PackageManagerError at resolution, after the fresh
        index arrived) — not abort the optimistic wave with a transport
        error."""
        from repro.util.errors import PackageManagerError
        scenario = dep_scenario
        node, manager = scenario.new_node("reject-node")
        with pytest.raises(PackageManagerError):
            manager.install_batch(["musl", "no-such-package"])
        # The index still landed and valid prefetches are not lost state:
        # a follow-up batch of the good names succeeds.
        stats = manager.install_batch(["musl"])
        assert stats.packages == 1

    def test_install_batch_works_against_mirror_client(self, dep_scenario):
        scenario = dep_scenario
        node, manager = scenario.new_node("mirror-node", use_tsr=False)
        stats = manager.install_batch(["zlib"], connections=2)
        assert stats.packages == 2  # musl came along via the closure
        assert node.pkgdb.get("musl") is not None


class TestAttestedOnboarding:
    def test_happy_path(self, scenario):
        scenario.network.add_host(Host("owner", Continent.EUROPE))
        repo_id, key = deploy_policy_with_attestation(
            scenario.network, "owner", scenario.tsr.hostname,
            scenario.policy.to_yaml(), scenario.attestation_service,
            expected_mrenclave=scenario.tsr._enclave.mrenclave,
        )
        assert repo_id.startswith("repo-")
        assert key.fingerprint()

    def test_wrong_mrenclave_rejected(self, scenario):
        scenario.network.add_host(Host("owner-2", Continent.EUROPE))
        with pytest.raises(AttestationError):
            deploy_policy_with_attestation(
                scenario.network, "owner-2", scenario.tsr.hostname,
                scenario.policy.to_yaml(), scenario.attestation_service,
                expected_mrenclave=b"\x00" * 32,
            )

    def test_unknown_attestation_service_rejected(self, scenario):
        scenario.network.add_host(Host("owner-3", Continent.EUROPE))
        with pytest.raises(AttestationError):
            deploy_policy_with_attestation(
                scenario.network, "owner-3", scenario.tsr.hostname,
                scenario.policy.to_yaml(), AttestationService(),
            )


class TestInstallCostModel:
    def test_monotone_in_every_dimension(self):
        model = InstallCostModel()
        base = InstallStats(packages=1, files_written=2, bytes_written=1000,
                            xattrs_written=0, scripts_run=0)
        bigger = InstallStats(packages=1, files_written=20,
                              bytes_written=10_000, xattrs_written=20,
                              scripts_run=2)
        assert model.install_seconds(bigger) > model.install_seconds(base)

    def test_xattrs_add_cost(self):
        """The Fig.-11 delta driver: signature installation costs time."""
        model = InstallCostModel()
        plain = InstallStats(packages=1, files_written=10, bytes_written=10_000)
        signed = InstallStats(packages=1, files_written=10,
                              bytes_written=10_000, xattrs_written=10)
        assert model.install_seconds(signed) > model.install_seconds(plain)

    def test_typical_regime_matches_paper_order(self):
        model = InstallCostModel()
        typical = InstallStats(packages=1, files_written=15,
                               bytes_written=150_000, xattrs_written=15,
                               scripts_run=1)
        seconds = model.install_seconds(typical)
        assert 0.03 < seconds < 0.3  # the paper's ~100-200 ms regime


class TestPaperTable:
    def test_render_and_record(self):
        reset_tables()
        table = PaperTable(experiment="Table X", title="demo",
                           columns=["a", "b"])
        table.add_row(1, "two")
        table.note("a note")
        record_table(table)
        rendered = recorded_tables()[0].render()
        assert "Table X" in rendered
        assert "a note" in rendered
        reset_tables()
        assert recorded_tables() == []

    def test_row_arity_checked(self):
        table = PaperTable(experiment="T", title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_alignment(self):
        table = PaperTable(experiment="T", title="t",
                           columns=["name", "value"])
        table.add_row("a-very-long-cell", 1)
        table.add_row("b", 22222)
        lines = table.render().splitlines()
        # Header and rows share the same separator column position.
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1
