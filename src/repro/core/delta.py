"""Delta-update envelopes: signed index diffs and chunked package patches.

PR 5's trace replay made the TSR uplink the fleet-scale bottleneck: every
pull wave re-transfers the full signed index and whole packages to every
client.  This module implements the wire formats of the delta path (CASU's
minimal-authenticated-payload shape, PAPERS.md):

**Index deltas.**  A client sends the serial of its last authenticated
index; the TSR answers from its publication log with one of three
envelopes, each a real byte string so transfer accounting stays honest:

* ``isame:<serial>:<body sha256>`` — the client is current.
* ``idelta:<base serial>:<base body sha256>`` header, the **target's
  existing enclave signature**, the target serial, ``U:`` lines for new or
  changed entries (canonical body-line format) and ``R:`` lines for
  removals.  The client splices these into its authenticated base index,
  reconstructs the canonical body, and verifies the enclave signature over
  the *reconstruction* — so no new signing operation is needed, and any
  tampering with the diff fails signature verification exactly as a
  tampered full index would.  A target serial not newer than the base is
  rejected *before* the signature is even checked: a correctly-signed but
  old index is precisely the paper's rollback attack.
* ``ifull:<reason>`` + full index bytes — fallback (client too far behind
  the publication-log depth bound, unknown base, delta not smaller, …).

**Package deltas.**  Payloads diff at the *uncompressed data segment*
level: gzip output diverges completely after a one-byte source change, so
diffing compressed apk bytes saves almost nothing.  The apk's signature
and control segments travel as literals (they are small and the signature
covers the compressed control bytes), the data segment as content-defined
chunk ops (:mod:`repro.archive.chunks`) against the client's cached prior
version.  The client patches the decompressed data tar, recompresses with
the repo's deterministic gzip, reassembles the three streams, and checks
the whole-blob SHA-256 from the envelope — the package manager then
re-verifies size, hash and signature against the signed index exactly as
for a full pull, so accepted bytes are *identical* to a full pull by
construction.  The TSR side needs only a chunk *manifest* (ordered chunk
ids) of the base, never its bytes: manifests live in the package cache
(:meth:`repro.core.cache.PackageCache.put_chunk_manifest`).

Every malformed, mismatched, or unapplicable envelope raises
:class:`DeltaError` (or :class:`RollbackError` for the stale-serial case)
and the client falls back to a full pull — the delta path can lose
efficiency, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive.chunks import (
    apply_chunk_ops,
    build_chunk_ops,
    chunk_ids,
    chunk_map,
    decode_ops,
    encode_ops,
)
from repro.archive.gz import gzip_compress, gzip_decompress, split_gzip_streams
from repro.archive.index import (
    IndexEntry,
    RepositoryIndex,
    format_entry_line,
    parse_entry_line,
)
from repro.crypto.hashes import sha256_hex
from repro.util.errors import DeltaError, PackagingError, RollbackError

INDEX_DELTA_PREFIX = b"idelta:"
INDEX_SAME_PREFIX = b"isame:"
INDEX_FULL_PREFIX = b"ifull:"
PACKAGE_DELTA_PREFIX = b"pdelta:"
PACKAGE_FULL_PREFIX = b"pfull:"
MANIFEST_HEADER = b"chunks:1\n"


def index_body_sha256(index_bytes: bytes) -> str:
    """Body hash of serialized index bytes (everything past the sig line)."""
    _, _, body = index_bytes.partition(b"\n")
    if not body:
        raise DeltaError("index bytes carry no body")
    return sha256_hex(body)


# -- index deltas -------------------------------------------------------------


@dataclass
class IndexDeltaEnvelope:
    """A parsed index-delta response (any of the three kinds)."""

    kind: str  # "delta" | "same" | "full"
    reason: str = ""            # full only
    full_bytes: bytes = b""     # full only
    serial: int = 0             # target serial (delta/same)
    body_sha256: str = ""       # same only
    base_serial: int = 0        # delta only
    base_body_sha256: str = ""  # delta only
    signature: bytes = b""      # delta only: the target's enclave signature
    changed: list[IndexEntry] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)


def build_index_delta(base: RepositoryIndex,
                      target: RepositoryIndex) -> bytes:
    """Serialize the ``idelta`` envelope taking ``base`` to ``target``."""
    if target.signature is None:
        raise DeltaError("cannot build a delta to an unsigned index")
    changed = target.diff_updated(base)
    removed = sorted(name for name in base.entries
                     if name not in target.entries)
    lines = [
        f"idelta:{base.serial}:{base.body_hash()}",
        f"sig:{target.signature.hex()}",
        f"serial:{target.serial}",
    ]
    lines.extend("U:" + format_entry_line(entry) for entry in changed)
    lines.extend("R:" + name for name in removed)
    return ("\n".join(lines) + "\n").encode()


def index_unchanged_envelope(serial: int, body_sha256: str) -> bytes:
    return f"isame:{serial}:{body_sha256}\n".encode()


def index_full_envelope(reason: str, index_bytes: bytes) -> bytes:
    return f"ifull:{reason}\n".encode() + index_bytes


def parse_index_delta_envelope(payload: bytes) -> IndexDeltaEnvelope:
    """Classify and parse an index-delta response."""
    if payload.startswith(INDEX_FULL_PREFIX):
        header, _, rest = payload.partition(b"\n")
        reason = header[len(INDEX_FULL_PREFIX):].decode("ascii",
                                                        errors="replace")
        return IndexDeltaEnvelope(kind="full", reason=reason, full_bytes=rest)
    if payload.startswith(INDEX_SAME_PREFIX):
        line = payload[len(INDEX_SAME_PREFIX):].rstrip(b"\n")
        try:
            serial_text, body_sha = line.decode().split(":")
            return IndexDeltaEnvelope(kind="same", serial=int(serial_text),
                                      body_sha256=body_sha)
        except (UnicodeDecodeError, ValueError) as exc:
            raise DeltaError(f"malformed isame envelope: {exc}") from exc
    if not payload.startswith(INDEX_DELTA_PREFIX):
        raise DeltaError("unrecognized index delta envelope")
    try:
        text = payload.decode()
    except UnicodeDecodeError as exc:
        raise DeltaError(f"undecodable index delta: {exc}") from exc
    lines = text.splitlines()
    try:
        base_serial_text, base_body_sha = lines[0][len("idelta:"):].split(":")
        envelope = IndexDeltaEnvelope(
            kind="delta",
            base_serial=int(base_serial_text),
            base_body_sha256=base_body_sha,
        )
        if not lines[1].startswith("sig:"):
            raise DeltaError("index delta missing signature line")
        envelope.signature = bytes.fromhex(lines[1][len("sig:"):])
        if not lines[2].startswith("serial:"):
            raise DeltaError("index delta missing serial line")
        envelope.serial = int(lines[2][len("serial:"):])
    except (IndexError, ValueError) as exc:
        raise DeltaError(f"malformed index delta header: {exc}") from exc
    for line in lines[3:]:
        if not line.strip():
            continue
        if line.startswith("U:"):
            try:
                envelope.changed.append(parse_entry_line(line[2:]))
            except PackagingError as exc:
                raise DeltaError(f"malformed delta entry: {exc}") from exc
        elif line.startswith("R:"):
            envelope.removed.append(line[2:])
        else:
            raise DeltaError(f"unknown index delta line {line!r}")
    return envelope


def apply_index_delta(base: RepositoryIndex,
                      envelope: IndexDeltaEnvelope) -> RepositoryIndex:
    """Splice a parsed ``idelta`` envelope into the authenticated base.

    Returns the reconstructed index carrying the envelope's signature —
    the caller MUST still verify that signature against its trusted keys
    (the reconstruction covers the canonical body, so verification has
    the same strength as for a fully transferred index).
    """
    if envelope.kind != "delta":
        raise DeltaError(f"cannot apply a {envelope.kind!r} envelope")
    if envelope.base_serial != base.serial \
            or envelope.base_body_sha256 != base.body_hash():
        raise DeltaError(
            f"delta base serial {envelope.base_serial} does not match the "
            f"client index (serial {base.serial})"
        )
    # Rollback oracle: refuse a non-newer target before even looking at
    # the signature — a validly signed *old* index is the attack.
    if envelope.serial <= base.serial:
        raise RollbackError(
            f"index delta targets serial {envelope.serial} <= current "
            f"{base.serial} (rollback attack)"
        )
    entries = dict(base.entries)
    for name in envelope.removed:
        if name not in entries:
            raise DeltaError(f"delta removes unknown package {name!r}")
        del entries[name]
    for entry in envelope.changed:
        entries[entry.key()] = entry
    rebuilt = RepositoryIndex(serial=envelope.serial, entries=entries)
    rebuilt.signature = envelope.signature
    return rebuilt


# -- package chunk manifests --------------------------------------------------


def blob_manifest(blob: bytes) -> bytes:
    """Chunk manifest of an apk blob's *uncompressed data segment*."""
    _, _, data_gz = split_gzip_streams(blob, expected=3)
    data = gzip_decompress(data_gz)
    return MANIFEST_HEADER + "".join(
        f"{cid}\n" for cid in chunk_ids(data)).encode()


def parse_manifest(manifest: bytes) -> list[str]:
    if not manifest.startswith(MANIFEST_HEADER):
        raise DeltaError("unrecognized chunk manifest header")
    ids = manifest[len(MANIFEST_HEADER):].decode("ascii",
                                                 errors="replace").split()
    for cid in ids:
        if len(cid) != 16 or any(c not in "0123456789abcdef" for c in cid):
            raise DeltaError(f"malformed chunk id {cid!r}")
    return ids


# -- package deltas -----------------------------------------------------------


def build_package_delta(base_manifest: bytes,
                        target_blob: bytes) -> bytes | None:
    """Build the ``pdelta`` envelope, or ``None`` when it would not be
    smaller than the full blob (the caller serves a full pull instead).

    Only the base's manifest is needed: the diff matches the target's
    content-defined chunks against the base's chunk *ids*.
    """
    base_ids = set(parse_manifest(base_manifest))
    try:
        sig_gz, control_gz, data_gz = split_gzip_streams(target_blob,
                                                         expected=3)
        data = gzip_decompress(data_gz)
    except PackagingError as exc:
        raise DeltaError(f"target blob is not a valid apk: {exc}") from exc
    ops = build_chunk_ops(base_ids, data)
    inner = (b"S:%d\n" % len(sig_gz) + sig_gz
             + b"C:%d\n" % len(control_gz) + control_gz
             + encode_ops(ops))
    envelope = (f"pdelta:{sha256_hex(target_blob)}:{len(target_blob)}\n"
                .encode() + gzip_compress(inner))
    if len(envelope) >= len(target_blob):
        return None
    return envelope


def package_full_envelope(reason: str, blob: bytes) -> bytes:
    return f"pfull:{reason}\n".encode() + blob


def parse_package_delta_envelope(payload: bytes,
                                 ) -> tuple[str, str, bytes]:
    """Classify a package-delta response.

    Returns ``("full", reason, blob)`` or ``("delta", new_sha256,
    compressed_inner)`` (with the declared size folded into the sha tuple
    by :func:`apply_package_delta`).
    """
    if payload.startswith(PACKAGE_FULL_PREFIX):
        header, _, rest = payload.partition(b"\n")
        reason = header[len(PACKAGE_FULL_PREFIX):].decode("ascii",
                                                          errors="replace")
        return "full", reason, rest
    if not payload.startswith(PACKAGE_DELTA_PREFIX):
        raise DeltaError("unrecognized package delta envelope")
    header, _, rest = payload.partition(b"\n")
    return "delta", header[len(PACKAGE_DELTA_PREFIX):].decode(
        "ascii", errors="replace"), rest


def apply_package_delta(base_blob: bytes, payload: bytes) -> bytes:
    """Patch the client's cached base apk into the target apk.

    The result is checked against the envelope's declared size and
    SHA-256; any mismatch (tampering, chunk-id collision, divergent
    recompression) raises :class:`DeltaError` and the caller falls back
    to a full pull.
    """
    kind, header, inner_gz = parse_package_delta_envelope(payload)
    if kind != "delta":
        raise DeltaError(f"cannot apply a {kind!r} package envelope")
    try:
        new_sha, size_text = header.split(":")
        new_size = int(size_text)
    except ValueError as exc:
        raise DeltaError(f"malformed pdelta header {header!r}") from exc
    try:
        inner = gzip_decompress(inner_gz)
        _, _, base_data_gz = split_gzip_streams(base_blob, expected=3)
        base_data = gzip_decompress(base_data_gz)
    except PackagingError as exc:
        raise DeltaError(f"undecodable delta payload: {exc}") from exc
    sig_gz, offset = _read_sized(inner, b"S:", 0)
    control_gz, offset = _read_sized(inner, b"C:", offset)
    data = apply_chunk_ops(decode_ops(inner[offset:]), chunk_map(base_data))
    blob = sig_gz + control_gz + gzip_compress(data)
    if len(blob) != new_size or sha256_hex(blob) != new_sha:
        raise DeltaError(
            "package delta reconstruction does not match the declared "
            f"target (got {len(blob)} bytes / {sha256_hex(blob)[:12]}…)"
        )
    return blob


def _read_sized(blob: bytes, tag: bytes, offset: int) -> tuple[bytes, int]:
    """Read one ``<tag><len>\\n<bytes>`` segment from the inner payload."""
    if not blob.startswith(tag, offset):
        raise DeltaError(f"expected {tag!r} segment in delta payload")
    newline = blob.find(b"\n", offset)
    if newline < 0:
        raise DeltaError("truncated delta segment header")
    try:
        length = int(blob[offset + len(tag):newline])
    except ValueError as exc:
        raise DeltaError("malformed delta segment length") from exc
    start = newline + 1
    if length < 0 or start + length > len(blob):
        raise DeltaError("delta segment length exceeds payload")
    return blob[start:start + length], start + length
