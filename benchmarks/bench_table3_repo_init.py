"""Table 3 — time to initialize a TSR repository.

Paper:  pessimistic (download 17 min + sanitize 13 min) ≈ 30 min total;
        optimistic (packages pre-fetched) ≈ 13 min.

We measure both scenarios in simulated time over the scaled workload: the
pessimistic numbers come from the session scenario's first refresh (cold
cache), the optimistic ones from a second tenant whose original-package
cache is pre-populated — only sanitization remains.
"""

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration


def _optimistic_refresh(scenario):
    deployed = scenario.tsr.deploy_policy(scenario.policy.to_yaml())
    repo_id = deployed["repo_id"]
    # Pre-fetch: copy every original blob into the new tenant's cache.
    for name in scenario.origin.package_names():
        scenario.tsr.cache.put_original(repo_id, name,
                                        scenario.origin.package_blob(name))
    return scenario.tsr.refresh(repo_id)


def test_table3_repository_initialization(content_scenario, benchmark):
    pessimistic = content_scenario.refresh_report
    optimistic = benchmark.pedantic(
        _optimistic_refresh, args=(content_scenario,), rounds=1, iterations=1
    )

    table = PaperTable(
        experiment="Table 3",
        title="Time required to initialize a repository (simulated)",
        columns=["operation", "paper pessimistic", "paper optimistic",
                 "measured pessimistic", "measured optimistic"],
    )
    table.add_row(
        "Download packages", "17 min", "0 min",
        human_duration(pessimistic.download_elapsed),
        human_duration(optimistic.download_elapsed),
    )
    table.add_row(
        "Sanitize packages", "13 min", "13 min",
        human_duration(pessimistic.sanitize_elapsed),
        human_duration(optimistic.sanitize_elapsed),
    )
    table.add_row(
        "Total", "30 min", "13 min",
        human_duration(pessimistic.total_elapsed),
        human_duration(optimistic.total_elapsed),
    )
    table.note(
        f"workload scaled to {len(content_scenario.origin.package_names())} "
        "packages; absolute times scale with the population"
    )
    record_table(table)

    # Shape: the optimistic path skips (nearly) all download time, and
    # downloads dominate the pessimistic difference — as in the paper.
    assert optimistic.download_elapsed < 0.05 * pessimistic.download_elapsed
    assert optimistic.total_elapsed < pessimistic.total_elapsed
    assert pessimistic.download_elapsed > pessimistic.sanitize_elapsed * 0.2
    assert optimistic.sanitized == pessimistic.sanitized
