"""Multi-round trace replay — serial vs plan-wide interleaved (EXPERIMENTS §7).

The paper's missing long-horizon experiment: a 20-round publish → mirror
sync → TSR refresh → fleet pull trace over a 4-tenant deployment with a
32-client fleet, replayed twice on twin scenarios:

* **serial** — today's composition: every refresh round and every fleet
  wave runs to completion before the next event may start;
* **interleaved** — one plan-wide timeline: all transfers share one
  :class:`ParallelTransferSchedule` (the TSR machine's NIC), refresh
  rounds extend one resumable plan, and pull waves are pinned at their
  trace instants.

Both modes produce identical refresh verdicts and byte-identical signed
indexes (pinned by ``tests/test_trace_replay.py``); this bench measures
what composition buys: simulated wall-clock (the headline: interleaved
>= 1.3x), per-client staleness, and update-availability latency.  A
second ablation replays a cache-pressured trace under plain LRU vs
scan-resistant LRU-2 and compares the serving hit rate.  CI runs this
emitting ``BENCH_trace_replay.json``.
"""

import os
import time

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.mirrors.builder import MirrorSpec
from repro.simnet.latency import Continent
from repro.util.stats import human_bytes, human_duration
from repro.workload.generator import generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

ROUNDS = int(os.environ.get("REPRO_TRACE_ROUNDS", "20"))
TENANTS = int(os.environ.get("REPRO_TRACE_TENANTS", "4"))
CLIENTS = int(os.environ.get("REPRO_TRACE_CLIENTS", "32"))
INTERVAL = 0.4
OVERLAP = 0.6
PACKAGES = 16
FILES_PER_PACKAGE = 24

#: Cross-continent mirror set (the paper's Fig. 13 shape): quorum reads
#: carry real RTT, which the serial composition pays once per round and
#: the interleaved plan overlaps with in-flight pulls.
MIRROR_SPECS = (
    MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
    MirrorSpec("mirror-na-1.example", Continent.NORTH_AMERICA),
    MirrorSpec("mirror-as-1.example", Continent.ASIA),
)
FROZEN = ("mirror-eu-1.example",)

#: Eviction ablation: a budget that pressures the cache without
#: thrashing it (calibrated so LRU-2's protected queue separates the
#: served core from the refresh write scan).  The eviction trace is
#: *drained* with a wide margin (every round completes well before its
#: pull wave even on a slow host), so which publication each wave sees —
#: and therefore the serve sequence and hit/fallback split — is
#: deterministic despite sanitize durations being really measured.
EVICTION_BUDGET = 90_000
EVICTION_ROUNDS = 12
EVICTION_CLIENTS = 8


def _population(count=PACKAGES, files=FILES_PER_PACKAGE, reps=4000):
    """Multi-file packages: per-file signing makes enclave time real."""
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * reps)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}",
                                  bytes([i, j]) * 400)
                      for j in range(files - 1)]
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=pkg_files,
        ))
    return packages


def _scenario(**cache_kwargs):
    scenario = build_multi_tenant_scenario(
        tenants=TENANTS, overlap=OVERLAP, packages=_population(),
        mirror_specs=MIRROR_SPECS, **cache_kwargs)
    multi_tenant_refresh(scenario)  # bootstrap publication at t=0
    return scenario


def _trace(rounds=ROUNDS, interval=INTERVAL):
    return generate_trace(
        rounds=rounds, interval=interval, publish_fraction=0.25, seed=5,
        mirror_names=[spec.name for spec in MIRROR_SPECS],
        frozen_mirrors=FROZEN,
    )


def _assert_consistent(report):
    """The acceptance bar: monotonically consistent per-client metrics."""
    publishes = report.publishes
    assert all(b[0] >= a[0] and b[1] > a[1]
               for a, b in zip(publishes, publishes[1:]))
    for timeline in report.timelines.values():
        times = [t for t, _ in timeline.transitions]
        serials = [s for _, s in timeline.transitions]
        assert times == sorted(times)
        assert serials == sorted(serials)
        assert 0.0 <= timeline.staleness <= report.horizon
        assert all(latency is None or latency >= 0.0
                   for latency in timeline.availability.values())


def test_trace_replay_ablation(benchmark, maybe_profile):
    trace = _trace()
    host_walls = {}

    def sweep():
        results = {}
        for mode in ("serial", "interleaved"):
            scenario = _scenario()
            # This ablation isolates refresh *scheduling* (serial vs
            # plan-wide interleaved) on identical enclave work; the
            # serving-debt policy would add re-sanitize jobs correlated
            # with each mode's pin staleness, so it stays off here
            # (bench_replica_fanout measures that coupling).
            scenario.tsr.resanitize_serves = False
            begin = time.perf_counter()
            results[mode] = replay_trace(scenario, trace, clients=CLIENTS,
                                         mode=mode)
            host_walls[mode] = time.perf_counter() - begin
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(maybe_profile("trace replay ablation (serial + interleaved)", sweep),
                                 rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)
    for mode, wall in host_walls.items():
        benchmark.extra_info[f"host_time_{mode}_s"] = round(wall, 3)
    serial, interleaved = results["serial"], results["interleaved"]
    speedup = serial.wall_elapsed / interleaved.wall_elapsed

    table = PaperTable(
        experiment="Trace replay",
        title=f"{ROUNDS}-round / {TENANTS}-tenant / {CLIENTS}-client trace: "
              "serial composition vs plan-wide interleaving",
        columns=["mode", "wall", "staleness mean", "staleness max",
                 "avail mean", "avail max", "installs", "prescans",
                 "wire/client/round"],
    )
    for mode, report in results.items():
        table.add_row(
            mode,
            human_duration(report.wall_elapsed),
            human_duration(report.staleness_mean),
            human_duration(report.staleness_max),
            human_duration(report.availability_mean),
            human_duration(report.availability_max),
            report.installs,
            report.prescans,
            human_bytes(report.bytes_per_client_per_round),
        )
    table.note(f"interleaved speedup: {speedup:.2f}x simulated wall-clock "
               "(same published bytes, same refresh verdicts; one frozen "
               "mirror forces quorum widening + optimistic pre-scan every "
               "round)")
    record_table(table)

    for report in results.values():
        assert report.rounds == ROUNDS
        assert report.installs > 0
        _assert_consistent(report)
    assert serial.installs == interleaved.installs
    # Wire accounting engaged in both modes (modes may pull *different*
    # bytes: serial's delayed waves can see newer publications).
    assert serial.client_wire_bytes > 0
    assert interleaved.client_wire_bytes > 0
    # The headline: plan-wide interleaving >= 1.3x over serial composition.
    assert speedup >= 1.3, f"interleaved speedup only {speedup:.2f}x"
    # Interleaving also shortens the update-availability window.
    assert interleaved.availability_mean <= serial.availability_mean


def test_eviction_policy_ablation(benchmark, maybe_profile):
    trace = generate_trace(rounds=EVICTION_ROUNDS, interval=3.0,
                           pull_lag=2.5, publish_fraction=0.25, seed=5,
                           installs_per_client=2)

    def sweep():
        results = {}
        for policy in ("lru", "lru2"):
            scenario = build_multi_tenant_scenario(
                tenants=3, overlap=OVERLAP, packages=_population(),
                cache_budget_bytes=EVICTION_BUDGET, cache_shards=2,
                cache_policy=policy)
            multi_tenant_refresh(scenario)
            report = replay_trace(scenario, trace,
                                  clients=EVICTION_CLIENTS,
                                  mode="interleaved")
            results[policy] = (scenario, report)
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(maybe_profile("eviction policy ablation (lru + lru2)", sweep),
                                 rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)

    table = PaperTable(
        experiment="Trace replay eviction",
        title=f"{EVICTION_ROUNDS}-round replay under a "
              f"{EVICTION_BUDGET}-byte shard budget: LRU vs LRU-2",
        columns=["policy", "serve hits", "serve fallbacks", "hit rate",
                 "evictions", "promotions", "evicted re-downloads"],
    )
    rates = {}
    for policy, (scenario, report) in results.items():
        tsr = scenario.tsr
        hits, fallbacks = tsr.serve_cache_hits, tsr.serve_fallbacks
        rates[policy] = hits / max(1, hits + fallbacks)
        stats = tsr.cache.shard_stats()
        table.add_row(
            policy, hits, fallbacks, f"{rates[policy]:.2f}",
            sum(s.evictions for s in stats),
            sum(s.promotions for s in stats),
            report.evicted_redownloads,
        )
    table.note("identical trace, identical bytes served; LRU-2 promotes "
               "the repeatedly served core to the protected queue, so the "
               "refresh rounds' one-touch write scan evicts probation "
               "instead of the blobs clients are about to pull")
    record_table(table)

    lru_scenario, _ = results["lru"]
    assert sum(s.evictions for s in lru_scenario.tsr.cache.shard_stats()) \
        > 0, "budget too generous: no eviction pressure"
    # Scan resistance: the protected core keeps serving from cache.
    assert rates["lru2"] > rates["lru"]


# -- streaming memory scaling ---------------------------------------------------

#: The O(active)-memory scaling row: a rotating fleet where every client
#: pulls exactly once, at the largest scale the materialized path still
#: runs comfortably on this box.  Small packages and 2 tenants on
#: purpose — the row isolates what *retention* costs (every pulled
#: node's fs/IMA/TPM graph in materialized mode vs the active wave in
#: streaming mode), not content volume.
STREAM_CLIENTS = int(os.environ.get("REPRO_STREAM_CLIENTS", "1600"))
STREAM_WAVE = int(os.environ.get("REPRO_STREAM_WAVE", "40"))
STREAM_ROUNDS = int(os.environ.get("REPRO_STREAM_ROUNDS", "40"))
#: The acceptance bar: streaming holds >= 10x less peak memory than the
#: materialized path on the same trace, with identical discrete results.
STREAM_MEMORY_RATIO = 10.0
#: Memory-regression cap for the streaming path itself (absolute, only
#: asserted at the default scale knobs): measured ~5 MB peak, capped at
#: 4x that so only a real O(active) regression trips it.
STREAM_PEAK_CAP_BYTES = 20_000_000

_STREAM_DEFAULT_SCALE = (STREAM_CLIENTS, STREAM_WAVE, STREAM_ROUNDS) \
    == (1600, 40, 40)


def _stream_scenario():
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=OVERLAP,
        packages=_population(count=8, files=8, reps=200),
        mirror_specs=MIRROR_SPECS)
    multi_tenant_refresh(scenario)
    return scenario


def _stream_trace():
    # Wide margins (interval >> refresh duration, lag < interval) drain
    # every wave and refresh round before the next event, so served
    # serials — and therefore every byte count — are deterministic even
    # though sanitize durations are really measured (same calibration as
    # the eviction ablation above).
    return generate_trace(
        rounds=STREAM_ROUNDS, interval=3.0, pull_lag=2.5,
        publish_fraction=0.25, seed=5,
        mirror_names=[spec.name for spec in MIRROR_SPECS],
        frozen_mirrors=FROZEN,
        fleet_size=STREAM_CLIENTS, clients_per_wave=STREAM_WAVE,
    )


def test_streaming_memory_scaling(benchmark, maybe_profile):
    """Streaming vs materialized replay of one rotating-fleet trace:
    identical discrete results, >= 10x less peak memory."""
    import tracemalloc

    # Warm pass: fills the process-wide content-keyed memos (keypairs,
    # signature verifies, deterministic gzip).  Both modes touch
    # byte-identical content, so one streaming pass warms them for both
    # measured runs — without it, whichever mode runs first would carry
    # the memo allocations in its peak.
    replay_trace(_stream_scenario(), _stream_trace(), clients=STREAM_CLIENTS,
                 mode="streaming", shared_tpm_seed=2020)

    peaks = {}
    hosts = {}

    def sweep():
        results = {}
        for mode in ("streaming", "interleaved"):
            scenario = _stream_scenario()
            trace = _stream_trace()
            tracemalloc.start()
            begin = time.perf_counter()
            results[mode] = replay_trace(
                scenario, trace, clients=STREAM_CLIENTS, mode=mode,
                shared_tpm_seed=2020)
            hosts[mode] = time.perf_counter() - begin
            peaks[mode] = tracemalloc.get_traced_memory()[1]
            tracemalloc.stop()
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(
        maybe_profile("streaming memory scaling (streaming + interleaved)",
                      sweep),
        rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)
    streaming = results["streaming"]
    interleaved = results["interleaved"]
    ratio = peaks["interleaved"] / peaks["streaming"]
    for mode in results:
        benchmark.extra_info[f"tracemalloc_peak_{mode}_bytes"] = peaks[mode]
        benchmark.extra_info[f"host_time_{mode}_s"] = round(hosts[mode], 3)
    benchmark.extra_info["memory_ratio"] = round(ratio, 2)

    table = PaperTable(
        experiment="Streaming replay memory",
        title=f"{STREAM_CLIENTS}-client rotating fleet "
              f"({STREAM_WAVE}/wave, {STREAM_ROUNDS} rounds): "
              "materialized vs streaming replay",
        columns=["mode", "peak alloc", "host time", "installs",
                 "staleness mean", "avail mean", "wire bytes"],
    )
    for mode, report in results.items():
        table.add_row(
            mode,
            human_bytes(peaks[mode]),
            human_duration(hosts[mode]),
            report.installs,
            human_duration(report.staleness_mean),
            human_duration(report.availability_mean),
            human_bytes(report.client_wire_bytes),
        )
    table.note(f"streaming holds {ratio:.1f}x less peak memory (tracemalloc, "
               f"replay only): the materialized path retains every pulled "
               f"node's graph and timeline; streaming retires clients after "
               f"their final wave and holds only the "
               f"{streaming.streaming.peak_live_channels}-channel active "
               "window")
    record_table(table)

    # Identical discrete invariants — the modes replay the *same* trace.
    assert streaming.installs == interleaved.installs
    assert streaming.client_wire_bytes == interleaved.client_wire_bytes
    assert streaming.downloaded_bytes == interleaved.downloaded_bytes
    assert streaming.publishes == interleaved.publishes
    # Distributional metrics agree to float re-association.
    assert abs(streaming.staleness_mean - interleaved.staleness_mean) \
        <= 1e-6 * max(1.0, interleaved.staleness_mean)
    # O(active) memory: the live window never exceeds wave + mirrors.
    assert streaming.streaming.peak_live_channels \
        <= STREAM_WAVE + len(MIRROR_SPECS) + 2
    assert streaming.streaming.clients_booted == STREAM_CLIENTS
    # The acceptance bar, measured not eyeballed.
    assert ratio >= STREAM_MEMORY_RATIO, (
        f"streaming/materialized peak-memory ratio only {ratio:.2f}x "
        f"({peaks['interleaved']} / {peaks['streaming']} bytes)"
    )
    if _STREAM_DEFAULT_SCALE:
        # Memory regression guard on the streaming path itself.
        assert peaks["streaming"] < STREAM_PEAK_CAP_BYTES, (
            f"streaming peak {peaks['streaming']} bytes exceeds cap "
            f"{STREAM_PEAK_CAP_BYTES}"
        )
