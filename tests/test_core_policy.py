"""Tests for security policy parsing and validation."""

import pytest

from repro.core.policy import DEFAULT_INIT_CONFIG, MirrorPolicyEntry, SecurityPolicy
from repro.simnet.latency import Continent
from repro.util.errors import PolicyError


def _policy_yaml(rsa_key, mirrors=3) -> str:
    hosts = "\n".join(
        f"  - hostname: mirror-{i}.example\n    continent: europe"
        for i in range(mirrors)
    )
    pem = "\n".join("    " + line
                    for line in rsa_key.public_key.to_pem().splitlines())
    return (
        f"mirrors:\n{hosts}\n"
        f"signers_keys:\n  - |-\n{pem}\n"
    )


class TestParsing:
    def test_minimal_policy(self, rsa_key):
        policy = SecurityPolicy.from_yaml(_policy_yaml(rsa_key))
        assert len(policy.mirrors) == 3
        assert policy.signers_keys == [rsa_key.public_key]
        assert policy.init_config_files == DEFAULT_INIT_CONFIG

    def test_listing1_shape_with_init_config(self, rsa_key):
        pem = "\n".join("    " + line
                        for line in rsa_key.public_key.to_pem().splitlines())
        text = (
            "mirrors:\n"
            "  - hostname: https://alpinelinux/v3.10/\n"
            "    continent: europe\n"
            "  - hostname: https://yandex.ru/alpine/v3.10/\n"
            "    continent: europe\n"
            "  - hostname: https://ustc.edu.cn/alpine/v3.10/\n"
            "    continent: asia\n"
            f"signers_keys:\n  - |-\n{pem}\n"
            "init_config_files:\n"
            "  - path: /etc/passwd\n"
            "    content: |-\n"
            "      root:x:0:0:root:/root:/bin/ash\n"
        )
        policy = SecurityPolicy.from_yaml(text)
        assert policy.mirrors[2].continent is Continent.ASIA
        assert policy.init_config_files["/etc/passwd"] == (
            "root:x:0:0:root:/root:/bin/ash\n"
        )
        # Unspecified files fall back to defaults.
        assert "/etc/shadow" in policy.init_config_files

    def test_round_trip(self, rsa_key):
        policy = SecurityPolicy.from_yaml(_policy_yaml(rsa_key))
        assert SecurityPolicy.from_yaml(policy.to_yaml()).mirrors == policy.mirrors

    def test_whitelist_blacklist(self, rsa_key):
        text = _policy_yaml(rsa_key) + (
            "package_whitelist:\n  - openssl\n  - musl\n"
            "package_blacklist:\n  - telnetd\n"
        )
        policy = SecurityPolicy.from_yaml(text)
        assert policy.allows_package("openssl")
        assert not policy.allows_package("nginx")
        assert not policy.allows_package("telnetd")

    def test_blacklist_only(self, rsa_key):
        text = _policy_yaml(rsa_key) + "package_blacklist:\n  - telnetd\n"
        policy = SecurityPolicy.from_yaml(text)
        assert policy.allows_package("anything")
        assert not policy.allows_package("telnetd")


class TestValidation:
    def test_no_mirrors_rejected(self, rsa_key):
        with pytest.raises(PolicyError):
            SecurityPolicy(mirrors=[], signers_keys=[rsa_key.public_key])

    def test_no_signers_rejected(self):
        with pytest.raises(PolicyError):
            SecurityPolicy(
                mirrors=[MirrorPolicyEntry(hostname="m")], signers_keys=[]
            )

    def test_duplicate_mirrors_rejected(self, rsa_key):
        with pytest.raises(PolicyError):
            SecurityPolicy(
                mirrors=[MirrorPolicyEntry(hostname="m"),
                         MirrorPolicyEntry(hostname="m")],
                signers_keys=[rsa_key.public_key],
            )

    def test_missing_config_file_rejected(self, rsa_key):
        with pytest.raises(PolicyError):
            SecurityPolicy(
                mirrors=[MirrorPolicyEntry(hostname="m")],
                signers_keys=[rsa_key.public_key],
                init_config_files={"/etc/passwd": "root:x:0:0::/:/bin/ash\n"},
            )

    def test_bad_yaml_rejected(self):
        with pytest.raises(PolicyError):
            SecurityPolicy.from_yaml("mirrors: [")
        with pytest.raises(PolicyError):
            SecurityPolicy.from_yaml("just_a_key: 1\n")

    def test_bad_continent_rejected(self, rsa_key):
        text = _policy_yaml(rsa_key).replace("europe", "atlantis", 1)
        with pytest.raises(PolicyError):
            SecurityPolicy.from_yaml(text)


class TestFaultTolerance:
    @pytest.mark.parametrize("mirrors,f", [(1, 0), (2, 0), (3, 1), (5, 2), (9, 4), (10, 4)])
    def test_f_from_mirror_count(self, rsa_key, mirrors, f):
        policy = SecurityPolicy.from_yaml(_policy_yaml(rsa_key, mirrors=mirrors))
        assert policy.fault_tolerance == f
        assert policy.quorum_size() == f + 1
