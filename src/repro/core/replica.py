"""Edge-replica serving tier: CDN-style pull fanout off the primary TSR.

A :class:`ReplicaTSR` is a read-only network endpoint holding a *verified
copy* of the primary's publication log.  Replicas answer the delta surface
(``get_index_delta`` / ``get_package_delta``) plus the time-stamped full
endpoints with byte-identical envelopes — enclave signatures pass through
unchanged, so a client cannot tell (and need not care) which tier served
it: every answer still verifies against the tenant's enclave key.

Replicas never sanitize and hold no enclave.  They sync from the primary
over the same signed index-diff path clients use
(:mod:`repro.core.delta`), so a replica adopts a new publication only
after the diff splices onto its previous verified index (or a full
envelope re-verifies from scratch) — the ``RollbackError`` oracle applies
to the replica tier exactly as it does to clients.  Publication blob maps
are then shared *by reference* with the primary, the simulation shorthand
for the chunk-delta body transfer the envelope authenticates.

Freshness is enforced pull-side: before a wave routes clients at a
replica, :func:`check_replica_freshness` re-validates the replica's served
index with the same :func:`~repro.core.quorum.validate_signed_index` gate
quorum mirror reads use, and refuses replicas that lag past their
staleness bound or replay an older serial than a fresher view of the
primary — refused replicas lose the wave's traffic to the primary.
"""

from __future__ import annotations

from repro.core.quorum import validate_signed_index
from repro.core.service import Publication, TrustedSoftwareRepository
from repro.simnet.network import Host, Request
from repro.util.errors import NetworkError, RollbackError


class ReplicaTSR:
    """A read-only edge replica of one primary TSR deployment."""

    def __init__(self, hostname: str, primary: TrustedSoftwareRepository,
                 continent=None, bandwidth: float | None = None,
                 sync_cadence: float = 1.0,
                 staleness_bound: float | None = None):
        from repro.simnet.latency import Continent

        self.hostname = hostname
        self._primary = primary
        self._network = primary._network
        #: Heartbeat interval of the replica's background sync loop; the
        #: replay drives syncs on publish *and* on this cadence, so a
        #: healthy replica's ``synced_through`` never trails the plan
        #: clock by more than one cadence.
        self.sync_cadence = sync_cadence
        #: Lag past which the freshness check refuses the replica
        #: (defaults to two missed heartbeats).
        self.staleness_bound = (staleness_bound if staleness_bound is not None
                                else 2.0 * sync_cadence)
        #: Plan instant of the last completed sync.
        self.synced_through = 0.0
        #: Adversarial switch: a frozen replica stops syncing entirely
        #: (its adopted log and ``synced_through`` stall) but keeps
        #: serving — the freshness check must catch it.
        self.frozen = False
        #: repo_id -> verified point-in-time copy of the primary's
        #: publication log (publication objects shared by reference).
        self._publications: dict[str, list[Publication]] = {}
        #: repo_id -> newest pruned serial, mirrored at sync time so the
        #: replica's full-pull reasons stay byte-identical to the
        #: primary's ("retention"/"depth" vs "unknown-base").
        self._pruned_through: dict[str, int] = {}
        self._pruned_manifest_shas: set[str] = set()
        # Serving accounting (the replica's share of the fleet traffic).
        self.serve_count = 0
        self.delta_index_serves = 0
        self.delta_index_unchanged = 0
        self.delta_index_fallbacks: dict[str, int] = {}
        self.delta_package_serves = 0
        self.delta_package_fallbacks: dict[str, int] = {}
        self.delta_bytes_saved = 0
        # Sync accounting.
        self.sync_count = 0
        self.sync_bytes = 0
        self.sync_failures = 0
        #: Pull waves that refused this replica for staleness/rollback.
        self.refusals = 0
        self._sync_seq = 0
        host = Host(name=hostname,
                    continent=continent
                    or self._network.host(primary.hostname).continent
                    or Continent.EUROPE,
                    handler=self._handle_request)
        if bandwidth is not None:
            host.bandwidth = bandwidth
        self._network.add_host(host)

    # -- client-facing API (network handler) ----------------------------------

    def _handle_request(self, operation: str,
                        payload: object) -> tuple[object, int]:
        if operation == "get_index":
            if isinstance(payload, dict) and payload.get("as_of") is not None:
                blob = self.index_bytes_at(payload["repo"], payload["as_of"])
            else:
                repo_id = (payload["repo"] if isinstance(payload, dict)
                           else str(payload))
                blob = self._newest_publication(repo_id).index_bytes
            self.serve_count += 1
            return blob, len(blob)
        if operation == "get_package":
            blob = self.serve_package_at(payload["repo"], payload["name"],
                                         payload.get("as_of"))
            self.serve_count += 1
            return blob, len(blob)
        if operation == "get_index_delta":
            blob = self.index_delta_at(payload["repo"], payload["base_serial"],
                                       payload.get("as_of"))
            self.serve_count += 1
            return blob, len(blob)
        if operation == "get_package_delta":
            blob = self.package_delta_at(payload["repo"], payload["name"],
                                         payload["base_sha256"],
                                         payload.get("as_of"))
            self.serve_count += 1
            return blob, len(blob)
        raise NetworkError(
            f"replica {self.hostname}: unknown operation {operation!r}")

    # -- verified sync from the primary ----------------------------------------

    def sync_from_primary(self, at: float, repo_ids=None,
                          schedule=None) -> int:
        """Pull the primary's new publications through the signed diff path.

        Fetches one index-delta envelope per repository (handler executed
        via :meth:`Network.probe` — no clock advance; the wire cost lands
        on ``schedule`` as a fresh ``("sync", <replica>, <seq>)`` channel
        when one is given, contending on the primary's uplink pool), verifies it
        against the replica's previous adopted index, and adopts the
        primary's publication objects up to ``at``.  Returns the number
        of repositories that adopted a newer publication.  A frozen or
        partitioned replica adopts nothing and its ``synced_through``
        stalls — the freshness check then refuses it.
        """
        if self.frozen:
            return 0
        if repo_ids is None:
            repo_ids = sorted(self._primary._publications)
        from repro.util.errors import DeltaError

        adopted = 0
        for repo_id in repo_ids:
            try:
                adopted += 1 if self._sync_repo(repo_id, at, schedule) else 0
            except (NetworkError, RollbackError, DeltaError):
                self.sync_failures += 1
                return adopted  # stay stale; do not advance synced_through
        if at > self.synced_through:
            self.synced_through = at
        return adopted

    def _sync_repo(self, repo_id: str, at: float, schedule) -> bool:
        primary_log = self._primary._publications.get(repo_id)
        if not primary_log:
            return False
        ours = self._publications.get(repo_id)
        base_serial = ours[-1].serial if ours else -1
        request = Request(self._primary.hostname, "get_index_delta",
                          payload={"repo": repo_id,
                                   "base_serial": base_serial,
                                   "as_of": at})
        probe = self._network.probe(self.hostname, request)
        self.sync_count += 1
        self.sync_bytes += probe.size_bytes
        if schedule is not None:
            # Each sync is its own fresh channel: the solver anchors a new
            # channel's setup phase at the schedule's start time, so a
            # setup of ``at + probe.setup`` begins the payload exactly at
            # the sync instant plus the request latency — identically in
            # materialized solves and on a live stream (where ``at`` sits
            # at or past the frontier, keeping the enqueue admissible).
            self._sync_seq += 1
            key = ("sync", self.hostname, self._sync_seq)
            schedule.enqueue(key, key, at + probe.setup, probe.size_bytes,
                             probe.bandwidth)
        self._verify_envelope(repo_id, ours, probe.payload)
        # Envelope verified: adopt the primary's publications up to the
        # sync instant (shared by reference — the envelope authenticates
        # the state the bodies materialize) and mirror its pruning
        # watermark so fallback reasons stay byte-identical.
        adopted = [p for p in primary_log if p.available_at <= at]
        changed = bool(adopted) and (not ours
                                     or adopted[-1] is not ours[-1]
                                     or len(adopted) != len(ours))
        if adopted:
            self._publications[repo_id] = adopted
        pruned = self._primary._pruned_through.get(repo_id)
        if pruned is not None:
            self._pruned_through[repo_id] = pruned
        self._pruned_manifest_shas = self._primary._pruned_manifest_shas
        return changed

    def _verify_envelope(self, repo_id: str, ours, payload: object):
        """Authenticate one sync answer before adopting anything.

        A delta envelope must splice onto our previous verified index
        (:func:`apply_index_delta` raises :class:`RollbackError` when the
        serial does not advance — the rollback oracle); a full envelope
        must carry a valid enclave signature and a serial no older than
        what we already hold.
        """
        from repro.archive.index import parse_index_cached
        from repro.core.delta import apply_index_delta, \
            parse_index_delta_envelope

        if not isinstance(payload, (bytes, bytearray)):
            raise NetworkError("replica sync: non-bytes envelope")
        envelope = parse_index_delta_envelope(bytes(payload))
        keys = [self._primary_key(repo_id)]
        if envelope.kind == "same":
            return
        if envelope.kind == "delta":
            if not ours:
                raise NetworkError("replica sync: delta without a base")
            base = parse_index_cached(ours[-1].index_bytes)
            index = apply_index_delta(base, envelope)
        else:  # full
            index = validate_signed_index(envelope.full_bytes, keys)
            if index is None:
                raise NetworkError(
                    "replica sync: full index failed verification")
            if ours and index.serial < ours[-1].serial:
                raise RollbackError(
                    f"replica sync: serial went backwards "
                    f"({index.serial} < {ours[-1].serial})")
        if not index.verify(keys[0]):
            raise NetworkError("replica sync: spliced index unverifiable")

    def _primary_key(self, repo_id: str):
        from repro.crypto.rsa import RsaPublicKey
        return RsaPublicKey.from_pem(self._primary.public_key_pem(repo_id))

    # -- serving from the adopted log ------------------------------------------
    #
    # These mirror the primary's publication-backed serving exactly (same
    # envelope builders, shared content-addressed memos), so a replica
    # answer is byte-identical to what the primary would have served for
    # the same request — the differential suite pins this.

    def _newest_publication(self, repo_id: str) -> Publication:
        log = self._publications.get(repo_id)
        if not log:
            raise NetworkError(
                f"replica {self.hostname}: repository {repo_id!r} has no "
                f"adopted publication")
        return log[-1]

    def publication_at(self, repo_id: str,
                       as_of: float) -> Publication | None:
        log = self._publications.get(repo_id, [])
        best = None
        for publication in log:
            if publication.available_at <= as_of:
                best = publication
            else:
                break
        if best is None and log and repo_id in self._pruned_through:
            return log[0]
        return best

    def index_bytes_at(self, repo_id: str, as_of: float) -> bytes:
        publication = self.publication_at(repo_id, as_of)
        if publication is None:
            raise NetworkError(
                f"repository {repo_id!r} has no published index at "
                f"t={as_of:.3f}"
            )
        return publication.index_bytes

    def serve_package_at(self, repo_id: str, name: str,
                         as_of: float | None) -> bytes:
        """Serve a package from the adopted publication's captured copy.

        Replicas hold no sanitize cache and no enclave: a blob the
        publication did not capture fails closed, and the client's full
        pull falls back to the primary (whose serve may then queue a
        re-sanitize).
        """
        if as_of is not None:
            publication = self.publication_at(repo_id, as_of)
            if publication is None:
                raise NetworkError(
                    f"repository {repo_id!r} has no publication at "
                    f"t={as_of:.3f}")
        else:
            publication = self._newest_publication(repo_id)
        expected = publication.entries.get(name)
        if expected is None:
            raise NetworkError(
                f"package {name!r} not in the t="
                f"{publication.available_at:.3f} publication"
            )
        return self._publication_blob(name, publication, expected)

    def _publication_blob(self, name: str, publication: Publication,
                          expected: tuple[int, str]) -> bytes:
        from repro.crypto.hashes import sha256_hex

        blob = publication.blobs.get(name)
        if blob is None:
            raise NetworkError(
                f"package {name!r} not available from the t="
                f"{publication.available_at:.3f} publication"
            )
        if len(blob) != expected[0] or sha256_hex(blob) != expected[1]:
            raise NetworkError(
                f"published package {name!r} does not match its signed index"
            )
        return blob

    def _delta_target(self, repo_id: str,
                      as_of: float | None) -> Publication:
        if as_of is not None:
            publication = self.publication_at(repo_id, as_of)
            if publication is None:
                raise NetworkError(
                    f"repository {repo_id!r} has no publication at "
                    f"t={as_of:.3f}"
                )
            return publication
        return self._newest_publication(repo_id)

    def _publication_index(self, repo_id: str, position: int):
        """Parsed publication index, sharing the primary's serial-keyed
        cache (the adopted publications *are* the primary's objects)."""
        from repro.archive.index import parse_index_cached

        publication = self._publications[repo_id][position]
        key = (repo_id, publication.serial)
        cache = self._primary._publication_indexes
        cached = cache.get(key)
        if cached is None:
            cached = parse_index_cached(publication.index_bytes)
            cache[key] = cached
        return cached

    def _count_fallback(self, counters: dict[str, int], reason: str):
        counters[reason] = counters.get(reason, 0) + 1

    def index_delta_at(self, repo_id: str, base_serial: int,
                       as_of: float | None = None) -> bytes:
        from repro.core.delta import (
            build_index_delta,
            index_body_sha256,
            index_full_envelope,
            index_unchanged_envelope,
        )

        target = self._delta_target(repo_id, as_of)
        depth = self._primary.delta_log_depth
        if depth <= 0:
            self._count_fallback(self.delta_index_fallbacks, "disabled")
            return index_full_envelope("disabled", target.index_bytes)
        if target.serial == base_serial:
            self.delta_index_unchanged += 1
            envelope = index_unchanged_envelope(
                base_serial, index_body_sha256(target.index_bytes))
            self.delta_bytes_saved += max(
                0, len(target.index_bytes) - len(envelope))
            return envelope
        log = self._publications[repo_id]
        target_pos = next(i for i in range(len(log) - 1, -1, -1)
                          if log[i] is target)
        base_pos = next((i for i in range(target_pos, -1, -1)
                         if log[i].serial == base_serial), None)
        if base_pos is None:
            pruned = self._pruned_through.get(repo_id)
            if pruned is not None and base_serial <= pruned:
                reason = ("depth" if target_pos + 1 > depth
                          else "retention")
            else:
                reason = "unknown-base"
            self._count_fallback(self.delta_index_fallbacks, reason)
            return index_full_envelope(reason, target.index_bytes)
        if target_pos - base_pos > depth:
            self._count_fallback(self.delta_index_fallbacks, "depth")
            return index_full_envelope("depth", target.index_bytes)
        memo = self._primary._index_delta_memo
        memo_key = (repo_id, base_serial, target.serial)
        envelope = memo.get(memo_key)
        if envelope is None:
            envelope = build_index_delta(
                self._publication_index(repo_id, base_pos),
                self._publication_index(repo_id, target_pos),
            )
            memo[memo_key] = envelope
        if len(envelope) >= len(target.index_bytes):
            self._count_fallback(self.delta_index_fallbacks, "not-smaller")
            return index_full_envelope("not-smaller", target.index_bytes)
        self.delta_index_serves += 1
        self.delta_bytes_saved += len(target.index_bytes) - len(envelope)
        return envelope

    def package_delta_at(self, repo_id: str, name: str, base_sha256: str,
                         as_of: float | None = None) -> bytes:
        from repro.core.delta import build_package_delta, \
            package_full_envelope
        from repro.util.errors import DeltaError

        target = self._delta_target(repo_id, as_of)
        expected = target.entries.get(name)
        if expected is None:
            raise NetworkError(
                f"package {name!r} not in the t="
                f"{target.available_at:.3f} publication"
            )
        blob = self._publication_blob(name, target, expected)
        new_sha = expected[1]
        if self._primary.delta_log_depth <= 0:
            self._count_fallback(self.delta_package_fallbacks, "disabled")
            return package_full_envelope("disabled", blob)
        if base_sha256 == new_sha:
            self._count_fallback(self.delta_package_fallbacks, "same")
            return package_full_envelope("same", blob)
        # The manifest store is content-addressed and synced alongside
        # publications; the simulation shares the primary's copy.
        manifest = self._primary.cache.get_chunk_manifest(base_sha256)
        if manifest is None:
            self._count_fallback(self.delta_package_fallbacks, "unknown-base")
            return package_full_envelope("unknown-base", blob)
        memo = self._primary._package_delta_memo
        memo_key = (base_sha256, new_sha)
        if memo_key in memo:
            envelope = memo[memo_key]
        else:
            try:
                envelope = build_package_delta(manifest, blob)
            except DeltaError:
                envelope = None
            memo[memo_key] = envelope
        if envelope is None:
            self._count_fallback(self.delta_package_fallbacks, "not-smaller")
            return package_full_envelope("not-smaller", blob)
        self.delta_package_serves += 1
        self.delta_bytes_saved += len(blob) - len(envelope)
        return envelope


def check_replica_freshness(replica: ReplicaTSR, repo_id: str, as_of: float,
                            index_keys) -> int:
    """Quorum-style freshness probe of one replica, pull-wave side.

    Raises :class:`RollbackError` — the same oracle the client delta path
    uses — when the replica (a) lags past its staleness bound, (b) serves
    an index that fails :func:`validate_signed_index`, or (c) serves an
    older serial than a fresher view of the primary reports for the same
    instant (an old-serial replay).  Returns the verified serial.
    """
    lag = as_of - replica.synced_through
    if lag > replica.staleness_bound + 1e-9:
        raise RollbackError(
            f"replica {replica.hostname} lags {lag:.3f}s behind t="
            f"{as_of:.3f} (bound {replica.staleness_bound:.3f}s)")
    try:
        payload = replica.index_bytes_at(repo_id, as_of)
    except NetworkError as exc:
        raise RollbackError(
            f"replica {replica.hostname} serves no index for "
            f"{repo_id!r} at t={as_of:.3f}") from exc
    index = validate_signed_index(payload, list(index_keys))
    if index is None:
        raise RollbackError(
            f"replica {replica.hostname} served an unverifiable index "
            f"for {repo_id!r}")
    expected = replica._primary.publication_at(repo_id, as_of)
    if expected is not None and index.serial < expected.serial:
        raise RollbackError(
            f"replica {replica.hostname} replays serial {index.serial} "
            f"for {repo_id!r}; primary publishes {expected.serial} at "
            f"t={as_of:.3f}")
    return index.serial
