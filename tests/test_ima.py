"""Tests for the IMA measurement and appraisal engine."""

import pytest

from repro.crypto.hashes import sha256_bytes
from repro.ima.subsystem import (
    AppraisalMode,
    ImaMeasurement,
    ImaSubsystem,
    ima_signature_for,
    replay_measurement_list,
    verify_ima_signature,
)
from repro.osim.fs import SimFileSystem
from repro.tpm.device import IMA_PCR_INDEX, Tpm
from repro.util.errors import FileSystemError


@pytest.fixture()
def rig():
    fs = SimFileSystem()
    tpm = Tpm("tpm-ima", key_bits=512)
    ima = ImaSubsystem(fs, tpm)
    return fs, tpm, ima


class TestMeasurement:
    def test_open_measures_file(self, rig):
        fs, tpm, ima = rig
        fs.write_file("/bin/app", b"binary")
        fs.read_file("/bin/app")
        assert len(ima.measurements) == 1
        entry = ima.measurements[0]
        assert entry.path == "/bin/app"
        assert entry.filedata_hash == sha256_bytes(b"binary")

    def test_same_content_measured_once(self, rig):
        fs, _, ima = rig
        fs.write_file("/f", b"stable")
        fs.read_file("/f")
        fs.read_file("/f")
        assert len(ima.measurements) == 1

    def test_changed_content_remeasured(self, rig):
        fs, _, ima = rig
        fs.write_file("/f", b"v1")
        fs.read_file("/f")
        fs.write_file("/f", b"v2")
        fs.read_file("/f")
        assert len(ima.measurements) == 2

    def test_pcr10_extended(self, rig):
        fs, tpm, ima = rig
        assert tpm.pcr_bank.read(IMA_PCR_INDEX) == bytes(32)
        fs.write_file("/f", b"x")
        fs.read_file("/f")
        assert tpm.pcr_bank.read(IMA_PCR_INDEX) != bytes(32)

    def test_signature_included_in_entry(self, rig, rsa_key):
        fs, _, ima = rig
        content = b"signed content"
        fs.write_file("/bin/tool", content)
        fs.set_xattr("/bin/tool", "security.ima", ima_signature_for(content, rsa_key))
        fs.read_file("/bin/tool")
        assert ima.measurements[0].signature is not None

    def test_replay_matches_pcr(self, rig):
        fs, tpm, ima = rig
        ima.record_boot_aggregate()
        for i in range(5):
            fs.write_file(f"/f{i}", bytes([i]))
            fs.read_file(f"/f{i}")
        assert replay_measurement_list(ima.measurements) == tpm.pcr_bank.read(
            IMA_PCR_INDEX
        )

    def test_tampered_log_breaks_replay(self, rig):
        fs, tpm, ima = rig
        fs.write_file("/f", b"real")
        fs.read_file("/f")
        forged = [ImaMeasurement(IMA_PCR_INDEX, "/f", sha256_bytes(b"fake"), None)]
        assert replay_measurement_list(forged) != tpm.pcr_bank.read(IMA_PCR_INDEX)

    def test_boot_aggregate_covers_boot_pcrs(self):
        fs = SimFileSystem()
        tpm = Tpm("tpm-ba", key_bits=512)
        tpm.measure(0, b"firmware")
        ima = ImaSubsystem(fs, tpm)
        ima.record_boot_aggregate()
        expected = sha256_bytes(b"".join(tpm.pcr_bank.read(i) for i in range(8)))
        assert ima.measurements[0].filedata_hash == expected
        assert ima.measurements[0].path == "boot_aggregate"

    def test_entry_serialization_roundtrip(self, rig, rsa_key):
        entry = ImaMeasurement(10, "/f", sha256_bytes(b"c"), b"\x03sig")
        assert ImaMeasurement.from_dict(entry.to_dict()) == entry
        no_sig = ImaMeasurement(10, "/f", sha256_bytes(b"c"), None)
        assert ImaMeasurement.from_dict(no_sig.to_dict()) == no_sig


class TestSignatures:
    def test_signature_verifies(self, rsa_key):
        content = b"library bytes"
        sig = ima_signature_for(content, rsa_key)
        assert verify_ima_signature(sha256_bytes(content), sig, [rsa_key.public_key])

    def test_wrong_key_rejected(self, rsa_key, rsa_key_alt):
        sig = ima_signature_for(b"c", rsa_key)
        assert not verify_ima_signature(sha256_bytes(b"c"), sig,
                                        [rsa_key_alt.public_key])

    def test_wrong_content_rejected(self, rsa_key):
        sig = ima_signature_for(b"original", rsa_key)
        assert not verify_ima_signature(sha256_bytes(b"other"), sig,
                                        [rsa_key.public_key])

    def test_missing_prefix_rejected(self, rsa_key):
        sig = rsa_key.sign(sha256_bytes(b"c"))  # no EVM type byte
        assert not verify_ima_signature(sha256_bytes(b"c"), sig,
                                        [rsa_key.public_key])


class TestAppraisal:
    def _rig(self, mode, keys):
        fs = SimFileSystem()
        tpm = Tpm("tpm-appraise", key_bits=512)
        ima = ImaSubsystem(fs, tpm, appraisal=mode, keyring=keys)
        return fs, ima

    def test_enforce_denies_unsigned(self, rsa_key):
        fs, ima = self._rig(AppraisalMode.ENFORCE, [rsa_key.public_key])
        fs.write_file("/bin/rogue", b"malware")
        with pytest.raises(FileSystemError):
            fs.read_file("/bin/rogue")
        assert ima.appraisal_failures == ["/bin/rogue"]

    def test_enforce_allows_signed(self, rsa_key):
        fs, ima = self._rig(AppraisalMode.ENFORCE, [rsa_key.public_key])
        content = b"legit"
        fs.write_file("/bin/ok", content)
        fs.set_xattr("/bin/ok", "security.ima", ima_signature_for(content, rsa_key))
        assert fs.read_file("/bin/ok") == content
        assert ima.appraisal_failures == []

    def test_enforce_denies_wrong_signer(self, rsa_key, rsa_key_alt):
        fs, ima = self._rig(AppraisalMode.ENFORCE, [rsa_key.public_key])
        content = b"other-signer"
        fs.write_file("/bin/x", content)
        fs.set_xattr("/bin/x", "security.ima", ima_signature_for(content, rsa_key_alt))
        with pytest.raises(FileSystemError):
            fs.read_file("/bin/x")

    def test_modified_file_fails_appraisal(self, rsa_key):
        """Writes clear security.ima, so the next open is denied — the
        exact mechanism that makes un-sanitized updates break the OS."""
        fs, ima = self._rig(AppraisalMode.ENFORCE, [rsa_key.public_key])
        content = b"v1"
        fs.write_file("/usr/lib/app.conf", content)
        fs.set_xattr("/usr/lib/app.conf", "security.ima",
                     ima_signature_for(content, rsa_key))
        fs.read_file("/usr/lib/app.conf")
        fs.append_file("/usr/lib/app.conf", b" tampered")
        with pytest.raises(FileSystemError):
            fs.read_file("/usr/lib/app.conf")

    def test_scope_excludes_etc_and_pkgdb(self, rsa_key):
        """Local enforcement covers code paths; /etc is measured but only
        remotely verified; mutable state (/lib/apk) is not even measured
        (dont_measure policy rule)."""
        fs, ima = self._rig(AppraisalMode.ENFORCE, [rsa_key.public_key])
        fs.write_file("/etc/passwd", b"root:x:0:0::/:/bin/ash\n")
        fs.write_file("/lib/apk/db/installed", b"")
        assert fs.read_file("/etc/passwd")  # allowed despite no signature
        fs.read_file("/lib/apk/db/installed")
        assert ima.appraisal_failures == []
        measured_paths = {m.path for m in ima.measurements}
        assert "/etc/passwd" in measured_paths
        assert "/lib/apk/db/installed" not in measured_paths

    def test_log_mode_records_but_allows(self, rsa_key):
        fs, ima = self._rig(AppraisalMode.LOG, [rsa_key.public_key])
        fs.write_file("/bin/unsigned", b"x")
        assert fs.read_file("/bin/unsigned") == b"x"
        assert ima.appraisal_failures == ["/bin/unsigned"]

    def test_trust_key_extends_keyring(self, rsa_key, rsa_key_alt):
        fs, ima = self._rig(AppraisalMode.ENFORCE, [rsa_key.public_key])
        content = b"tsr signed"
        fs.write_file("/bin/pkg", content)
        fs.set_xattr("/bin/pkg", "security.ima", ima_signature_for(content, rsa_key_alt))
        with pytest.raises(FileSystemError):
            fs.read_file("/bin/pkg")
        ima.trust_key(rsa_key_alt.public_key)
        assert fs.read_file("/bin/pkg") == content
