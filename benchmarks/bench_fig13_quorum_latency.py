"""Figure 13 — latency of downloading the metadata index via quorum.

Paper (TSR in Europe, official Alpine mirrors): < 400 ms with up to five
same-continent mirrors; < 1.2 s with ten; mirrors spread across three
continents behave like the North-America set (~ fastest f+1 win) and nine
cross-continent mirrors reach ~2.2 s.

Setup: a full-scale (11,581-entry) metadata index served by synthetic
mirrors; the TSR host's downlink is shared across concurrent fetches and
each mirror pays a TLS-handshake delay of two extra RTTs.

The quorum reader now runs on the exact event-driven transfer schedule
(`ParallelTransferSchedule`); this bench also reports the retired
closed-form shared-downlink bound (``max(setup) + max(sum(sizes)/downlink,
max(size/bw))``) side by side, so the model change is auditable: the exact
schedule is never slower, because streams whose setup ends early start
draining the downlink before the slowest setup completes.
"""

import pytest

from repro.archive.index import IndexEntry, RepositoryIndex
from repro.bench.report import PaperTable, record_table
from repro.core.policy import MirrorPolicyEntry
from repro.core.quorum import QuorumReader
from repro.crypto.rsa import generate_keypair
from repro.simnet.latency import Continent, LatencyModel
from repro.simnet.network import Host, Network, Request
from repro.util.stats import human_duration

_TSR_DOWNLINK = 11 * 1024 * 1024  # bytes/s; calibrated in EXPERIMENTS.md

_SCENARIOS = {
    "Europe": [Continent.EUROPE],
    "North America": [Continent.NORTH_AMERICA],
    "Asia": [Continent.ASIA],
    "All": [Continent.EUROPE, Continent.NORTH_AMERICA, Continent.ASIA],
}


@pytest.fixture(scope="module")
def signed_index_bytes():
    key = generate_keypair(1024, seed=13)
    index = RepositoryIndex(serial=42)
    for i in range(11581):
        index.add(IndexEntry(
            name=f"pkg-{i:05d}", version="1.0-r0", size=250_000,
            sha256=f"{i:064x}",
        ))
    index.sign(key)
    return index.to_bytes(), key.public_key


def _build(index_bytes, continents, count):
    network = Network(latency=LatencyModel(seed=5))
    network.timeout = 60.0
    network.add_host(Host("tsr.eu", Continent.EUROPE,
                          downlink_bandwidth=_TSR_DOWNLINK))
    mirrors = []
    for i in range(count):
        continent = continents[i % len(continents)]
        name = f"mirror-{i}"
        handler = lambda op, payload, blob=index_bytes: (blob, len(blob))
        handshake = 2 * network.latency.base_rtt(Continent.EUROPE, continent)
        network.add_host(Host(name, continent, handler=handler,
                              extra_delay=handshake,
                              bandwidth=_TSR_DOWNLINK))
        mirrors.append(MirrorPolicyEntry(hostname=name, continent=continent))
    return network, mirrors


def _measure(index_bytes, public_key, continents, count) -> float:
    """Exact quorum latency on the event-driven transfer schedule."""
    network, mirrors = _build(index_bytes, continents, count)
    reader = QuorumReader(network, "tsr.eu", mirrors, [public_key])
    return reader.read_index().elapsed


def _closed_form(index_bytes, continents, count) -> float:
    """The retired closed-form bound, replayed over identical probes.

    All mirrors agree in this setup, so the old reader issued exactly one
    gather of the fastest f+1 mirrors and advanced the clock by
    ``max(setup) + max(sum(sizes)/downlink, max(size/bandwidth))``.
    A fresh identically-seeded network keeps the jitter draws aligned
    with the exact measurement.
    """
    network, mirrors = _build(index_bytes, continents, count)
    needed = (count - 1) // 2 + 1
    ordered = sorted(
        mirrors,
        key=lambda m: network.latency.base_rtt(Continent.EUROPE, m.continent),
    )
    src = network.host("tsr.eu")
    pres, downloads, sizes = [], [], []
    for mirror in ordered[:needed]:
        probe = network.probe("tsr.eu", Request(mirror.hostname, "get_index"))
        pres.append(probe.setup)
        downloads.append(network.latency.transfer_time(probe.size_bytes,
                                                       probe.bandwidth))
        sizes.append(probe.size_bytes)
    if src.downlink_bandwidth is not None and len(sizes) > 1:
        shared = network.latency.transfer_time(sum(sizes),
                                               src.downlink_bandwidth)
        return max(pres) + max(shared, max(downloads))
    return max(pre + down for pre, down in zip(pres, downloads))


def test_fig13_quorum_latency(signed_index_bytes, benchmark):
    index_bytes, public_key = signed_index_bytes
    counts = list(range(1, 11))

    def sweep():
        series = {}
        closed = {}
        for label, continents in _SCENARIOS.items():
            series[label] = [
                _measure(index_bytes, public_key, continents, n)
                for n in counts
            ]
            closed[label] = [
                _closed_form(index_bytes, continents, n) for n in counts
            ]
        return series, closed

    series, closed = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = PaperTable(
        experiment="Figure 13",
        title="Metadata index latency vs mirror count (simulated)",
        columns=["mirrors", *(label for label in _SCENARIOS)],
    )
    for idx, n in enumerate(counts):
        table.add_row(n, *(human_duration(series[label][idx])
                           for label in _SCENARIOS))
    table.note("paper anchors: <=5 same-continent < 400 ms; 10 mirrors "
               "< 1.2 s; 9 cross-continent ~ 2.2 s; All ~ North America")
    record_table(table)

    compare = PaperTable(
        experiment="Figure 13b",
        title="Quorum transfer model: closed-form bound vs exact schedule",
        columns=["mirrors", "EU closed-form", "EU exact", "All closed-form",
                 "All exact"],
    )
    for idx, n in enumerate(counts):
        compare.add_row(
            n,
            human_duration(closed["Europe"][idx]),
            human_duration(series["Europe"][idx]),
            human_duration(closed["All"][idx]),
            human_duration(series["All"][idx]),
        )
    compare.note("exact max-min schedule (now the only transfer engine) "
                 "vs the retired closed-form shared-downlink bound; exact "
                 "is never slower because early setups start draining the "
                 "downlink sooner")
    record_table(compare)

    eu = series["Europe"]
    asia = series["Asia"]
    all_mix = series["All"]
    na = series["North America"]
    # Paper anchor: up to five same-continent mirrors stay under 400 ms.
    assert all(latency < 0.4 for latency in eu[:5])
    # Ten mirrors stay in the paper's ~1.2 s regime.
    assert eu[9] < 1.5
    # Latency grows with the mirror count (quorum widens).
    assert eu[9] > eu[0]
    # Cross-continent sets are slower than same-continent ones.
    assert asia[8] > eu[8]
    # "All" behaves like the faster continents, not like Asia: TSR contacts
    # the fastest f+1 mirrors first.
    assert all_mix[8] < asia[8]
    assert abs(all_mix[8] - na[8]) < 0.5 * asia[8]
    # The exact schedule never exceeds the retired closed-form bound.
    for label in _SCENARIOS:
        for exact, bound in zip(series[label], closed[label]):
            assert exact <= bound + 1e-9
