"""Text formats of /etc/passwd, /etc/group, /etc/shadow.

Both the interpreter's ``adduser``/``addgroup`` commands and the sanitizer's
configuration prediction (paper section 4.2) manipulate these files, so the
line-level logic lives here as pure text transformations.  Determinism is
the whole point: adding the same accounts in the same order always yields
byte-identical files.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ScriptError

FIRST_SYSTEM_UID = 100
FIRST_SYSTEM_GID = 101

#: shadow password field for an account that can never log in.
LOCKED_PASSWORD = "!"


@dataclass(frozen=True)
class UserSpec:
    """Parameters of a user-creation request (busybox adduser subset)."""

    name: str
    uid: int | None = None
    gid: int | None = None
    home: str = "/dev/null"
    shell: str = "/sbin/nologin"
    gecos: str = ""
    password: str = LOCKED_PASSWORD
    system: bool = True

    def is_insecure(self) -> bool:
        """Empty password + usable shell = the CVE-2019-5021 pattern."""
        return self.password == "" and not self.shell.endswith("nologin")


@dataclass(frozen=True)
class GroupSpec:
    """Parameters of a group-creation request."""

    name: str
    gid: int | None = None
    members: tuple[str, ...] = ()


def parse_passwd(text: str) -> dict[str, list[str]]:
    """Map user name -> the seven passwd fields."""
    return _parse_colon_file(text, 7, "passwd")


def parse_group(text: str) -> dict[str, list[str]]:
    """Map group name -> the four group fields."""
    return _parse_colon_file(text, 4, "group")


def parse_shadow(text: str) -> dict[str, list[str]]:
    """Map user name -> the nine shadow fields."""
    return _parse_colon_file(text, 9, "shadow")


def _parse_colon_file(text: str, fields: int, what: str) -> dict[str, list[str]]:
    entries: dict[str, list[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        parts = line.split(":")
        if len(parts) != fields:
            raise ScriptError(
                f"/etc/{what} line {number} has {len(parts)} fields, expected {fields}"
            )
        entries[parts[0]] = parts
    return entries


def next_free_id(used: set[int], first: int) -> int:
    candidate = first
    while candidate in used:
        candidate += 1
    return candidate


def add_group(group_text: str, spec: GroupSpec) -> str:
    """Append a group; idempotent if the group already exists."""
    groups = parse_group(group_text)
    if spec.name in groups:
        return group_text
    used = {int(fields[2]) for fields in groups.values() if fields[2].isdigit()}
    gid = spec.gid if spec.gid is not None else next_free_id(used, FIRST_SYSTEM_GID)
    line = f"{spec.name}:x:{gid}:{','.join(spec.members)}"
    return _append_line(group_text, line)


def add_user(passwd_text: str, shadow_text: str, group_text: str,
             spec: UserSpec) -> tuple[str, str, str]:
    """Add a user to all three account files; idempotent per user name.

    Mirrors busybox ``adduser -S``: creates a matching group when no gid is
    given, locks the password unless the spec overrides it.
    """
    passwd = parse_passwd(passwd_text)
    if spec.name in passwd:
        return passwd_text, shadow_text, group_text
    groups = parse_group(group_text)
    if spec.gid is not None:
        gid = spec.gid
    elif spec.name in groups:
        gid = int(groups[spec.name][2])
    else:
        group_text = add_group(group_text, GroupSpec(name=spec.name))
        gid = int(parse_group(group_text)[spec.name][2])
    used_uids = {int(fields[2]) for fields in passwd.values() if fields[2].isdigit()}
    uid = spec.uid if spec.uid is not None else next_free_id(used_uids, FIRST_SYSTEM_UID)
    passwd_line = (
        f"{spec.name}:x:{uid}:{gid}:{spec.gecos}:{spec.home}:{spec.shell}"
    )
    shadow_line = f"{spec.name}:{spec.password}:0:0:99999:7:::"
    return (
        _append_line(passwd_text, passwd_line),
        _append_line(shadow_text, shadow_line),
        group_text,
    )


def set_password(shadow_text: str, user: str, password: str) -> str:
    """Replace a user's shadow password field (``passwd -d`` sets it empty)."""
    entries = shadow_text.splitlines()
    found = False
    for index, line in enumerate(entries):
        if line.split(":", 1)[0] == user:
            fields = line.split(":")
            fields[1] = password
            entries[index] = ":".join(fields)
            found = True
    if not found:
        raise ScriptError(f"passwd: unknown user {user!r}")
    return "\n".join(entries) + "\n"


def insecure_accounts(passwd_text: str, shadow_text: str) -> list[str]:
    """Users with an empty password and a usable login shell.

    This is the CVE-2019-5021 pattern the paper's sanitizer detected in two
    Alpine packages (section 4.2, "Script sanitization").
    """
    shadow = parse_shadow(shadow_text)
    risky = []
    for name, fields in parse_passwd(passwd_text).items():
        shell = fields[6]
        shadow_fields = shadow.get(name)
        if shadow_fields is None:
            continue
        if shadow_fields[1] == "" and not shell.endswith("nologin"):
            risky.append(name)
    return sorted(risky)


def _append_line(text: str, line: str) -> str:
    if text and not text.endswith("\n"):
        text += "\n"
    return text + line + "\n"


def parse_adduser_args(args: list[str]) -> tuple[dict, str | None]:
    """Parse busybox ``adduser`` arguments into UserSpec kwargs.

    Returns ``(kwargs, primary_group)``; shared by the interpreter command
    and the sanitizer's static script analysis so both agree on semantics.
    """
    kwargs: dict = {}
    primary_group: str | None = None
    positional: list[str] = []
    iterator = iter(args)
    for arg in iterator:
        if arg in ("-S", "-D", "-H"):
            continue  # system account, no password, no home dir: our defaults
        elif arg == "-h":
            kwargs["home"] = next(iterator, "/dev/null")
        elif arg == "-s":
            kwargs["shell"] = next(iterator, "/sbin/nologin")
        elif arg == "-g":
            kwargs["gecos"] = next(iterator, "")
        elif arg == "-G":
            primary_group = next(iterator, None)
            if primary_group is None:
                raise ScriptError("adduser: -G requires a group name")
        elif arg == "-u":
            kwargs["uid"] = int(next(iterator, "0"))
        elif arg.startswith("-"):
            raise ScriptError(f"adduser: unsupported flag {arg}")
        else:
            positional.append(arg)
    if len(positional) != 1:
        raise ScriptError("adduser: expected exactly one user name")
    kwargs["name"] = positional[0]
    return kwargs, primary_group


def parse_addgroup_args(args: list[str]) -> tuple[int | None, list[str]]:
    """Parse busybox ``addgroup`` arguments: ``(gid, positional)``.

    One positional operand creates a group; two appends a user to a group.
    """
    gid: int | None = None
    positional: list[str] = []
    iterator = iter(args)
    for arg in iterator:
        if arg == "-S":
            continue
        elif arg == "-g":
            gid = int(next(iterator, "0"))
        elif arg.startswith("-"):
            raise ScriptError(f"addgroup: unsupported flag {arg}")
        else:
            positional.append(arg)
    if len(positional) not in (1, 2):
        raise ScriptError("addgroup: expected [user] group")
    return gid, positional
