"""Shared fixtures for the benchmark suite.

Scale knobs:

* ``REPRO_BENCH_SCALE`` — fraction of the paper's 11,581-package Alpine
  repository to generate with real content (default 0.02 ≈ 230 packages).
  Proportions (script census, size distribution) are scale-invariant.
* TSR signing keys are RSA-2048 so per-file signatures are the paper's
  256 bytes; substrate keys are RSA-1024 for speed.

Every bench records a paper-vs-measured table; they are printed in the
terminal summary and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.report import recorded_tables
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
CENSUS_SCALE = float(os.environ.get("REPRO_CENSUS_SCALE", "0.25"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def census_workload():
    """Metadata-only workload for script censuses (Tables 1-2): larger
    scale, no file contents."""
    return generate_workload(scale=CENSUS_SCALE, seed=2020, with_content=False)


@pytest.fixture(scope="session")
def content_workload():
    """Content-bearing workload for timing/size experiments."""
    return generate_workload(scale=BENCH_SCALE, seed=2020, with_content=True)


@pytest.fixture(scope="session")
def content_scenario(content_workload):
    """Full deployment over the content workload, first refresh done.

    RSA-2048 TSR key -> 256-byte per-file signatures, as in the paper.
    """
    return build_scenario(workload=content_workload, key_bits=1024,
                          tsr_key_bits=2048)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_tables()
    if not tables:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("PAPER-VS-MEASURED TABLES")
    terminalreporter.write_line("=" * 74)
    for table in tables:
        rendered = table.render()
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
        slug = table.experiment.lower().replace(" ", "_").replace(".", "")
        (RESULTS_DIR / f"{slug}.txt").write_text(rendered + "\n")
