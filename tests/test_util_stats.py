"""Tests for statistics helpers used by the bench harness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    human_bytes,
    human_duration,
    percentile,
    summarize_latencies,
    trimmed_mean,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0

    def test_median_of_even_series(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = [5, 1, 3]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50), st.floats(0, 100))
    def test_bounded_by_min_max(self, data, q):
        value = percentile(data, q)
        assert min(data) <= value <= max(data)

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=50))
    def test_monotone_in_q(self, data):
        qs = [0, 25, 50, 75, 100]
        values = [percentile(data, q) for q in qs]
        assert values == sorted(values)


class TestTrimmedMean:
    def test_no_trim_is_mean(self):
        assert trimmed_mean([1, 2, 3], trim=0.0) == 2.0

    def test_paper_style_20_percent(self):
        # 10 values, 20% trim drops 2 from each tail.
        data = [1000, 0, 5, 5, 5, 5, 5, 5, 0, 1000]
        assert trimmed_mean(data, trim=0.2) == 5.0

    def test_outliers_suppressed(self):
        data = [1.0] * 8 + [100.0, 200.0]
        assert trimmed_mean(data, trim=0.2) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            trimmed_mean([])

    def test_rejects_bad_trim(self):
        with pytest.raises(ValueError):
            trimmed_mean([1], trim=0.5)

    @given(st.lists(st.floats(0, 1e3), min_size=1, max_size=40))
    def test_within_data_range(self, data):
        value = trimmed_mean(data, trim=0.2)
        assert min(data) - 1e-9 <= value <= max(data) + 1e-9


class TestSummary:
    def test_five_number_ordering(self):
        summary = summarize_latencies(range(100))
        assert summary.p5 <= summary.p25 <= summary.p50 <= summary.p75 <= summary.p95
        assert summary.count == 100

    def test_row_keys(self):
        row = summarize_latencies([1.0, 2.0]).row()
        assert set(row) == {"count", "mean", "p5", "p25", "p50", "p75", "p95"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_latencies([])


class TestHumanFormat:
    def test_bytes_units(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2.0 KB"
        assert human_bytes(3 * 1024**3) == "3.0 GB"

    def test_duration_units(self):
        assert human_duration(0.000002).endswith("us")
        assert human_duration(0.036) == "36.0 ms"
        assert human_duration(2.2) == "2.20 s"
        assert human_duration(13 * 60) == "13.0 min"

    def test_duration_rejects_negative(self):
        with pytest.raises(ValueError):
            human_duration(-1)
