"""Tests for the account catalog and the package sanitizer."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.core.catalog import RepositoryCatalog
from repro.core.policy import DEFAULT_INIT_CONFIG
from repro.core.sanitizer import SanitizationRejected, Sanitizer
from repro.crypto.hashes import sha256_bytes
from repro.ima.subsystem import verify_ima_signature
from repro.osim.fs import SimFileSystem
from repro.scripts.classify import OperationType
from repro.scripts.interpreter import Interpreter


def _pkg(name="demo", scripts=None, files=None, version="1.0-r0"):
    return ApkPackage(
        name=name, version=version,
        scripts=scripts or {},
        files=files if files is not None else [
            PackageFile(f"/usr/lib/{name}/lib.so", b"\x7fELF " + name.encode())
        ],
    )


class TestCatalog:
    def test_scan_collects_users_and_groups(self):
        catalog = RepositoryCatalog()
        catalog.scan_package(_pkg(scripts={
            ".pre-install": "addgroup -S www\nadduser -S -G www nginx\n",
        }))
        catalog.scan_package(_pkg(name="db", scripts={
            ".pre-install": "adduser -S -s /sbin/nologin postgres\n",
        }))
        assert set(catalog.users) == {"nginx", "postgres"}
        assert "www" in catalog.groups
        assert catalog.user_primary_group["nginx"] == "www"

    def test_creation_order_is_sorted(self):
        catalog = RepositoryCatalog()
        catalog.scan_package(_pkg(scripts={
            ".pre-install": "adduser -S zeta\nadduser -S alpha\n",
        }))
        groups, users = catalog.creation_order()
        assert [u.name for u in users] == ["alpha", "zeta"]

    def test_predict_matches_prelude_execution(self):
        """The core determinism property: the predicted files equal what
        actually executing the prelude produces."""
        catalog = RepositoryCatalog()
        catalog.scan_package(_pkg(scripts={
            ".pre-install": (
                "addgroup -S media\n"
                "adduser -S -D -H -s /sbin/nologin -G media mediasvc\n"
                "adduser -S -h /var/lib/pg postgres\n"
                "addgroup postgres media\n"
            ),
        }))
        predicted = catalog.predict_config(dict(DEFAULT_INIT_CONFIG))
        fs = SimFileSystem()
        for path, content in DEFAULT_INIT_CONFIG.items():
            fs.write_file(path, content.encode())
        script = "\n".join(catalog.prelude_script_lines()) + "\n"
        Interpreter(fs).run(script)
        for path in ("/etc/passwd", "/etc/shadow", "/etc/group"):
            assert fs.read_file(path).decode() == predicted[path], path

    def test_predict_independent_of_scan_order(self):
        def build(order):
            catalog = RepositoryCatalog()
            for name in order:
                catalog.scan_package(_pkg(name=name, scripts={
                    ".pre-install": f"adduser -S svc-{name}\n",
                }))
            return catalog.predict_config(dict(DEFAULT_INIT_CONFIG))

        assert build(["a", "b", "c"]) == build(["c", "a", "b"])

    def test_insecure_pattern_detected(self):
        catalog = RepositoryCatalog()
        catalog.scan_package(_pkg(name="cve-pkg", scripts={
            ".pre-install": "adduser -S -s /bin/ash ftp\npasswd -d ftp\n",
        }))
        assert ("cve-pkg", "ftp") in catalog.insecure_findings

    def test_nologin_password_delete_not_flagged(self):
        catalog = RepositoryCatalog()
        catalog.scan_package(_pkg(scripts={
            ".pre-install": "adduser -S -s /sbin/nologin svc\npasswd -d svc\n",
        }))
        assert catalog.insecure_findings == []


@pytest.fixture(scope="module")
def sanitizer(rsa_key, rsa_key_alt):
    """TSR signing key = rsa_key_alt; upstream builder = rsa_key."""
    catalog = RepositoryCatalog()
    catalog.scan_package(_pkg(scripts={
        ".pre-install": "addgroup -S www\nadduser -S -G www nginx\n",
    }))
    return Sanitizer(
        signing_key=rsa_key_alt,
        trusted_signers=[rsa_key.public_key],
        catalog=catalog,
        init_config=dict(DEFAULT_INIT_CONFIG),
    )


class TestSanitizerHappyPaths:
    def test_scriptless_package_passes(self, sanitizer, rsa_key, rsa_key_alt):
        blob = _pkg().build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        assert result.file_count == 1
        parsed = ApkPackage.parse(result.blob)
        assert parsed.verify([rsa_key_alt.public_key])  # re-signed by TSR

    def test_files_get_ima_signatures(self, sanitizer, rsa_key, rsa_key_alt):
        content = b"\x7fELF library"
        blob = _pkg(files=[PackageFile("/usr/lib/x.so", content)]).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        signature = result.package.files[0].ima_signature
        assert signature is not None
        assert verify_ima_signature(sha256_bytes(content), signature,
                                    [rsa_key_alt.public_key])

    def test_safe_script_kept_verbatim(self, sanitizer, rsa_key):
        script = "#!/bin/sh\nmkdir -p /var/lib/demo\n"
        blob = _pkg(scripts={".post-install": script}).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        assert result.package.scripts[".post-install"] == script

    def test_user_group_script_rewritten_with_prelude(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".pre-install": "adduser -S -G www nginx\nmkdir -p /var/www\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        rewritten = result.package.scripts[".pre-install"]
        assert "adduser" in rewritten          # prelude creates all users
        assert "nginx" in rewritten
        assert "mkdir -p /var/www" in rewritten  # safe command preserved
        assert "setfattr -n security.ima" in rewritten
        assert "/etc/passwd" in rewritten

    def test_config_signatures_cover_predicted_content(self, sanitizer,
                                                       rsa_key, rsa_key_alt):
        blob = _pkg(scripts={
            ".pre-install": "adduser -S -G www nginx\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        predicted = sanitizer.predicted_config
        for path, signature in result.package.config_signatures.items():
            assert verify_ima_signature(
                sha256_bytes(predicted[path].encode()), signature,
                [rsa_key_alt.public_key],
            ), path

    def test_passwd_d_dropped(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".pre-install": "adduser -S -s /bin/ash ftp\npasswd -d ftp\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        assert "passwd -d" not in result.package.scripts[".pre-install"]

    def test_touch_gets_empty_file_signature(self, sanitizer, rsa_key,
                                             rsa_key_alt):
        blob = _pkg(scripts={
            ".post-install": "touch /var/run/demo.lock\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        script = result.package.scripts[".post-install"]
        assert "touch /var/run/demo.lock" in script
        assert "setfattr -n security.ima" in script
        assert "/var/run/demo.lock" in script

    def test_conditional_account_commands_filtered(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".pre-install": (
                "if grep -q nginx /etc/passwd; then\n"
                "  true\n"
                "else\n"
                "  adduser -S nginx\n"
                "fi\n"
                "mkdir -p /var/www\n"
            ),
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        rewritten = result.package.scripts[".pre-install"]
        # The conditional adduser is gone; the prelude handles creation.
        assert "mkdir -p /var/www" in rewritten

    def test_dropped_connector_preserves_following_command(self, sanitizer,
                                                           rsa_key):
        blob = _pkg(scripts={
            ".pre-install": "adduser -S svc && mkdir -p /var/lib/svc\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        assert "mkdir -p /var/lib/svc" in result.package.scripts[".pre-install"]

    def test_size_overhead_positive(self, sanitizer, rsa_key):
        blob = _pkg(files=[
            PackageFile(f"/usr/lib/f{i}", bytes(200)) for i in range(20)
        ]).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        assert result.sanitized_size > result.original_size
        assert result.size_overhead > 0

    def test_phase_timings_populated(self, sanitizer, rsa_key):
        result = sanitizer.sanitize_blob(_pkg().build(rsa_key))
        assert result.timings.total > 0
        assert result.timings.sign > 0
        assert result.timings.archive > 0


class TestSanitizerRejections:
    def test_config_change_rejected(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".post-install": "echo key=1 >> /etc/app.conf\n",
        }).build(rsa_key)
        with pytest.raises(SanitizationRejected) as excinfo:
            sanitizer.sanitize_blob(blob)
        assert "Configuration change" in excinfo.value.reason

    def test_shell_activation_rejected(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".post-install": "add-shell /bin/bash\n",
        }).build(rsa_key)
        with pytest.raises(SanitizationRejected) as excinfo:
            sanitizer.sanitize_blob(blob)
        assert "Shell activation" in excinfo.value.reason

    def test_sed_in_place_rejected(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".post-upgrade": "sed -i s/80/8080/ /etc/app.conf\n",
        }).build(rsa_key)
        with pytest.raises(SanitizationRejected):
            sanitizer.sanitize_blob(blob)

    def test_unparseable_script_rejected(self, sanitizer, rsa_key):
        blob = _pkg(scripts={".post-install": "if true then oops\n"}).build(rsa_key)
        with pytest.raises(SanitizationRejected):
            sanitizer.sanitize_blob(blob)

    def test_untrusted_builder_rejected(self, sanitizer, rsa_key_alt):
        # Signed with a key the policy does not trust (the TSR key itself).
        from repro.util.errors import SignatureError
        blob = _pkg().build(rsa_key_alt)
        with pytest.raises(SignatureError):
            sanitizer.sanitize_blob(blob)


class TestSanitizedExecution:
    """Running a sanitized script on a node must produce the predicted
    configuration — the end-to-end determinism property."""

    def test_execution_matches_prediction(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".pre-install": "adduser -S -G www nginx\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        fs = SimFileSystem()
        for path, content in DEFAULT_INIT_CONFIG.items():
            fs.write_file(path, content.encode())
        outcome = Interpreter(fs).run(result.package.scripts[".pre-install"])
        assert outcome.exit_code == 0
        predicted = sanitizer.predicted_config
        for path in ("/etc/passwd", "/etc/shadow", "/etc/group"):
            assert fs.read_file(path).decode() == predicted[path], path
        # And the signature xattr was installed over exactly that content.
        assert fs.get_xattr("/etc/passwd", "security.ima") is not None

    def test_execution_idempotent(self, sanitizer, rsa_key):
        blob = _pkg(scripts={
            ".pre-install": "adduser -S -G www nginx\n",
        }).build(rsa_key)
        result = sanitizer.sanitize_blob(blob)
        fs = SimFileSystem()
        for path, content in DEFAULT_INIT_CONFIG.items():
            fs.write_file(path, content.encode())
        script = result.package.scripts[".pre-install"]
        Interpreter(fs).run(script)
        first = fs.read_file("/etc/passwd")
        Interpreter(fs).run(script)
        assert fs.read_file("/etc/passwd") == first
