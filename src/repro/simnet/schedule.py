"""The transfer-schedule solver: incremental max-min fluid-flow accounting.

Every concurrent transfer in the system — quorum reads, the pipelined
refresh engine, client batch fetches, and the fleet fan-out — runs on
:class:`ParallelTransferSchedule`.  Each *channel* (one connection)
processes its queue in order: a per-item setup phase (RTT + upload +
processing, no downlink use) followed by a payload phase whose rate is

    ``min(peer bandwidth, channel capacity, fair share of the shared link)``

where the *channel capacity* is an optional per-channel layer (a fleet
client's NIC downlink, see :meth:`ParallelTransferSchedule.limit_channel`)
and the shared link (``downlink_bandwidth``) is divided max-min fairly
among all payload phases active at the same instant.

:meth:`ParallelTransferSchedule.solve` is an *incremental* event-driven
simulation built for 10k+-channel fleets:

* a heap of next-completion events replaces the scan over every channel
  per event;
* the max-min allocation is tracked as a progressive-filling water level:
  streams whose cap sits below the level are *capped* (rate = cap,
  absolute finish time known), the rest are *level-bound* (rate = level).
  When a stream starts or finishes, only the *dirty set* — streams whose
  cap crosses the new level — moves between the two classes; everyone
  else's state is untouched;
* level-bound streams complete against a *virtual time* that integrates
  the level, so a level change revalues every level-bound deadline at
  once without touching any of them.

Per event the work is O(log channels) plus the dirty-set moves (amortized
small), against the reference solver's O(channels · log channels) full
recomputation.  The PR 2 reference loop is kept verbatim as
:meth:`ParallelTransferSchedule.solve_reference` for differential testing;
both solvers model the same fluid system and agree to float tolerance.

The solver core is flat: channels are numbered densely at solve time, all
per-channel state lives in parallel lists, and heap entries pack
``(channel id, epoch)`` into one integer, so event processing never
hashes or compares channel objects.  The fleet endgame — every pending
stream level-bound, no setups left, no queued successors — is completed
as one *batched tail drain* in virtual-deadline order instead of one
heap event per stream; with ``REPRO_SOLVER=numpy`` (and numpy available)
the drain's deadline sort and finish-time recurrence are vectorized, at
float-ulp (not modelling) divergence from the pure path, which remains
the default.  Re-solving an unchanged schedule returns a cached result
(every ``enqueue``/``limit_channel`` invalidates it).

``solve`` does not advance any clock and does not consume the queues, so
callers may enqueue more work and re-solve (the refresh pipeline reinserts
retries into the live schedule this way).
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass

try:  # optional vector core for the tail drain (``REPRO_SOLVER=numpy``)
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain ships numpy
    _np = None

#: Heap entries pack ``cid << _EPOCH_BITS | epoch``: ordering equals the
#: old ``(channel order, epoch)`` tuple tie-break, in one int compare.
_EPOCH_BITS = 40
_EPOCH_MASK = (1 << _EPOCH_BITS) - 1


@dataclass
class TransferTiming:
    """When one scheduled transfer started and finished (clock offsets)."""

    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class _StreamItem:
    key: object
    setup: float
    size_bytes: int
    bandwidth: float


def max_min_rates(caps: dict, capacity: float | None) -> dict:
    """Max-min fair allocation of a shared capacity among capped streams.

    Each stream receives at most its own cap (the peer's serving
    bandwidth); slack left by streams capped below the fair share is
    redistributed to the rest (progressive filling).  ``capacity=None``
    means the shared link is not the bottleneck.

    Ties between equal caps are broken by insertion order of ``caps``
    (enqueue order): the sort is stable and keys are never compared, so
    the allocation — including the order of the returned dict — is
    reproducible run to run even for keys whose ``repr`` contains a
    memory address.
    """
    if capacity is None or capacity >= sum(caps.values()):
        return dict(caps)
    rates: dict = {}
    remaining = capacity
    pending = sorted(caps.items(), key=lambda item: item[1])
    while pending:
        share = remaining / len(pending)
        key, cap = pending[0]
        if cap <= share:
            rates[key] = cap
            remaining -= cap
            pending.pop(0)
            continue
        for key, cap in pending:
            rates[key] = share
        break
    return rates


class ParallelTransferSchedule:
    """Fluid-flow accounting for concurrent downloads over serial channels.

    Each channel (one mirror connection / one fleet client) processes its
    queue in order; all payload phases active at the same instant share
    ``downlink_bandwidth`` max-min fairly, and each stream is additionally
    capped by its peer's bandwidth and by its channel's capacity layer
    (:meth:`limit_channel`), if set.

    :meth:`solve` runs the incremental event simulation (see the module
    docstring) and returns per-item :class:`TransferTiming` offsets; it
    does not advance any clock, so the caller decides how the makespan
    maps onto simulated time.  :meth:`solve_reference` is the dense PR 2
    solver, kept for differential testing.
    """

    def __init__(self, downlink_bandwidth: float | None = None,
                 channel_capacities: dict | None = None):
        if downlink_bandwidth is not None and downlink_bandwidth <= 0:
            raise ValueError("downlink bandwidth must be positive")
        self._downlink = downlink_bandwidth
        self._queues: dict[object, list[_StreamItem]] = {}
        #: Column mirror of ``_queues`` — (keys, setups, sizes, bandwidths)
        #: per channel — so :meth:`_solve` flattens by reference instead of
        #: walking 100k item objects attribute by attribute.
        self._cols: dict[object, tuple[list, list, list, list]] = {}
        self._channel_caps: dict[object, float] = {}
        #: Bumped on any mutation; lets an unchanged re-solve return the
        #: cached timings (the refresh engine re-solves between waves).
        self._version = 0
        self._solved: tuple[tuple[int, float], dict] | None = None
        for channel, cap in (channel_capacities or {}).items():
            self.limit_channel(channel, cap)

    def limit_channel(self, channel: object, bandwidth: float):
        """Cap every payload phase on ``channel`` at ``bandwidth``.

        The layered-capacity hook: a fleet client's NIC downlink bounds
        its stream no matter how much of the shared link is free.
        """
        if bandwidth <= 0:
            raise ValueError("channel capacity must be positive")
        self._channel_caps[channel] = bandwidth
        self._version += 1

    def enqueue(self, channel: object, key: object, setup: float,
                size_bytes: int, bandwidth: float):
        if setup < 0 or size_bytes < 0:
            raise ValueError("negative transfer parameters")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self._queues.setdefault(channel, []).append(
            _StreamItem(key=key, setup=setup, size_bytes=size_bytes,
                        bandwidth=bandwidth)
        )
        cols = self._cols.get(channel)
        if cols is None:
            cols = self._cols[channel] = ([], [], [], [])
        cols[0].append(key)
        cols[1].append(setup)
        cols[2].append(size_bytes)
        cols[3].append(float(bandwidth))
        self._version += 1

    def _effective_cap(self, channel: object, bandwidth: float) -> float:
        limit = self._channel_caps.get(channel)
        return bandwidth if limit is None else min(bandwidth, limit)

    # -- incremental solver --------------------------------------------------

    def solve(self, start_time: float = 0.0) -> dict[object, TransferTiming]:
        stamp = (self._version, start_time)
        if self._solved is not None and self._solved[0] == stamp:
            return dict(self._solved[1])
        timings = self._solve(start_time)
        self._solved = (stamp, timings)
        return dict(timings)

    def _solve(self, start_time: float) -> dict[object, TransferTiming]:
        timings: dict[object, TransferTiming] = {}
        capacity = self._downlink
        use_numpy = _np is not None \
            and os.environ.get("REPRO_SOLVER") == "numpy"

        # Flatten channels to dense ids (insertion order — the same
        # tie-break the dict-keyed solver used) and queues to parallel
        # lists: per-event state access is a list index, never a hash or
        # comparison of an arbitrary channel object.
        chans: list = []
        qkey: list[list] = []
        qsetup: list[list[float]] = []
        qsize: list[list[int]] = []
        qcap: list[list[float]] = []
        limits = self._channel_caps
        for channel, cols in self._cols.items():
            keys = cols[0]
            if not keys:
                continue
            chans.append(channel)
            qkey.append(keys)
            qsetup.append(cols[1])
            qsize.append(cols[2])
            limit = limits.get(channel)
            if limit is None:
                qcap.append(cols[3])
            else:
                qcap.append([bw if bw <= limit else float(limit)
                             for bw in cols[3]])
        n = len(chans)
        qlen = [len(keys) for keys in qkey]
        total_items = sum(qlen)

        idx = [0] * n            # current queue position per channel
        strt = [start_time] * n  # start instant of the current item
        # A channel's active payload phase is either capped (cls 1: runs
        # at its own effective cap; datum = absolute finish time) or
        # level-bound (cls 2: runs at the shared water level; datum =
        # virtual deadline); cls 0 = idle or in setup.  ``epo`` bumps on
        # any class/datum change, invalidating stale heap entries.
        cls = [0] * n
        ecap = [0.0] * n
        dat = [0.0] * n
        epo = [0] * n

        capsum = 0.0        # total rate of capped streams
        ncap = 0            # number of capped streams
        nlvl = 0            # number of level-bound streams
        level = math.inf    # current fair share of the shared link
        vnow = 0.0          # virtual time: integral of the level
        now = start_time
        #: Active payload streams whose channel still has queued items;
        #: the batched tail drain may only run when none remain.
        blockers = 0

        setup_heap: list = []   # (abs end, cid << _EPOCH_BITS) — never stale
        cap_heap: list = []     # (abs finish, pack)
        lvl_heap: list = []     # (virtual deadline, pack)
        capmax_heap: list = []  # (-eff cap, pack)
        lvlmin_heap: list = []  # (eff cap, pack)
        push = heapq.heappush

        def peek(heap, code):
            """Top live entry of a lazy heap; stale entries are dropped."""
            while heap:
                value, pack = heap[0]
                cid = pack >> _EPOCH_BITS
                if cls[cid] == code and epo[cid] == pack & _EPOCH_MASK:
                    return value, cid
                heapq.heappop(heap)
            return None

        def demote(cid):
            """cap -> lvl: the fair share fell below this stream's cap."""
            nonlocal capsum, ncap, nlvl
            remaining = (dat[cid] - now) * ecap[cid]
            capsum -= ecap[cid]
            ncap -= 1
            nlvl += 1
            cls[cid] = 2
            dat[cid] = vnow + (remaining if remaining > 0.0 else 0.0)
            epo[cid] += 1
            pack = cid << _EPOCH_BITS | epo[cid]
            push(lvl_heap, (dat[cid], pack))
            push(lvlmin_heap, (ecap[cid], pack))

        def promote(cid):
            """lvl -> cap: this stream's own cap binds again."""
            nonlocal capsum, ncap, nlvl
            remaining = dat[cid] - vnow
            nlvl -= 1
            ncap += 1
            capsum += ecap[cid]
            cls[cid] = 1
            dat[cid] = now + (remaining if remaining > 0.0 else 0.0) \
                / ecap[cid]
            epo[cid] += 1
            pack = cid << _EPOCH_BITS | epo[cid]
            push(cap_heap, (dat[cid], pack))
            push(capmax_heap, (-ecap[cid], pack))

        def rebalance():
            """Restore the water-fill invariants after the active set changed.

            Only the dirty set — streams whose cap crosses the moving
            level — changes class; every other stream's datum stays valid
            verbatim (capped finishes are absolute, level-bound deadlines
            are virtual).  Within one call the recomputed level only
            rises, so each stream moves at most twice and the loop always
            terminates at the unique water-fill solution.
            """
            nonlocal level
            if capacity is None:
                return
            while True:
                if nlvl == 0:
                    if capsum <= capacity:
                        level = math.inf
                        return
                    demote(peek(capmax_heap, 1)[1])
                    continue
                level = (capacity - capsum) / nlvl
                top = peek(lvlmin_heap, 2)
                if top is not None and top[0] <= level:
                    promote(top[1])
                    continue
                top = peek(capmax_heap, 1)
                if top is not None and -top[0] > level:
                    demote(top[1])
                    continue
                return

        def advance(cid):
            """Start the next queued item's setup phase, if any."""
            nxt = idx[cid] + 1
            idx[cid] = nxt
            if nxt < qlen[cid]:
                strt[cid] = now
                push(setup_heap, (now + qsetup[cid][nxt],
                                  cid << _EPOCH_BITS))

        def begin_transfer(cid):
            """Enter the payload phase; an empty payload completes now."""
            nonlocal capsum, ncap, nlvl, blockers
            i = idx[cid]
            if qsize[cid][i] == 0:
                timings[qkey[cid][i]] = TransferTiming(strt[cid], now)
                advance(cid)
                return
            cap = qcap[cid][i]
            ecap[cid] = cap
            finish = now + qsize[cid][i] / cap
            if capacity is not None and ncap == 0 and nlvl:
                # Saturated fast path: with no capped streams, a new
                # stream whose cap exceeds the post-entry fair share is
                # demoted by the very next ``rebalance`` (and nothing
                # else changes first, since no level-bound stream's cap
                # reaches that share either).  Replay that enter-as-cap +
                # demote sequence arithmetically — same floats, same heap
                # order — without ever touching the cap heaps.
                entered = capsum + cap
                share = (capacity - entered) / nlvl
                top = peek(lvlmin_heap, 2)
                if cap > share and (top is None or top[0] > share):
                    remaining = (finish - now) * cap
                    capsum = entered - cap
                    nlvl += 1
                    cls[cid] = 2
                    dat[cid] = vnow + (remaining if remaining > 0.0 else 0.0)
                    epo[cid] += 1
                    pack = cid << _EPOCH_BITS | epo[cid]
                    push(lvl_heap, (dat[cid], pack))
                    push(lvlmin_heap, (cap, pack))
                    if i + 1 < qlen[cid]:
                        blockers += 1
                    rebalance()
                    return
            cls[cid] = 1
            ncap += 1
            capsum += cap
            dat[cid] = finish
            epo[cid] += 1
            pack = cid << _EPOCH_BITS | epo[cid]
            push(cap_heap, (dat[cid], pack))
            push(capmax_heap, (-cap, pack))
            if i + 1 < qlen[cid]:
                blockers += 1
            rebalance()

        def complete_stream(cid):
            nonlocal capsum, ncap, nlvl, blockers
            if cls[cid] == 1:
                capsum -= ecap[cid]
                ncap -= 1
            else:
                nlvl -= 1
            cls[cid] = 0
            epo[cid] += 1
            i = idx[cid]
            timings[qkey[cid][i]] = TransferTiming(strt[cid], now)
            if i + 1 < qlen[cid]:
                blockers -= 1
            advance(cid)
            rebalance()

        def drain_tail():
            """Batch-complete the all-level-bound endgame.

            Preconditions (checked by the caller): no setups pending, no
            capped streams, no active channel has queued successors.  The
            remaining events are exactly the level-bound completions in
            (virtual deadline, pack) order — the heap's order — with the
            level rising to ``(capacity - capsum) / remaining`` after
            each.  The drain follows the sorted deadlines until a
            remaining stream's own cap would bind (``rebalance`` then
            promotes it and the event loop resumes).  The pure path
            replays the event loop's arithmetic verbatim; the numpy path
            (``REPRO_SOLVER=numpy``) vectorizes the recurrence with
            float-ulp divergence only.
            """
            nonlocal now, vnow, nlvl, level
            live: dict[int, tuple] = {}
            for entry in lvl_heap:
                pack = entry[1]
                cid = pack >> _EPOCH_BITS
                if cls[cid] == 2 and epo[cid] == pack & _EPOCH_MASK:
                    live[cid] = entry
            entries = sorted(live.values())
            m = len(entries)
            if use_numpy and m > 2:
                _drain_tail_numpy(entries)
                return
            # Suffix minimum of the streams' own caps in deadline order:
            # the live top of ``lvlmin_heap`` after j completions.
            sufmin = [math.inf] * (m + 1)
            for j in range(m - 1, -1, -1):
                cap = ecap[entries[j][1] >> _EPOCH_BITS]
                below = sufmin[j + 1]
                sufmin[j] = cap if cap < below else below
            for j in range(m):
                deadline, pack = entries[j]
                cid = pack >> _EPOCH_BITS
                delta = deadline - vnow
                if delta > 0.0:
                    when = now + delta / level
                    vnow += level * (when - now)
                    now = when
                nlvl -= 1
                cls[cid] = 0
                epo[cid] += 1
                i = idx[cid]
                timings[qkey[cid][i]] = TransferTiming(strt[cid], now)
                idx[cid] = i + 1
                if nlvl == 0:
                    level = math.inf
                    return
                level = (capacity - capsum) / nlvl
                if sufmin[j + 1] <= level:
                    # The survivors are exactly the live level-bound set;
                    # rebuild the lazy heaps outright rather than letting
                    # ``peek`` drain the completed entries one heappop at
                    # a time.  Sorted lists are valid heaps, and the live
                    # tops — all ``rebalance`` reads — are unchanged.
                    survivors = entries[j + 1:]
                    lvl_heap[:] = survivors
                    lvlmin_heap[:] = sorted(
                        (ecap[e[1] >> _EPOCH_BITS], e[1])
                        for e in survivors)
                    rebalance()
                    return

        def _drain_tail_numpy(entries):
            """Vectorized tail drain: closed-form finish times.

            In exact arithmetic the event loop's virtual time after
            completing stream j is ``max(vnow, d_j)`` and its level is
            ``(capacity - capsum) / (nlvl - j)``, so finish times are a
            cumulative sum over the sorted deadline gaps.  Differs from
            the pure path only in float rounding (differentially tested).
            """
            nonlocal now, vnow, nlvl, level
            m = len(entries)
            d_arr = _np.array([e[0] for e in entries])
            caps = _np.array([ecap[e[1] >> _EPOCH_BITS] for e in entries])
            prev_v = _np.empty(m)
            prev_v[0] = vnow
            _np.maximum(d_arr[:-1], vnow, out=prev_v[1:])
            deltas = _np.maximum(d_arr - prev_v, 0.0)
            counts = nlvl - _np.arange(m)
            levels = (capacity - capsum) / counts
            levels[0] = level
            finishes = now + _np.cumsum(deltas / levels)
            # Streams beyond the first whose cap meets the risen level
            # must go back through ``rebalance`` (promotion).
            cut = m
            if m > 1:
                sufmin = _np.minimum.accumulate(caps[::-1])[::-1]
                bad = _np.nonzero(sufmin[1:] <= levels[1:])[0]
                if bad.size:
                    cut = int(bad[0]) + 1
            # No epoch bump on completion: ``cls`` going 0 already stales
            # every heap entry, and the next begin bumps the epoch anyway.
            fin = finishes.tolist()
            for (_, pack), f in zip(entries[:cut], fin):
                cid = pack >> _EPOCH_BITS
                cls[cid] = 0
                i = idx[cid]
                timings[qkey[cid][i]] = TransferTiming(strt[cid], f)
                idx[cid] = i + 1
            last = float(finishes[cut - 1])
            if last > now:
                now = last
            top_v = float(d_arr[cut - 1])
            if top_v > vnow:
                vnow = top_v
            nlvl -= cut
            if nlvl == 0:
                level = math.inf
                return
            survivors = entries[cut:]
            lvl_heap[:] = survivors
            lvlmin_heap[:] = sorted(
                (ecap[e[1] >> _EPOCH_BITS], e[1]) for e in survivors)
            level = (capacity - capsum) / nlvl
            rebalance()

        def drain_setups_numpy():
            """Vectorized begin wave (``REPRO_SOLVER=numpy``).

            In the saturated regime (no capped streams) a fleet fan-out
            presents a long run of setup-end events before any stream
            completes, and every begin takes the saturated fast path —
            a pure arithmetic recurrence (level falls as ``C / nlvl``,
            virtual time integrates the level, each stream's virtual
            deadline is fixed at its begin instant).  Compute the run in
            closed form, stopping at the first setup where the fast path
            would not fire or a completion would interleave; the event
            loop resumes there.  Returns the number of setups consumed.
            """
            nonlocal now, vnow, nlvl, level, blockers
            ends = sorted(setup_heap)
            total = len(ends)
            cids = [entry[1] >> _EPOCH_BITS for entry in ends]
            t_arr = _np.array([entry[0] for entry in ends])
            sizes = _np.array([float(qsize[c][idx[c]]) for c in cids])
            caps = _np.array([qcap[c][idx[c]] for c in cids])
            counts = nlvl + _np.arange(total)        # nlvl at begin i
            share = (capacity - (capsum + caps)) / counts
            # level on the interval ending at begin i (after i demotes)
            lvls = _np.empty(total)
            lvls[0] = level
            lvls[1:] = (capacity - capsum) / counts[1:]
            gaps = _np.empty(total)
            gaps[0] = t_arr[0] - now
            _np.subtract(t_arr[1:], t_arr[:-1], out=gaps[1:])
            v_arr = vnow + _np.cumsum(_np.maximum(gaps, 0.0) * lvls)
            deadlines = v_arr + (sizes / caps) * caps
            # Fast-path validity: the begin demotes itself and promotes
            # nothing — its cap and every level-bound cap exceed the
            # post-entry share.
            top = peek(lvlmin_heap, 2)
            prev_cap_min = top[0] if top is not None else math.inf
            lvl_cap_min = _np.empty(total)
            lvl_cap_min[0] = prev_cap_min
            if total > 1:
                _np.minimum(_np.minimum.accumulate(caps)[:-1], prev_cap_min,
                            out=lvl_cap_min[1:])
            ok = (sizes > 0.0) & (caps > share) & (lvl_cap_min > share)
            # Completion interleave: after begin i the earliest virtual
            # deadline must not complete before setup i+1 ends.
            top = peek(lvl_heap, 2)
            dmin = _np.minimum.accumulate(deadlines)
            if top is not None:
                dmin = _np.minimum(dmin, top[0])
            t_comp = t_arr + _np.maximum(dmin - v_arr, 0.0) \
                * (counts + 1) / (capacity - capsum)
            ok[1:] &= t_comp[:-1] >= t_arr[1:]
            bad = _np.nonzero(~ok)[0]
            consumed = int(bad[0]) if bad.size else total
            if consumed == 0:
                return 0
            for cid, cap, deadline in zip(cids[:consumed], caps.tolist(),
                                          deadlines.tolist()):
                cls[cid] = 2
                ecap[cid] = cap
                dat[cid] = deadline
                epo[cid] += 1
                pack = cid << _EPOCH_BITS | epo[cid]
                lvl_heap.append((deadline, pack))
                lvlmin_heap.append((cap, pack))
                if idx[cid] + 1 < qlen[cid]:
                    blockers += 1
            heapq.heapify(lvl_heap)
            heapq.heapify(lvlmin_heap)
            if consumed == total:
                del setup_heap[:]
            else:
                setup_heap[:] = ends[consumed:]  # sorted list is a heap
            nlvl += consumed
            now = float(t_arr[consumed - 1])
            last_v = float(v_arr[consumed - 1])
            if last_v > vnow:
                vnow = last_v
            rebalance()
            return consumed

        for cid in range(n):
            push(setup_heap, (start_time + qsetup[cid][0],
                              cid << _EPOCH_BITS))

        while True:
            # Every stored timing is one completed item; once all items
            # are done, skip draining the (now all-stale) lazy heaps.
            # Duplicate user keys merely disable this early exit.
            if len(timings) == total_items:
                break
            if (capacity is not None and ncap == 0 and nlvl > 1
                    and blockers == 0 and not setup_heap):
                drain_tail()
                continue
            # Next event: a setup ending, a capped stream draining, or the
            # earliest virtual deadline among level-bound streams.
            best_when = best_kind = best_cid = None
            if setup_heap:
                when, pack = setup_heap[0]
                best_when, best_kind, best_cid = \
                    when, 0, pack >> _EPOCH_BITS
            top = peek(cap_heap, 1)
            if top is not None and (best_when is None or top[0] < best_when):
                best_when, best_kind, best_cid = top[0], 1, top[1]
            top = peek(lvl_heap, 2)
            if top is not None:
                delta = top[0] - vnow
                when = now + (delta if delta > 0.0 else 0.0) / level
                if best_when is None or when < best_when:
                    best_when, best_kind, best_cid = when, 2, top[1]
            if best_when is None:
                break
            if best_kind == 0 and use_numpy and capacity is not None \
                    and ncap == 0 and nlvl > 0 and len(setup_heap) >= 64:
                if drain_setups_numpy():
                    continue
            if best_when < now:
                best_when = now
            if nlvl and best_when > now:
                vnow += level * (best_when - now)
            now = best_when
            if best_kind == 0:
                heapq.heappop(setup_heap)
                begin_transfer(best_cid)
            else:
                complete_stream(best_cid)
        return timings

    # -- reference solver (PR 2), for differential testing -------------------

    def solve_reference(self, start_time: float = 0.0,
                        ) -> dict[object, TransferTiming]:
        """Dense per-event recomputation: every active stream's rate is
        rebuilt (with a sort) at every event.  O(events × channels log
        channels) — kept only to differentially validate :meth:`solve`,
        which must agree with it to float tolerance."""
        timings: dict[object, TransferTiming] = {}
        # Per-channel cursor state: (queue index, phase, phase datum).
        # phase "setup" -> datum is the absolute end of the setup phase;
        # phase "transfer" -> datum is the remaining payload bytes.
        state: dict[object, list] = {}
        started: dict[object, float] = {}
        for channel, queue in self._queues.items():
            if queue:
                state[channel] = [0, "setup", start_time + queue[0].setup]
                started[(channel, 0)] = start_time
        now = start_time
        while state:
            active = {
                channel: self._effective_cap(
                    channel, self._queues[channel][cursor[0]].bandwidth)
                for channel, cursor in state.items()
                if cursor[1] == "transfer"
            }
            rates = max_min_rates(active, self._downlink)
            horizons: dict[object, float] = {}
            for channel, cursor in state.items():
                if cursor[1] == "setup":
                    horizons[channel] = cursor[2]
                else:
                    rate = rates[channel]
                    horizons[channel] = (now + cursor[2] / rate if rate > 0
                                         else float("inf"))
            step_end = min(horizons.values())
            for channel, cursor in list(state.items()):
                if cursor[1] == "transfer":
                    if horizons[channel] <= step_end:
                        # This stream defines the event: complete it by
                        # identity, not subtraction — at large clock
                        # values the per-step drain can round to zero and
                        # leave a sub-epsilon residue that never clears.
                        cursor[2] = 0.0
                    else:
                        cursor[2] -= rates[channel] * (step_end - now)
            now = step_end
            for channel, cursor in list(state.items()):
                index, phase, datum = cursor
                item = self._queues[channel][index]
                if phase == "setup" and datum <= now + 1e-15:
                    state[channel] = [index, "transfer", float(item.size_bytes)]
                elif phase == "transfer" and datum <= 1e-9:
                    timings[item.key] = TransferTiming(
                        start=started[(channel, index)], finish=now
                    )
                    if index + 1 < len(self._queues[channel]):
                        nxt = self._queues[channel][index + 1]
                        state[channel] = [index + 1, "setup", now + nxt.setup]
                        started[(channel, index + 1)] = now
                    else:
                        del state[channel]
        return timings
