"""Tests for gzip segments, the apk container, and the repository index."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive.apk import ApkPackage, PackageFile, package_content_hash
from repro.archive.gz import gzip_compress, gzip_decompress, split_gzip_streams
from repro.archive.index import IndexEntry, RepositoryIndex
from repro.util.errors import IntegrityError, PackagingError, SignatureError


class TestGzip:
    def test_roundtrip(self):
        data = b"alpine linux" * 100
        assert gzip_decompress(gzip_compress(data)) == data

    def test_deterministic(self):
        data = b"same input, same bytes"
        assert gzip_compress(data) == gzip_compress(data)

    def test_split_three_streams(self):
        parts = [gzip_compress(b"sig"), gzip_compress(b"ctrl"), gzip_compress(b"data")]
        streams = split_gzip_streams(b"".join(parts), expected=3)
        assert streams == parts
        assert [gzip_decompress(s) for s in streams] == [b"sig", b"ctrl", b"data"]

    def test_split_rejects_wrong_count(self):
        blob = gzip_compress(b"only one")
        with pytest.raises(PackagingError):
            split_gzip_streams(blob, expected=3)

    def test_split_rejects_garbage(self):
        with pytest.raises(PackagingError):
            split_gzip_streams(b"not gzip at all")

    def test_split_rejects_truncation(self):
        blob = gzip_compress(b"x" * 1000)
        with pytest.raises(PackagingError):
            split_gzip_streams(blob[:-5])

    def test_decompress_rejects_trailing_garbage(self):
        with pytest.raises(PackagingError):
            gzip_decompress(gzip_compress(b"a") + b"trailing")

    @given(st.binary(max_size=5000))
    @settings(max_examples=30)
    def test_any_payload_roundtrips(self, data):
        assert gzip_decompress(gzip_compress(data)) == data


def _sample_package() -> ApkPackage:
    return ApkPackage(
        name="openssl",
        version="1.1.1g-r0",
        description="toolkit for TLS",
        depends=["musl", "zlib"],
        scripts={".post-install": "#!/bin/sh\nexit 0\n"},
        files=[
            PackageFile(path="/usr/lib/libssl.so.1.1", content=b"\x7fELF" + b"s" * 500),
            PackageFile(path="/etc/ssl/openssl.cnf", content=b"[req]\n", mode=0o600),
        ],
    )


class TestApk:
    def test_build_parse_roundtrip(self, rsa_key):
        blob = _sample_package().build(rsa_key)
        parsed = ApkPackage.parse(blob)
        pkg = parsed.package
        assert pkg.name == "openssl"
        assert pkg.version == "1.1.1g-r0"
        assert pkg.depends == ["musl", "zlib"]
        assert pkg.scripts[".post-install"].startswith("#!/bin/sh")
        assert pkg.file_map()["/etc/ssl/openssl.cnf"].mode == 0o600

    def test_verify_good_signature(self, rsa_key):
        blob = _sample_package().build(rsa_key)
        parsed = ApkPackage.parse(blob)
        signer = parsed.verify([rsa_key.public_key])
        assert signer == rsa_key.public_key

    def test_verify_rejects_untrusted_key(self, rsa_key, rsa_key_alt):
        blob = _sample_package().build(rsa_key)
        parsed = ApkPackage.parse(blob)
        with pytest.raises(SignatureError):
            parsed.verify([rsa_key_alt.public_key])

    def test_verify_detects_tampered_data_segment(self, rsa_key):
        pkg = _sample_package()
        blob = pkg.build(rsa_key)
        streams = split_gzip_streams(blob, expected=3)
        # Replace the data segment with different (validly compressed) bytes.
        evil = ApkPackage(name=pkg.name, version=pkg.version,
                          files=[PackageFile(path="/bin/backdoor", content=b"evil")])
        evil_blob = evil.build(rsa_key)
        evil_data = split_gzip_streams(evil_blob, expected=3)[2]
        tampered = streams[0] + streams[1] + evil_data
        parsed = ApkPackage.parse(tampered)
        with pytest.raises(IntegrityError):
            parsed.verify([rsa_key.public_key])

    def test_verify_detects_tampered_control_segment(self, rsa_key):
        blob = _sample_package().build(rsa_key)
        streams = split_gzip_streams(blob, expected=3)
        other = _sample_package()
        other.version = "9.9.9-r9"
        other_streams = split_gzip_streams(other.build(rsa_key), expected=3)
        # Old signature + new control: signature check must fail.
        tampered = streams[0] + other_streams[1] + other_streams[2]
        parsed = ApkPackage.parse(tampered)
        with pytest.raises(SignatureError):
            parsed.verify([rsa_key.public_key])

    def test_ima_signatures_survive_roundtrip(self, rsa_key):
        pkg = _sample_package()
        pkg.files[0].ima_signature = b"\x03" + bytes(64)
        parsed = ApkPackage.parse(pkg.build(rsa_key))
        restored = parsed.package.file_map()["/usr/lib/libssl.so.1.1"]
        assert restored.ima_signature == b"\x03" + bytes(64)

    def test_config_signatures_roundtrip(self, rsa_key):
        pkg = _sample_package()
        pkg.config_signatures["/etc/passwd"] = b"cfg-sig-bytes"
        parsed = ApkPackage.parse(pkg.build(rsa_key))
        assert parsed.package.config_signatures == {"/etc/passwd": b"cfg-sig-bytes"}

    def test_unknown_script_hook_rejected(self):
        with pytest.raises(PackagingError):
            ApkPackage(name="x", version="1", scripts={".mid-install": "#!"})

    def test_deterministic_build(self, rsa_key):
        assert _sample_package().build(rsa_key) == _sample_package().build(rsa_key)

    def test_content_hash_changes_with_content(self, rsa_key):
        a = _sample_package().build(rsa_key)
        pkg = _sample_package()
        pkg.files[0].content = b"different"
        b = pkg.build(rsa_key)
        assert package_content_hash(a) != package_content_hash(b)

    def test_parse_rejects_two_segments(self, rsa_key):
        blob = _sample_package().build(rsa_key)
        streams = split_gzip_streams(blob, expected=3)
        with pytest.raises(PackagingError):
            ApkPackage.parse(streams[0] + streams[1])


def _sample_index() -> RepositoryIndex:
    index = RepositoryIndex(serial=7)
    index.add(IndexEntry(name="musl", version="1.1.24-r2", size=383152,
                         sha256="ab" * 32))
    index.add(IndexEntry(name="openssl", version="1.1.1g-r0", size=1024,
                         sha256="cd" * 32, depends=("musl",)))
    return index


class TestRepositoryIndex:
    def test_sign_and_verify(self, rsa_key):
        index = _sample_index()
        index.sign(rsa_key)
        assert index.verify(rsa_key.public_key)

    def test_unsigned_never_verifies(self, rsa_key):
        assert not _sample_index().verify(rsa_key.public_key)

    def test_adding_entry_invalidates_signature(self, rsa_key):
        index = _sample_index()
        index.sign(rsa_key)
        index.add(IndexEntry(name="zlib", version="1", size=1, sha256="ee" * 32))
        assert not index.verify(rsa_key.public_key)

    def test_wire_roundtrip(self, rsa_key):
        index = _sample_index()
        index.sign(rsa_key)
        restored = RepositoryIndex.from_bytes(index.to_bytes())
        assert restored.serial == 7
        assert restored.entries == index.entries
        assert restored.verify(rsa_key.public_key)

    def test_serialize_unsigned_rejected(self):
        with pytest.raises(SignatureError):
            _sample_index().to_bytes()

    def test_tampered_body_fails_verification(self, rsa_key):
        index = _sample_index()
        index.sign(rsa_key)
        blob = index.to_bytes().replace(b"1.1.24-r2", b"0.0.1-r00")
        restored = RepositoryIndex.from_bytes(blob)
        assert not restored.verify(rsa_key.public_key)

    def test_diff_updated(self):
        old = _sample_index()
        new = _sample_index()
        new.add(IndexEntry(name="zlib", version="1.2.11-r3", size=10,
                           sha256="11" * 32))
        new.add(IndexEntry(name="openssl", version="1.1.1h-r0", size=2048,
                           sha256="ef" * 32, depends=("musl",)))
        changed = {e.name for e in new.diff_updated(old)}
        assert changed == {"zlib", "openssl"}

    def test_diff_identical_is_empty(self):
        assert _sample_index().diff_updated(_sample_index()) == []

    def test_total_size(self):
        assert _sample_index().total_size() == 383152 + 1024

    def test_malformed_wire_rejected(self):
        with pytest.raises(PackagingError):
            RepositoryIndex.from_bytes(b"garbage")
        with pytest.raises(PackagingError):
            RepositoryIndex.from_bytes(b"sig:00\nnot-serial\n")
