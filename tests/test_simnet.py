"""Tests for the simulated clock, latency model, and transport."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.clock import SimClock
from repro.simnet.latency import Continent, LatencyModel
from repro.simnet.network import Host, Network, Request
from repro.util.errors import NetworkError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_to_is_monotone(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)  # no-op, already past
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)
        with pytest.raises(ValueError):
            SimClock(-1)

    @given(st.lists(st.floats(0, 100), max_size=20))
    def test_monotonic_under_any_advances(self, steps):
        clock = SimClock()
        last = 0.0
        for step in steps:
            clock.advance(step)
            assert clock.now() >= last
            last = clock.now()


class TestLatencyModel:
    def test_same_continent_anchor(self):
        # Paper: average same-continent (EU) mirror latency is 26.4 ms.
        model = LatencyModel(jitter=0)
        assert model.rtt(Continent.EUROPE, Continent.EUROPE) == pytest.approx(0.0264)

    def test_cross_continent_slower(self):
        model = LatencyModel(jitter=0)
        eu = model.rtt(Continent.EUROPE, Continent.EUROPE)
        asia = model.rtt(Continent.EUROPE, Continent.ASIA)
        assert asia > 3 * eu

    def test_rtt_symmetric(self):
        model = LatencyModel(jitter=0)
        assert model.rtt(Continent.EUROPE, Continent.ASIA) == model.rtt(
            Continent.ASIA, Continent.EUROPE
        )

    def test_jitter_deterministic_per_seed(self):
        a = LatencyModel(seed=1)
        b = LatencyModel(seed=1)
        series_a = [a.rtt(Continent.EUROPE, Continent.EUROPE) for _ in range(5)]
        series_b = [b.rtt(Continent.EUROPE, Continent.EUROPE) for _ in range(5)]
        assert series_a == series_b

    def test_jitter_bounded(self):
        model = LatencyModel(jitter=0.15, seed=3)
        base = model.base_rtt(Continent.EUROPE, Continent.EUROPE)
        for _ in range(100):
            value = model.rtt(Continent.EUROPE, Continent.EUROPE)
            assert base * 0.85 <= value <= base * 1.15

    def test_transfer_time_table3_anchor(self):
        # ~3 GB at the default bandwidth should take on the order of 17 min.
        model = LatencyModel()
        seconds = model.transfer_time(3 * 1024**3)
        assert 14 * 60 < seconds < 21 * 60

    def test_transfer_rejects_bad_args(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.transfer_time(-1)
        with pytest.raises(ValueError):
            model.transfer_time(10, bandwidth=0)

    def test_continent_parse(self):
        assert Continent.parse("Europe") is Continent.EUROPE
        assert Continent.parse("north-america") is Continent.NORTH_AMERICA
        assert Continent.parse("AS") is Continent.ASIA
        with pytest.raises(ValueError):
            Continent.parse("atlantis")


def _echo_handler(operation, payload):
    return (operation, payload), 128


def _build_network() -> Network:
    net = Network()
    net.add_host(Host("tsr.eu", Continent.EUROPE, handler=_echo_handler))
    net.add_host(Host("mirror.eu", Continent.EUROPE, handler=_echo_handler))
    net.add_host(Host("mirror.asia", Continent.ASIA, handler=_echo_handler))
    return net


class TestNetwork:
    def test_call_advances_clock(self):
        net = _build_network()
        response = net.call("tsr.eu", Request("mirror.eu", "ping"))
        assert response.payload == ("ping", None)
        assert net.clock.now() == pytest.approx(response.elapsed)
        assert response.elapsed > 0.02  # at least the EU RTT

    def test_cross_continent_call_slower(self):
        net = _build_network()
        eu = net.call("tsr.eu", Request("mirror.eu", "ping")).elapsed
        asia = net.call("tsr.eu", Request("mirror.asia", "ping")).elapsed
        assert asia > eu

    def test_duplicate_host_rejected(self):
        net = _build_network()
        with pytest.raises(NetworkError):
            net.add_host(Host("tsr.eu", Continent.EUROPE))

    def test_unknown_host_rejected(self):
        net = _build_network()
        with pytest.raises(NetworkError):
            net.call("tsr.eu", Request("nope", "ping"))

    def test_down_host_times_out(self):
        net = _build_network()
        net.set_down("mirror.eu")
        with pytest.raises(NetworkError):
            net.call("tsr.eu", Request("mirror.eu", "ping"))

    def test_partition_blocks_and_heals(self):
        net = _build_network()
        net.partition("tsr.eu", "mirror.eu")
        with pytest.raises(NetworkError):
            net.call("tsr.eu", Request("mirror.eu", "ping"))
        net.heal("tsr.eu", "mirror.eu")
        assert net.call("tsr.eu", Request("mirror.eu", "ping")).payload[0] == "ping"

    def test_large_payload_takes_longer(self):
        net = _build_network()
        small = net.call("tsr.eu", Request("mirror.eu", "get", size_bytes=100)).elapsed
        net2 = _build_network()
        big = net2.call("tsr.eu", Request("mirror.eu", "get", size_bytes=10_000_000)).elapsed
        assert big > small + 1.0  # 10 MB at ~3 MB/s

    def test_gather_advances_to_slowest_success(self):
        net = _build_network()
        requests = [Request("mirror.eu", "ping"), Request("mirror.asia", "ping")]
        responses = net.gather("tsr.eu", requests)
        elapsed = [r.elapsed for r in responses if not isinstance(r, NetworkError)]
        assert len(elapsed) == 2
        assert net.clock.now() == pytest.approx(max(elapsed))

    def test_gather_mixes_failures_and_successes(self):
        net = _build_network()
        net.set_down("mirror.asia")
        responses = net.gather(
            "tsr.eu", [Request("mirror.eu", "ping"), Request("mirror.asia", "ping")]
        )
        assert not isinstance(responses[0], NetworkError)
        assert isinstance(responses[1], NetworkError)

    def test_gather_all_failed_advances_by_timeout(self):
        net = _build_network()
        net.set_down("mirror.eu")
        net.set_down("mirror.asia")
        responses = net.gather(
            "tsr.eu", [Request("mirror.eu", "ping"), Request("mirror.asia", "ping")]
        )
        assert all(isinstance(r, NetworkError) for r in responses)
        assert net.clock.now() == pytest.approx(net.timeout)

    def test_timeout_enforced_on_slow_transfer(self):
        net = _build_network()
        with pytest.raises(NetworkError):
            # 100 MB at 3 MB/s far exceeds the 5 s default timeout.
            net.call("tsr.eu", Request("mirror.eu", "get", size_bytes=100_000_000))

    def test_extra_delay_models_throttled_mirror(self):
        net = _build_network()
        baseline = net.call("tsr.eu", Request("mirror.eu", "ping")).elapsed
        net.host("mirror.eu").extra_delay = 0.2
        slowed = net.call("tsr.eu", Request("mirror.eu", "ping")).elapsed
        assert slowed > baseline + 0.15
