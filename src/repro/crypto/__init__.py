"""From-scratch cryptography used across the reproduction.

Implements exactly what TSR and its substrates need, with no external
crypto dependency:

* SHA-256 digests (stdlib ``hashlib`` as the primitive),
* RSA key generation (Miller-Rabin), signing and verification using
  PKCS#1 v1.5 with SHA-256 — matching Alpine's 256-byte ``.rsa.pub``
  signatures the paper relies on,
* PEM-style serialization so policies can embed keys as in Listing 1,
* a minimal certificate chain for mirror endpoint authentication.
"""

from repro.crypto.hashes import sha256_hex, sha256_bytes, hmac_sha256
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.crypto.pem import pem_encode, pem_decode
from repro.crypto.certs import Certificate, CertificateAuthority, verify_chain

__all__ = [
    "sha256_hex",
    "sha256_bytes",
    "hmac_sha256",
    "RsaPrivateKey",
    "RsaPublicKey",
    "generate_keypair",
    "pem_encode",
    "pem_decode",
    "Certificate",
    "CertificateAuthority",
    "verify_chain",
]
