"""The transfer-schedule solver: incremental max-min fluid-flow accounting.

Every concurrent transfer in the system — quorum reads, the pipelined
refresh engine, client batch fetches, and the fleet fan-out — runs on
:class:`ParallelTransferSchedule`.  Each *channel* (one connection)
processes its queue in order: a per-item setup phase (RTT + upload +
processing, no downlink use) followed by a payload phase whose rate is

    ``min(peer bandwidth, channel capacity, fair share of the shared link)``

where the *channel capacity* is an optional per-channel layer (a fleet
client's NIC downlink, see :meth:`ParallelTransferSchedule.limit_channel`)
and the shared link (``downlink_bandwidth``) is divided max-min fairly
among all payload phases active at the same instant.  A schedule may
carry several *links* — independent shared pipes, each its own max-min
pool (:meth:`ParallelTransferSchedule.add_link`; an edge replica's
serving uplink next to the primary's) — while channels stay global, so
one client's fetches serialize even when they cross links.

:meth:`ParallelTransferSchedule.solve` is an *incremental* event-driven
simulation built for 10k+-channel fleets:

* a heap of next-completion events replaces the scan over every channel
  per event;
* the max-min allocation is tracked as a progressive-filling water level:
  streams whose cap sits below the level are *capped* (rate = cap,
  absolute finish time known), the rest are *level-bound* (rate = level).
  When a stream starts or finishes, only the *dirty set* — streams whose
  cap crosses the new level — moves between the two classes; everyone
  else's state is untouched;
* level-bound streams complete against a *virtual time* that integrates
  the level, so a level change revalues every level-bound deadline at
  once without touching any of them.

Per event the work is O(log channels) plus the dirty-set moves (amortized
small), against the reference solver's O(channels · log channels) full
recomputation.  The PR 2 reference loop is kept verbatim as
:meth:`ParallelTransferSchedule.solve_reference` for differential testing;
both solvers model the same fluid system and agree to float tolerance.

The solver core is flat: channels are numbered densely at solve time, all
per-channel state lives in parallel lists, and heap entries pack
``(channel id, epoch)`` into one integer, so event processing never
hashes or compares channel objects.  The fleet endgame — every pending
stream level-bound, no setups left, no queued successors — is completed
as one *batched tail drain* in virtual-deadline order instead of one
heap event per stream; with ``REPRO_SOLVER=numpy`` (and numpy available)
the drain's deadline sort and finish-time recurrence are vectorized, at
float-ulp (not modelling) divergence from the pure path, which remains
the default.  Re-solving an unchanged schedule returns a cached result
(every ``enqueue``/``limit_channel`` invalidates it).

``solve`` does not advance any clock and does not consume the queues, so
callers may enqueue more work and re-solve (the refresh pipeline reinserts
retries into the live schedule this way).

**Streaming mode** (:meth:`ParallelTransferSchedule.stream`) turns the
same engine into a persistent event loop for long multi-round plans: the
core keeps its water-level state alive between trace events, the caller
periodically advances it to a time *frontier* (:meth:`ScheduleStream.
advance_to`), and every transfer whose completion lands at or before the
frontier is **settled** — its timing is final, because every enqueue the
streaming contract admits begins its payload at or after the frontier
and the solver is monotone (added load never makes an existing stream
finish earlier).  Settled items and fully drained channels are *retired*:
their queue columns, heap entries, and per-channel slots are reclaimed
(dense channel ids are recycled through a free list), so live-core memory
tracks *active* streams instead of trace length.  Mid-plan ``solve()``
calls — the refresh engine's quorum frontiers and retry decisions —
clone the live core and run the clone to exhaustion: the clone's state at
the frontier is exactly what a from-scratch solve of the full history
would have reached there, so mid-plan timings are identical to the
materialized path's while touching only O(active) state.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass

try:  # optional vector core for the tail drain (``REPRO_SOLVER=numpy``)
    import numpy as _np
except ImportError:  # pragma: no cover - toolchain ships numpy
    _np = None

#: Heap entries pack ``cid << _EPOCH_BITS | epoch``: ordering equals the
#: old ``(channel order, epoch)`` tuple tie-break, in one int compare.
_EPOCH_BITS = 40
_EPOCH_MASK = (1 << _EPOCH_BITS) - 1


@dataclass
class TransferTiming:
    """When one scheduled transfer started and finished (clock offsets)."""

    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class _StreamItem:
    key: object
    setup: float
    size_bytes: int
    bandwidth: float
    group: int = 0


def max_min_rates(caps: dict, capacity: float | None) -> dict:
    """Max-min fair allocation of a shared capacity among capped streams.

    Each stream receives at most its own cap (the peer's serving
    bandwidth); slack left by streams capped below the fair share is
    redistributed to the rest (progressive filling).  ``capacity=None``
    means the shared link is not the bottleneck.

    Ties between equal caps are broken by insertion order of ``caps``
    (enqueue order): the sort is stable and keys are never compared, so
    the allocation — including the order of the returned dict — is
    reproducible run to run even for keys whose ``repr`` contains a
    memory address.
    """
    if capacity is None or capacity >= sum(caps.values()):
        return dict(caps)
    rates: dict = {}
    remaining = capacity
    pending = sorted(caps.items(), key=lambda item: item[1])
    while pending:
        share = remaining / len(pending)
        key, cap = pending[0]
        if cap <= share:
            rates[key] = cap
            remaining -= cap
            pending.pop(0)
            continue
        for key, cap in pending:
            rates[key] = share
        break
    return rates


class _EngineState:
    """Flat solver-core state, shared by the one-shot and streaming paths.

    The one-shot path (:meth:`ParallelTransferSchedule._solve`) builds
    one of these from the queued columns and runs it to exhaustion; a
    :class:`ScheduleStream` keeps one alive across trace events, appends
    to its queues as work arrives, and advances it frontier by frontier.
    ``clone()`` copies exactly the state the event loop mutates (cursor
    lists, water-level scalars, heaps) while sharing the read-only queue
    columns, which is how mid-plan solves run without disturbing the
    live core.

    Capacity is per *link group*: group 0 is the default shared link
    (``downlink_bandwidth``), further groups are the secondary links
    declared with :meth:`ParallelTransferSchedule.add_link` (a replica
    host's uplink).  Each group runs its own water-fill — its own
    capsum/ncap/nlvl/level/vnow scalars and completion heaps — because
    the links are physically independent pipes; channels stay global,
    so one channel's queue still serializes across links.
    """

    __slots__ = (
        "caps", "ngroups", "start_time", "use_numpy", "chans",
        "qkey", "qsetup", "qsize", "qcap", "qgrp", "qlen",
        "idx", "strt", "cls", "ecap", "dat", "epo", "lastfin", "agrp",
        "capsum", "ncap", "nlvl", "level", "vnow", "now",
        "tot_ncap", "tot_nlvl", "blockers", "remaining",
        "setup_heap", "cap_heaps", "lvl_heaps", "capmax_heaps",
        "lvlmin_heaps", "timings",
    )

    def __init__(self, caps: list[float | None], start_time: float,
                 use_numpy: bool):
        ngroups = len(caps)
        self.caps = caps          # shared-link capacity per link group
        self.ngroups = ngroups
        self.start_time = start_time
        self.use_numpy = use_numpy
        self.chans: list = []
        self.qkey: list[list] = []
        self.qsetup: list[list[float]] = []
        self.qsize: list[list[int]] = []
        self.qcap: list[list[float]] = []
        self.qgrp: list[list[int]] = []  # link group per queued item
        self.qlen: list[int] = []
        self.idx: list[int] = []       # current queue position per channel
        self.strt: list[float] = []    # start instant of the current item
        # A channel's active payload phase is either capped (cls 1: runs
        # at its own effective cap; datum = absolute finish time) or
        # level-bound (cls 2: runs at the shared water level; datum =
        # virtual deadline); cls 0 = idle or in setup.  ``epo`` bumps on
        # any class/datum change, invalidating stale heap entries.
        self.cls: list[int] = []
        self.ecap: list[float] = []
        self.dat: list[float] = []
        self.epo: list[int] = []
        #: Finish instant of the channel's most recent completion — the
        #: anchor later enqueues chain their setup phase off once the
        #: channel went idle (streaming revival / channel retirement).
        self.lastfin: list[float] = []
        #: Link group of the channel's *active* payload (valid while
        #: cls != 0; the next begin rewrites it from ``qgrp``).
        self.agrp: list[int] = []
        self.capsum = [0.0] * ngroups  # total rate of capped streams
        self.ncap = [0] * ngroups      # number of capped streams
        self.nlvl = [0] * ngroups      # number of level-bound streams
        self.level = [math.inf] * ngroups  # fair share per link group
        self.vnow = [0.0] * ngroups    # virtual time: integral of level
        self.now = start_time
        self.tot_ncap = 0        # sum over groups (hot-loop gates)
        self.tot_nlvl = 0
        #: Active payload streams whose channel still has queued items;
        #: the batched tail drain may only run when none remain.
        self.blockers = 0
        #: Enqueued items not yet completed (exact loop-exit counter).
        self.remaining = 0
        self.setup_heap: list = []   # (abs end, cid << _EPOCH_BITS); not stale
        self.cap_heaps = [[] for _ in range(ngroups)]     # (abs finish, pack)
        self.lvl_heaps = [[] for _ in range(ngroups)]     # (virt deadline, pack)
        self.capmax_heaps = [[] for _ in range(ngroups)]  # (-eff cap, pack)
        self.lvlmin_heaps = [[] for _ in range(ngroups)]  # (eff cap, pack)
        self.timings: dict[object, TransferTiming] = {}

    def clone(self) -> "_EngineState":
        other = _EngineState.__new__(_EngineState)
        other.caps = self.caps
        other.ngroups = self.ngroups
        other.start_time = self.start_time
        other.use_numpy = self.use_numpy
        # Queue columns are read-only during a run: share them.
        other.chans = self.chans
        other.qkey = self.qkey
        other.qsetup = self.qsetup
        other.qsize = self.qsize
        other.qcap = self.qcap
        other.qgrp = self.qgrp
        other.qlen = self.qlen
        other.idx = self.idx[:]
        other.strt = self.strt[:]
        other.cls = self.cls[:]
        other.ecap = self.ecap[:]
        other.dat = self.dat[:]
        other.epo = self.epo[:]
        other.lastfin = self.lastfin[:]
        other.agrp = self.agrp[:]
        other.capsum = self.capsum[:]
        other.ncap = self.ncap[:]
        other.nlvl = self.nlvl[:]
        other.level = self.level[:]
        other.vnow = self.vnow[:]
        other.now = self.now
        other.tot_ncap = self.tot_ncap
        other.tot_nlvl = self.tot_nlvl
        other.blockers = self.blockers
        other.remaining = self.remaining
        other.setup_heap = self.setup_heap[:]
        other.cap_heaps = [heap[:] for heap in self.cap_heaps]
        other.lvl_heaps = [heap[:] for heap in self.lvl_heaps]
        other.capmax_heaps = [heap[:] for heap in self.capmax_heaps]
        other.lvlmin_heaps = [heap[:] for heap in self.lvlmin_heaps]
        other.timings = {}
        return other


def _run_engine(st: _EngineState, until: float | None = None,
                ) -> dict[object, TransferTiming]:
    """Run the event loop over ``st``, stopping at time ``until``.

    ``until=None`` runs to exhaustion (the one-shot solve and the
    streaming clone-solve); a finite ``until`` processes exactly the
    events whose instant is <= ``until`` and suspends — the streaming
    advance.  The batched drains (tail drain, numpy setup drain) jump
    past arbitrarily many events, so they only engage on unbounded runs;
    the bounded path takes the generic per-event branch, which computes
    the same floats event by event (the drains replay the event loop's
    arithmetic verbatim — see ``drain_tail``).  Completed items land in
    ``st.timings``; all other state is written back for resumption.
    """
    timings = st.timings
    caps_g = st.caps
    ngroups = st.ngroups
    use_numpy = st.use_numpy and until is None
    qkey = st.qkey
    qsetup = st.qsetup
    qsize = st.qsize
    qcap = st.qcap
    qgrp = st.qgrp
    qlen = st.qlen
    idx = st.idx
    strt = st.strt
    cls = st.cls
    ecap = st.ecap
    dat = st.dat
    epo = st.epo
    lastfin = st.lastfin
    agrp = st.agrp
    capsum = st.capsum  # per-group lists, mutated in place
    ncap = st.ncap
    nlvl = st.nlvl
    level = st.level
    vnow = st.vnow
    now = st.now
    tot_ncap = st.tot_ncap
    tot_nlvl = st.tot_nlvl
    blockers = st.blockers
    remaining = st.remaining
    setup_heap = st.setup_heap
    cap_heaps = st.cap_heaps
    lvl_heaps = st.lvl_heaps
    capmax_heaps = st.capmax_heaps
    lvlmin_heaps = st.lvlmin_heaps
    push = heapq.heappush

    def peek(heap, code):
        """Top live entry of a lazy heap; stale entries are dropped."""
        while heap:
            value, pack = heap[0]
            cid = pack >> _EPOCH_BITS
            if cls[cid] == code and epo[cid] == pack & _EPOCH_MASK:
                return value, cid
            heapq.heappop(heap)
        return None

    def demote(cid):
        """cap -> lvl: the fair share fell below this stream's cap."""
        nonlocal tot_ncap, tot_nlvl
        g = agrp[cid]
        remain = (dat[cid] - now) * ecap[cid]
        capsum[g] -= ecap[cid]
        ncap[g] -= 1
        nlvl[g] += 1
        tot_ncap -= 1
        tot_nlvl += 1
        cls[cid] = 2
        dat[cid] = vnow[g] + (remain if remain > 0.0 else 0.0)
        epo[cid] += 1
        pack = cid << _EPOCH_BITS | epo[cid]
        push(lvl_heaps[g], (dat[cid], pack))
        push(lvlmin_heaps[g], (ecap[cid], pack))

    def promote(cid):
        """lvl -> cap: this stream's own cap binds again."""
        nonlocal tot_ncap, tot_nlvl
        g = agrp[cid]
        remain = dat[cid] - vnow[g]
        nlvl[g] -= 1
        ncap[g] += 1
        tot_nlvl -= 1
        tot_ncap += 1
        capsum[g] += ecap[cid]
        cls[cid] = 1
        dat[cid] = now + (remain if remain > 0.0 else 0.0) \
            / ecap[cid]
        epo[cid] += 1
        pack = cid << _EPOCH_BITS | epo[cid]
        push(cap_heaps[g], (dat[cid], pack))
        push(capmax_heaps[g], (-ecap[cid], pack))

    def rebalance(g):
        """Restore one group's water-fill invariants after its active
        set changed.

        Only the dirty set — streams whose cap crosses the moving
        level — changes class; every other stream's datum stays valid
        verbatim (capped finishes are absolute, level-bound deadlines
        are virtual).  Within one call the recomputed level only
        rises, so each stream moves at most twice and the loop always
        terminates at the unique water-fill solution.  Groups never
        interact: a begin/complete on link g dirties only link g.
        """
        capacity = caps_g[g]
        if capacity is None:
            return
        capmax_heap = capmax_heaps[g]
        lvlmin_heap = lvlmin_heaps[g]
        while True:
            if nlvl[g] == 0:
                if capsum[g] <= capacity:
                    level[g] = math.inf
                    return
                demote(peek(capmax_heap, 1)[1])
                continue
            level[g] = (capacity - capsum[g]) / nlvl[g]
            top = peek(lvlmin_heap, 2)
            if top is not None and top[0] <= level[g]:
                promote(top[1])
                continue
            top = peek(capmax_heap, 1)
            if top is not None and -top[0] > level[g]:
                demote(top[1])
                continue
            return

    def advance(cid):
        """Start the next queued item's setup phase, if any."""
        nxt = idx[cid] + 1
        idx[cid] = nxt
        if nxt < qlen[cid]:
            strt[cid] = now
            push(setup_heap, (now + qsetup[cid][nxt],
                              cid << _EPOCH_BITS))

    def begin_transfer(cid):
        """Enter the payload phase; an empty payload completes now."""
        nonlocal blockers, remaining, tot_ncap, tot_nlvl
        i = idx[cid]
        if qsize[cid][i] == 0:
            timings[qkey[cid][i]] = TransferTiming(strt[cid], now)
            lastfin[cid] = now
            remaining -= 1
            advance(cid)
            return
        cap = qcap[cid][i]
        g = qgrp[cid][i]
        agrp[cid] = g
        ecap[cid] = cap
        finish = now + qsize[cid][i] / cap
        capacity = caps_g[g]
        if capacity is not None and ncap[g] == 0 and nlvl[g]:
            # Saturated fast path: with no capped streams, a new
            # stream whose cap exceeds the post-entry fair share is
            # demoted by the very next ``rebalance`` (and nothing
            # else changes first, since no level-bound stream's cap
            # reaches that share either).  Replay that enter-as-cap +
            # demote sequence arithmetically — same floats, same heap
            # order — without ever touching the cap heaps.
            entered = capsum[g] + cap
            share = (capacity - entered) / nlvl[g]
            top = peek(lvlmin_heaps[g], 2)
            if cap > share and (top is None or top[0] > share):
                remain = (finish - now) * cap
                capsum[g] = entered - cap
                nlvl[g] += 1
                tot_nlvl += 1
                cls[cid] = 2
                dat[cid] = vnow[g] + (remain if remain > 0.0 else 0.0)
                epo[cid] += 1
                pack = cid << _EPOCH_BITS | epo[cid]
                push(lvl_heaps[g], (dat[cid], pack))
                push(lvlmin_heaps[g], (cap, pack))
                if i + 1 < qlen[cid]:
                    blockers += 1
                rebalance(g)
                return
        cls[cid] = 1
        ncap[g] += 1
        tot_ncap += 1
        capsum[g] += cap
        dat[cid] = finish
        epo[cid] += 1
        pack = cid << _EPOCH_BITS | epo[cid]
        push(cap_heaps[g], (dat[cid], pack))
        push(capmax_heaps[g], (-cap, pack))
        if i + 1 < qlen[cid]:
            blockers += 1
        rebalance(g)

    def complete_stream(cid):
        nonlocal blockers, remaining, tot_ncap, tot_nlvl
        g = agrp[cid]
        if cls[cid] == 1:
            capsum[g] -= ecap[cid]
            ncap[g] -= 1
            tot_ncap -= 1
        else:
            nlvl[g] -= 1
            tot_nlvl -= 1
        cls[cid] = 0
        epo[cid] += 1
        i = idx[cid]
        timings[qkey[cid][i]] = TransferTiming(strt[cid], now)
        lastfin[cid] = now
        remaining -= 1
        if i + 1 < qlen[cid]:
            blockers -= 1
        advance(cid)
        rebalance(g)

    def drain_tail(g):
        """Batch-complete the all-level-bound endgame of one group.

        Preconditions (checked by the caller): no setups pending, no
        capped streams anywhere, no active channel has queued
        successors, and group ``g`` holds *every* live stream (other
        groups' virtual clocks are frozen at nlvl == 0, so jumping
        real time is safe).  The remaining events are exactly the
        level-bound completions in (virtual deadline, pack) order —
        the heap's order — with the level rising to ``(capacity -
        capsum) / remaining`` after each.  The drain follows the
        sorted deadlines until a remaining stream's own cap would
        bind (``rebalance`` then promotes it and the event loop
        resumes).  The pure path replays the event loop's arithmetic
        verbatim; the numpy path (``REPRO_SOLVER=numpy``) vectorizes
        the recurrence with float-ulp divergence only.
        """
        nonlocal now, remaining, tot_nlvl
        capacity = caps_g[g]
        lvl_heap = lvl_heaps[g]
        lvlmin_heap = lvlmin_heaps[g]
        live: dict[int, tuple] = {}
        for entry in lvl_heap:
            pack = entry[1]
            cid = pack >> _EPOCH_BITS
            if cls[cid] == 2 and epo[cid] == pack & _EPOCH_MASK:
                live[cid] = entry
        entries = sorted(live.values())
        m = len(entries)
        if use_numpy and m > 2:
            _drain_tail_numpy(g, entries)
            return
        # Suffix minimum of the streams' own caps in deadline order:
        # the live top of ``lvlmin_heap`` after j completions.
        sufmin = [math.inf] * (m + 1)
        for j in range(m - 1, -1, -1):
            cap = ecap[entries[j][1] >> _EPOCH_BITS]
            below = sufmin[j + 1]
            sufmin[j] = cap if cap < below else below
        for j in range(m):
            deadline, pack = entries[j]
            cid = pack >> _EPOCH_BITS
            delta = deadline - vnow[g]
            if delta > 0.0:
                when = now + delta / level[g]
                vnow[g] += level[g] * (when - now)
                now = when
            nlvl[g] -= 1
            tot_nlvl -= 1
            cls[cid] = 0
            epo[cid] += 1
            i = idx[cid]
            timings[qkey[cid][i]] = TransferTiming(strt[cid], now)
            lastfin[cid] = now
            remaining -= 1
            idx[cid] = i + 1
            if nlvl[g] == 0:
                level[g] = math.inf
                return
            level[g] = (capacity - capsum[g]) / nlvl[g]
            if sufmin[j + 1] <= level[g]:
                # The survivors are exactly the live level-bound set;
                # rebuild the lazy heaps outright rather than letting
                # ``peek`` drain the completed entries one heappop at
                # a time.  Sorted lists are valid heaps, and the live
                # tops — all ``rebalance`` reads — are unchanged.
                survivors = entries[j + 1:]
                lvl_heap[:] = survivors
                lvlmin_heap[:] = sorted(
                    (ecap[e[1] >> _EPOCH_BITS], e[1])
                    for e in survivors)
                rebalance(g)
                return

    def _drain_tail_numpy(g, entries):
        """Vectorized tail drain: closed-form finish times.

        In exact arithmetic the event loop's virtual time after
        completing stream j is ``max(vnow, d_j)`` and its level is
        ``(capacity - capsum) / (nlvl - j)``, so finish times are a
        cumulative sum over the sorted deadline gaps.  Differs from
        the pure path only in float rounding (differentially tested).
        """
        nonlocal now, remaining, tot_nlvl
        capacity = caps_g[g]
        m = len(entries)
        cids = [e[1] >> _EPOCH_BITS for e in entries]
        d_arr = _np.array([e[0] for e in entries])
        caps = _np.array([ecap[c] for c in cids])
        prev_v = _np.empty(m)
        prev_v[0] = vnow[g]
        _np.maximum(d_arr[:-1], vnow[g], out=prev_v[1:])
        deltas = _np.maximum(d_arr - prev_v, 0.0)
        counts = nlvl[g] - _np.arange(m)
        levels = (capacity - capsum[g]) / counts
        levels[0] = level[g]
        finishes = now + _np.cumsum(deltas / levels)
        # Streams beyond the first whose cap meets the risen level
        # must go back through ``rebalance`` (promotion).
        cut = m
        if m > 1:
            sufmin = _np.minimum.accumulate(caps[::-1])[::-1]
            bad = _np.nonzero(sufmin[1:] <= levels[1:])[0]
            if bad.size:
                cut = int(bad[0]) + 1
        # No epoch bump on completion: ``cls`` going 0 already stales
        # every heap entry, and the next begin bumps the epoch anyway.
        # Local rebinds: this loop touches 100k elements on the fan-out
        # shape, and LOAD_FAST beats a cell deref per access.
        fin = finishes[:cut].tolist()
        cls_l, idx_l, strt_l = cls, idx, strt
        lastfin_l, qkey_l, tim, make = lastfin, qkey, timings, TransferTiming
        for cid, f in zip(cids, fin):
            cls_l[cid] = 0
            i = idx_l[cid]
            tim[qkey_l[cid][i]] = make(strt_l[cid], f)
            lastfin_l[cid] = f
            idx_l[cid] = i + 1
        remaining -= cut
        last = float(finishes[cut - 1])
        if last > now:
            now = last
        top_v = float(d_arr[cut - 1])
        if top_v > vnow[g]:
            vnow[g] = top_v
        nlvl[g] -= cut
        tot_nlvl -= cut
        if nlvl[g] == 0:
            level[g] = math.inf
            return
        survivors = entries[cut:]
        lvl_heaps[g][:] = survivors
        lvlmin_heaps[g][:] = sorted(
            (ecap[e[1] >> _EPOCH_BITS], e[1]) for e in survivors)
        level[g] = (capacity - capsum[g]) / nlvl[g]
        rebalance(g)

    def drain_setups_numpy():
        """Vectorized begin wave (``REPRO_SOLVER=numpy``).

        In the saturated regime (no capped streams) a fleet fan-out
        presents a long run of setup-end events before any stream
        completes, and every begin takes the saturated fast path —
        a pure arithmetic recurrence (level falls as ``C / nlvl``,
        virtual time integrates the level, each stream's virtual
        deadline is fixed at its begin instant).  Compute the run in
        closed form, stopping at the first setup where the fast path
        would not fire or a completion would interleave; the event
        loop resumes there.  Returns the number of setups consumed.
        Single-group only (the caller gates on ``ngroups == 1``), so
        every index below is group 0.
        """
        nonlocal now, blockers, tot_nlvl
        capacity = caps_g[0]
        lvl_heap = lvl_heaps[0]
        lvlmin_heap = lvlmin_heaps[0]
        ends = sorted(setup_heap)
        total = len(ends)
        cids = [entry[1] >> _EPOCH_BITS for entry in ends]
        t_arr = _np.array([entry[0] for entry in ends])
        sizes = _np.array([qsize[c][idx[c]] for c in cids],
                          dtype=_np.float64)
        caps = _np.array([qcap[c][idx[c]] for c in cids])
        counts = nlvl[0] + _np.arange(total)     # nlvl at begin i
        share = (capacity - (capsum[0] + caps)) / counts
        # level on the interval ending at begin i (after i demotes)
        lvls = _np.empty(total)
        lvls[0] = level[0]
        lvls[1:] = (capacity - capsum[0]) / counts[1:]
        gaps = _np.empty(total)
        gaps[0] = t_arr[0] - now
        _np.subtract(t_arr[1:], t_arr[:-1], out=gaps[1:])
        v_arr = vnow[0] + _np.cumsum(_np.maximum(gaps, 0.0) * lvls)
        deadlines = v_arr + (sizes / caps) * caps
        # Fast-path validity: the begin demotes itself and promotes
        # nothing — its cap and every level-bound cap exceed the
        # post-entry share.
        top = peek(lvlmin_heap, 2)
        prev_cap_min = top[0] if top is not None else math.inf
        lvl_cap_min = _np.empty(total)
        lvl_cap_min[0] = prev_cap_min
        if total > 1:
            _np.minimum(_np.minimum.accumulate(caps)[:-1], prev_cap_min,
                        out=lvl_cap_min[1:])
        ok = (sizes > 0.0) & (caps > share) & (lvl_cap_min > share)
        # Completion interleave: after begin i the earliest virtual
        # deadline must not complete before setup i+1 ends.
        top = peek(lvl_heap, 2)
        dmin = _np.minimum.accumulate(deadlines)
        if top is not None:
            dmin = _np.minimum(dmin, top[0])
        t_comp = t_arr + _np.maximum(dmin - v_arr, 0.0) \
            * (counts + 1) / (capacity - capsum[0])
        ok[1:] &= t_comp[:-1] >= t_arr[1:]
        bad = _np.nonzero(~ok)[0]
        consumed = int(bad[0]) if bad.size else total
        if consumed == 0:
            return 0
        cls_l, agrp_l, ecap_l, dat_l = cls, agrp, ecap, dat
        epo_l, idx_l, qlen_l = epo, idx, qlen
        lvl_append = lvl_heap.append
        lvlmin_append = lvlmin_heap.append
        for cid, cap, deadline in zip(cids, caps[:consumed].tolist(),
                                      deadlines[:consumed].tolist()):
            cls_l[cid] = 2
            agrp_l[cid] = 0
            ecap_l[cid] = cap
            dat_l[cid] = deadline
            e = epo_l[cid] + 1
            epo_l[cid] = e
            pack = cid << _EPOCH_BITS | e
            lvl_append((deadline, pack))
            lvlmin_append((cap, pack))
            if idx_l[cid] + 1 < qlen_l[cid]:
                blockers += 1
        heapq.heapify(lvl_heap)
        heapq.heapify(lvlmin_heap)
        if consumed == total:
            del setup_heap[:]
        else:
            setup_heap[:] = ends[consumed:]  # sorted list is a heap
        nlvl[0] += consumed
        tot_nlvl += consumed
        now = float(t_arr[consumed - 1])
        last_v = float(v_arr[consumed - 1])
        if last_v > vnow[0]:
            vnow[0] = last_v
        rebalance(0)
        return consumed

    while True:
        # ``remaining`` counts enqueued-not-completed items exactly;
        # once all are done, skip draining the (now all-stale) lazy
        # heaps.
        if remaining == 0:
            break
        if until is None and tot_ncap == 0 and tot_nlvl > 1 \
                and blockers == 0 and not setup_heap:
            # Batched tail drain: only when a single group holds every
            # live stream (otherwise jumping real time would need the
            # other groups' virtual clocks advanced in lockstep).
            g = -1
            for gg in range(ngroups):
                if nlvl[gg]:
                    if g >= 0:
                        g = -1
                        break
                    g = gg
            if g >= 0 and caps_g[g] is not None:
                drain_tail(g)
                continue
        # Next event: a setup ending, a capped stream draining, or the
        # earliest virtual deadline among level-bound streams (checked
        # per link group; group order breaks exact ties).
        best_when = best_kind = best_cid = None
        if setup_heap:
            when, pack = setup_heap[0]
            best_when, best_kind, best_cid = \
                when, 0, pack >> _EPOCH_BITS
        for g in range(ngroups):
            top = peek(cap_heaps[g], 1)
            if top is not None and (best_when is None
                                    or top[0] < best_when):
                best_when, best_kind, best_cid = top[0], 1, top[1]
            top = peek(lvl_heaps[g], 2)
            if top is not None:
                delta = top[0] - vnow[g]
                when = now + (delta if delta > 0.0 else 0.0) / level[g]
                if best_when is None or when < best_when:
                    best_when, best_kind, best_cid = when, 2, top[1]
        if best_when is None:
            break
        if until is not None and best_when > until:
            break  # suspend: the caller resumes past this frontier
        if best_kind == 0 and use_numpy and ngroups == 1 \
                and caps_g[0] is not None and ncap[0] == 0 \
                and nlvl[0] > 0 and len(setup_heap) >= 64:
            if drain_setups_numpy():
                continue
        if best_when < now:
            best_when = now
        if best_when > now:
            for g in range(ngroups):
                if nlvl[g]:
                    vnow[g] += level[g] * (best_when - now)
        now = best_when
        if best_kind == 0:
            heapq.heappop(setup_heap)
            begin_transfer(best_cid)
        else:
            complete_stream(best_cid)

    st.now = now
    st.tot_ncap = tot_ncap
    st.tot_nlvl = tot_nlvl
    st.blockers = blockers
    st.remaining = remaining
    return timings


class ParallelTransferSchedule:
    """Fluid-flow accounting for concurrent downloads over serial channels.

    Each channel (one mirror connection / one fleet client) processes its
    queue in order; all payload phases active at the same instant share
    ``downlink_bandwidth`` max-min fairly, and each stream is additionally
    capped by its peer's bandwidth and by its channel's capacity layer
    (:meth:`limit_channel`), if set.

    :meth:`solve` runs the incremental event simulation (see the module
    docstring) and returns per-item :class:`TransferTiming` offsets; it
    does not advance any clock, so the caller decides how the makespan
    maps onto simulated time.  :meth:`solve_reference` is the dense PR 2
    solver, kept for differential testing.  :meth:`stream` switches the
    schedule into streaming mode (see :class:`ScheduleStream`): enqueues
    feed the persistent core directly, nothing is materialized in the
    queue mirror, and ``solve()`` answers from a clone of the live core.
    """

    def __init__(self, downlink_bandwidth: float | None = None,
                 channel_capacities: dict | None = None):
        if downlink_bandwidth is not None and downlink_bandwidth <= 0:
            raise ValueError("downlink bandwidth must be positive")
        self._downlink = downlink_bandwidth
        #: Per-link-group shared capacity; group 0 is the default link.
        self._link_caps: list[float | None] = [downlink_bandwidth]
        #: Secondary link name -> group index (see :meth:`add_link`).
        self._links: dict[object, int] = {}
        self._queues: dict[object, list[_StreamItem]] = {}
        #: Column mirror of ``_queues`` — (keys, setups, sizes, bandwidths,
        #: groups) per channel — so :meth:`_solve` flattens by reference
        #: instead of walking 100k item objects attribute by attribute.
        self._cols: dict[object, tuple[list, list, list, list, list]] = {}
        self._channel_caps: dict[object, float] = {}
        #: Bumped on any mutation; lets an unchanged re-solve return the
        #: cached timings (the refresh engine re-solves between waves).
        self._version = 0
        self._solved: tuple[tuple[int, float], dict] | None = None
        self._stream: ScheduleStream | None = None
        for channel, cap in (channel_capacities or {}).items():
            self.limit_channel(channel, cap)

    @property
    def streaming(self) -> bool:
        """Whether a :class:`ScheduleStream` owns this schedule's items."""
        return self._stream is not None

    @property
    def stream_handle(self) -> "ScheduleStream | None":
        return self._stream

    def stream(self, start_time: float = 0.0) -> "ScheduleStream":
        """Switch this (still empty) schedule into streaming mode."""
        if self._stream is not None:
            raise RuntimeError("schedule is already streaming")
        if any(cols[0] for cols in self._cols.values()):
            raise RuntimeError("stream() requires an empty schedule")
        self._stream = ScheduleStream(self, start_time)
        return self._stream

    def add_link(self, link: object, capacity: float | None):
        """Declare a secondary shared link with its own capacity pool.

        The default link (group 0) is ``downlink_bandwidth`` — the
        client-side pipe every enqueue shares unless it names a link.
        A secondary link models an independent physical pipe — an edge
        replica's serving uplink — whose payload phases water-fill
        *that* capacity instead, while the channel queues stay global
        (one client's fetches still serialize across links).
        Idempotent at the same capacity; declared links cannot be
        re-declared at a different capacity, and a streaming schedule's
        link set is frozen when :meth:`stream` is called.
        """
        if capacity is not None and capacity <= 0:
            raise ValueError("link capacity must be positive")
        group = self._links.get(link)
        if group is not None:
            if self._link_caps[group] != capacity:
                raise ValueError(
                    f"link {link!r} already declared at capacity "
                    f"{self._link_caps[group]}, not {capacity}"
                )
            return
        if self._stream is not None:
            raise RuntimeError(
                "a streaming schedule's link set is frozen at stream() "
                "time; declare links before streaming"
            )
        self._links[link] = len(self._link_caps)
        self._link_caps.append(capacity)
        self._version += 1

    def has_link(self, link: object) -> bool:
        """Whether ``link`` was declared with :meth:`add_link`."""
        return link in self._links

    def limit_channel(self, channel: object, bandwidth: float):
        """Cap every payload phase on ``channel`` at ``bandwidth``.

        The layered-capacity hook: a fleet client's NIC downlink bounds
        its stream no matter how much of the shared link is free.  In
        streaming mode the cap is frozen into each item at enqueue time,
        so changing a channel's cap once items were enqueued is rejected
        (the materialized path would apply the latest cap retroactively —
        a divergence the streaming contract rules out; no caller re-caps
        a channel at a different rate).
        """
        if bandwidth <= 0:
            raise ValueError("channel capacity must be positive")
        if (self._stream is not None
                and self._channel_caps.get(channel, bandwidth) != bandwidth):
            raise ValueError(
                "streaming schedules cannot change a channel's capacity "
                f"({channel!r}: {self._channel_caps[channel]} -> {bandwidth})"
            )
        self._channel_caps[channel] = bandwidth
        self._version += 1

    def enqueue(self, channel: object, key: object, setup: float,
                size_bytes: int, bandwidth: float, link: object = None):
        if setup < 0 or size_bytes < 0:
            raise ValueError("negative transfer parameters")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if link is None:
            group = 0
        else:
            group = self._links.get(link)
            if group is None:
                raise ValueError(f"unknown link {link!r}; add_link it first")
        if self._stream is not None:
            self._stream._enqueue(channel, key, setup, size_bytes,
                                  float(bandwidth), group)
            self._version += 1
            return
        self._queues.setdefault(channel, []).append(
            _StreamItem(key=key, setup=setup, size_bytes=size_bytes,
                        bandwidth=bandwidth, group=group)
        )
        cols = self._cols.get(channel)
        if cols is None:
            cols = self._cols[channel] = ([], [], [], [], [])
        cols[0].append(key)
        cols[1].append(setup)
        cols[2].append(size_bytes)
        cols[3].append(float(bandwidth))
        cols[4].append(group)
        self._version += 1

    def _effective_cap(self, channel: object, bandwidth: float) -> float:
        limit = self._channel_caps.get(channel)
        return bandwidth if limit is None else min(bandwidth, limit)

    # -- incremental solver --------------------------------------------------

    def solve(self, start_time: float = 0.0) -> dict[object, TransferTiming]:
        stamp = (self._version, start_time)
        if self._solved is not None and self._solved[0] == stamp:
            return dict(self._solved[1])
        if self._stream is not None:
            if start_time != self._stream.start_time:
                raise ValueError(
                    "a streaming schedule solves at its stream's start "
                    f"time ({self._stream.start_time}), not {start_time}"
                )
            timings = self._stream.solve_pending()
        else:
            timings = self._solve(start_time)
        self._solved = (stamp, timings)
        return dict(timings)

    def _solve(self, start_time: float) -> dict[object, TransferTiming]:
        use_numpy = _np is not None \
            and os.environ.get("REPRO_SOLVER") == "numpy"
        st = _EngineState(list(self._link_caps), start_time, use_numpy)

        # Flatten channels to dense ids (insertion order — the same
        # tie-break the dict-keyed solver used) and queues to parallel
        # lists: per-event state access is a list index, never a hash or
        # comparison of an arbitrary channel object.
        limits = self._channel_caps
        for channel, cols in self._cols.items():
            keys = cols[0]
            if not keys:
                continue
            st.chans.append(channel)
            st.qkey.append(keys)
            st.qsetup.append(cols[1])
            st.qsize.append(cols[2])
            limit = limits.get(channel)
            if limit is None:
                st.qcap.append(cols[3])
            else:
                st.qcap.append([bw if bw <= limit else float(limit)
                                for bw in cols[3]])
            st.qgrp.append(cols[4])
        n = len(st.chans)
        st.qlen = [len(keys) for keys in st.qkey]
        st.remaining = sum(st.qlen)
        st.idx = [0] * n
        st.strt = [start_time] * n
        st.cls = [0] * n
        st.ecap = [0.0] * n
        st.dat = [0.0] * n
        st.epo = [0] * n
        st.lastfin = [start_time] * n
        st.agrp = [0] * n
        # One heapify beats n heappushes; pop order is identical either
        # way (packs are unique, so the tuple order is total).
        st.setup_heap = [(start_time + st.qsetup[cid][0],
                          cid << _EPOCH_BITS) for cid in range(n)]
        heapq.heapify(st.setup_heap)
        return _run_engine(st, None)

    # -- reference solver (PR 2), for differential testing -------------------

    def solve_reference(self, start_time: float = 0.0,
                        ) -> dict[object, TransferTiming]:
        """Dense per-event recomputation: every active stream's rate is
        rebuilt (with a sort) at every event.  O(events × channels log
        channels) — kept only to differentially validate :meth:`solve`,
        which must agree with it to float tolerance."""
        if self._stream is not None:
            raise RuntimeError(
                "solve_reference needs the materialized queue mirror, "
                "which streaming mode never builds"
            )
        timings: dict[object, TransferTiming] = {}
        # Per-channel cursor state: (queue index, phase, phase datum).
        # phase "setup" -> datum is the absolute end of the setup phase;
        # phase "transfer" -> datum is the remaining payload bytes.
        state: dict[object, list] = {}
        started: dict[object, float] = {}
        for channel, queue in self._queues.items():
            if queue:
                state[channel] = [0, "setup", start_time + queue[0].setup]
                started[(channel, 0)] = start_time
        now = start_time
        while state:
            # One max-min pool per link group: a stream only contends
            # with streams on its own link.
            active_by_group: list[dict] = [{} for _ in self._link_caps]
            for channel, cursor in state.items():
                if cursor[1] == "transfer":
                    item = self._queues[channel][cursor[0]]
                    active_by_group[item.group][channel] = \
                        self._effective_cap(channel, item.bandwidth)
            rates: dict = {}
            for g, active in enumerate(active_by_group):
                if active:
                    rates.update(max_min_rates(active, self._link_caps[g]))
            horizons: dict[object, float] = {}
            for channel, cursor in state.items():
                if cursor[1] == "setup":
                    horizons[channel] = cursor[2]
                else:
                    rate = rates[channel]
                    horizons[channel] = (now + cursor[2] / rate if rate > 0
                                         else float("inf"))
            step_end = min(horizons.values())
            for channel, cursor in list(state.items()):
                if cursor[1] == "transfer":
                    if horizons[channel] <= step_end:
                        # This stream defines the event: complete it by
                        # identity, not subtraction — at large clock
                        # values the per-step drain can round to zero and
                        # leave a sub-epsilon residue that never clears.
                        cursor[2] = 0.0
                    else:
                        cursor[2] -= rates[channel] * (step_end - now)
            now = step_end
            for channel, cursor in list(state.items()):
                index, phase, datum = cursor
                item = self._queues[channel][index]
                if phase == "setup" and datum <= now + 1e-15:
                    state[channel] = [index, "transfer", float(item.size_bytes)]
                elif phase == "transfer" and datum <= 1e-9:
                    timings[item.key] = TransferTiming(
                        start=started[(channel, index)], finish=now
                    )
                    if index + 1 < len(self._queues[channel]):
                        nxt = self._queues[channel][index + 1]
                        state[channel] = [index + 1, "setup", now + nxt.setup]
                        started[(channel, index + 1)] = now
                    else:
                        del state[channel]
        return timings


class ScheduleStream:
    """A persistent solver core with frontier advancement and retirement.

    The streaming contract (everything else follows from the solver's
    monotonicity):

    * the driver advances the frontier only *between* trace events, to
      the current event's instant — :meth:`advance_to`;
    * every enqueue issued while processing an event at time T begins
      its payload at or after T (wave pins, ``not_before`` gaps, and
      fresh channels' setup offsets all guarantee this — a violation
      raises at enqueue time);

    so a completion at or before the frontier can never be perturbed by
    later load: its timing is **final**.  ``advance_to`` settles those
    completions (collect them with :meth:`drain`), reclaims consumed
    queue prefixes, and retires fully drained channels — their dense
    slot returns to a free list and only one float (the channel's last
    finish, the anchor a later revival chains its setup off) survives in
    :attr:`finished`.  Mid-plan ``solve()`` clones the live core and runs
    the clone to exhaustion; because the clone's state at the frontier
    equals a from-scratch solve's state there, mid-plan timings match the
    materialized path exactly while costing O(active streams).
    """

    #: Settle-before-frontier slack for float round-off in wave-gap
    #: arithmetic (``free + (at - free)`` may undershoot ``at`` by ulps).
    _SLACK = 1e-9

    def __init__(self, schedule: ParallelTransferSchedule,
                 start_time: float = 0.0):
        use_numpy = _np is not None \
            and os.environ.get("REPRO_SOLVER") == "numpy"
        self._schedule = schedule
        self._st = _EngineState(list(schedule._link_caps), start_time,
                                use_numpy)
        self._cid_of: dict[object, int] = {}
        self._free_cids: list[int] = []
        #: Retired channels' last completion instant (revival anchor and
        #: the post-retirement answer of :meth:`channel_free`).
        self.finished: dict[object, float] = {}
        self._settled: dict[object, TransferTiming] = {}
        self._frontier = start_time
        #: Largest settled finish so far (the plan-wall running max).
        self.max_finish = start_time
        #: Lifetime counters (bench/test introspection).
        self.total_enqueued = 0
        self.total_settled = 0

    @property
    def start_time(self) -> float:
        return self._st.start_time

    @property
    def frontier(self) -> float:
        return self._frontier

    @property
    def pending_items(self) -> int:
        """Enqueued-not-yet-completed items in the live core."""
        return self._st.remaining

    @property
    def live_channels(self) -> int:
        return len(self._cid_of)

    def _register(self, channel: object) -> int:
        st = self._st
        resume_at = self.finished.pop(channel, st.start_time)
        if self._free_cids:
            cid = self._free_cids.pop()
            st.chans[cid] = channel
            st.idx[cid] = 0
            st.qlen[cid] = 0
            # ``epo`` is deliberately NOT reset: stale heap entries from
            # the slot's previous tenant must never match a fresh epoch.
        else:
            cid = len(st.chans)
            st.chans.append(channel)
            st.qkey.append([])
            st.qsetup.append([])
            st.qsize.append([])
            st.qcap.append([])
            st.qgrp.append([])
            st.qlen.append(0)
            st.idx.append(0)
            st.strt.append(0.0)
            st.cls.append(0)
            st.ecap.append(0.0)
            st.dat.append(0.0)
            st.epo.append(0)
            st.lastfin.append(0.0)
            st.agrp.append(0)
        st.strt[cid] = resume_at
        st.lastfin[cid] = resume_at
        st.cls[cid] = 0
        st.ecap[cid] = 0.0
        st.dat[cid] = 0.0
        self._cid_of[channel] = cid
        return cid

    def _enqueue(self, channel: object, key: object, setup: float,
                 size_bytes: int, bandwidth: float, group: int = 0):
        st = self._st
        cid = self._cid_of.get(channel)
        if cid is None:
            cid = self._register(channel)
        limit = self._schedule._channel_caps.get(channel)
        cap = bandwidth if limit is None or bandwidth <= limit \
            else float(limit)
        i = st.idx[cid]
        n = st.qlen[cid]
        if st.cls[cid] == 0 and i == n:
            # Idle (or brand-new) channel: chain the setup phase off the
            # last completion, exactly where a from-scratch solve of the
            # full history would have started it.
            base = st.lastfin[cid]
            end = base + setup
            if end < self._frontier - self._SLACK:
                raise ValueError(
                    "streaming contract violation: enqueue on "
                    f"{channel!r} would begin its payload at {end} — "
                    f"before the settled frontier {self._frontier}"
                )
            st.strt[cid] = base
            heapq.heappush(st.setup_heap, (end, cid << _EPOCH_BITS))
        elif st.cls[cid] != 0 and n == i + 1:
            # The channel's active payload had no queued successor when
            # it began, so its begin never counted a blocker; this append
            # retro-counts it (the completion will decrement it).
            st.blockers += 1
        st.qkey[cid].append(key)
        st.qsetup[cid].append(setup)
        st.qsize[cid].append(size_bytes)
        st.qcap[cid].append(cap)
        st.qgrp[cid].append(group)
        st.qlen[cid] += 1
        st.remaining += 1
        self.total_enqueued += 1

    def advance_to(self, at: float) -> dict[object, TransferTiming]:
        """Process every event at or before ``at``; settle and retire.

        Returns the completions settled by this advance (also merged
        into the undrained buffer until :meth:`drain` collects them).
        """
        if at < self._frontier:
            raise ValueError(
                f"streaming frontier must not move backwards: {at} < "
                f"{self._frontier}"
            )
        self._frontier = at
        st = self._st
        _run_engine(st, at)
        self._schedule._version += 1
        fresh = st.timings
        if fresh:
            st.timings = {}
            max_finish = self.max_finish
            for timing in fresh.values():
                if timing.finish > max_finish:
                    max_finish = timing.finish
            self.max_finish = max_finish
            self.total_settled += len(fresh)
            self._settled.update(fresh)
        # Reclaim consumed queue prefixes; retire fully drained channels.
        for channel, cid in list(self._cid_of.items()):
            i = st.idx[cid]
            if st.cls[cid] == 0 and i == st.qlen[cid]:
                self.finished[channel] = st.lastfin[cid]
                del self._cid_of[channel]
                st.chans[cid] = None
                st.qkey[cid].clear()
                st.qsetup[cid].clear()
                st.qsize[cid].clear()
                st.qcap[cid].clear()
                st.qgrp[cid].clear()
                st.qlen[cid] = 0
                st.idx[cid] = 0
                self._free_cids.append(cid)
            elif i:
                del st.qkey[cid][:i]
                del st.qsetup[cid][:i]
                del st.qsize[cid][:i]
                del st.qcap[cid][:i]
                del st.qgrp[cid][:i]
                st.qlen[cid] -= i
                st.idx[cid] = 0
        self._compact_heaps()
        return fresh

    def _compact_heaps(self):
        """Drop stale lazy-heap entries once they dominate the heap.

        Pop order over distinct (value, pack) tuples is their sorted
        order whatever the internal arrangement, so filtering + heapify
        preserves behaviour exactly.
        """
        st = self._st
        live = st.tot_ncap + st.tot_nlvl + len(st.setup_heap)
        bound = 4 * live + 64
        cls = st.cls
        epo = st.epo
        for heaps, code in ((st.cap_heaps, 1), (st.lvl_heaps, 2),
                            (st.capmax_heaps, 1), (st.lvlmin_heaps, 2)):
            for heap in heaps:
                if len(heap) > bound:
                    heap[:] = [
                        entry for entry in heap
                        if cls[entry[1] >> _EPOCH_BITS] == code
                        and epo[entry[1] >> _EPOCH_BITS]
                        == entry[1] & _EPOCH_MASK
                    ]
                    heapq.heapify(heap)

    def drain(self) -> dict[object, TransferTiming]:
        """Take (and forget) every settled-but-undrained completion.

        After a drain the stream no longer knows these items existed:
        mid-plan ``solve()`` results stop including them, so callers must
        fold whatever they need (metrics, wave records, per-channel
        bookkeeping) before or at drain time.
        """
        out = self._settled
        self._settled = {}
        return out

    def channel_free(self, channel: object) -> float | None:
        """When this channel's enqueued work is done.

        ``inf`` while the channel is live (its in-flight work finishes
        after the frontier — any finite mid-plan estimate would also land
        there, so wave-gap arithmetic ``max(0, at - free)`` is identical);
        the exact last finish once retired; ``None`` if never seen.
        """
        if channel in self._cid_of:
            return math.inf
        return self.finished.get(channel)

    def forget_channel(self, channel: object):
        """Drop a retired channel's last-finish anchor entirely.

        Only for channels that will never be enqueued again (a retired
        fleet client): a later revival would chain off the stream start
        instead of the true last finish.
        """
        if channel in self._cid_of:
            raise ValueError(f"channel {channel!r} is still live")
        self.finished.pop(channel, None)

    def solve_pending(self) -> dict[object, TransferTiming]:
        """Timings of everything not yet drained, as a from-scratch
        ``solve()`` over the full history would report them.

        Clones the live core (O(active state)) and runs the clone to
        exhaustion; merges the settled-but-undrained buffer.
        """
        clone = self._st.clone()
        _run_engine(clone, None)
        result = dict(self._settled)
        result.update(clone.timings)
        return result

    def stats(self) -> dict:
        """Live-core footprint counters (bench/test introspection)."""
        st = self._st
        return {
            "live_channels": len(self._cid_of),
            "free_slots": len(self._free_cids),
            "pending_items": st.remaining,
            "queued_cells": sum(st.qlen),
            "settled_undrained": len(self._settled),
            "finished_anchors": len(self.finished),
            "heap_cells": (len(st.setup_heap)
                           + sum(len(h) for h in st.cap_heaps)
                           + sum(len(h) for h in st.lvl_heaps)
                           + sum(len(h) for h in st.capmax_heaps)
                           + sum(len(h) for h in st.lvlmin_heaps)),
            "total_enqueued": self.total_enqueued,
            "total_settled": self.total_settled,
        }
