"""Table 2 — operations performed by installation scripts.

Paper rows (main+community package counts):

    Filesystem changes 45 (safe), Empty scripts 22 (safe),
    Text processing 36 (safe), Configuration change 18 (unsafe, rejected),
    Empty file creation 1 (unsafe, sanitized),
    User/Group creation 201 (unsafe, sanitized),
    Shell activation 10 (unsafe, rejected).

We classify each generated package's scripts with the real classifier and
count packages per operation, then report which operations TSR makes safe.
"""

from collections import Counter

from repro.bench.report import PaperTable, record_table
from repro.scripts.classify import OperationType, classify_package_scripts

_PAPER_COUNTS = {
    OperationType.FILESYSTEM_CHANGE: 45,
    OperationType.EMPTY: 22,
    OperationType.TEXT_PROCESSING: 36,
    OperationType.CONFIG_CHANGE: 18,
    OperationType.EMPTY_FILE_CREATION: 1,
    OperationType.USER_GROUP_CREATION: 201,
    OperationType.SHELL_ACTIVATION: 10,
}


def _count_operations(packages):
    counts = Counter()
    for package in packages:
        if not package.scripts:
            continue
        profile = classify_package_scripts(package.scripts)
        for operation in profile.operations:
            counts[operation] += 1
    return counts


def test_table2_operations(census_workload, benchmark):
    counts = benchmark.pedantic(
        _count_operations, args=(census_workload.packages,),
        rounds=1, iterations=1,
    )
    scale = census_workload.scale
    table = PaperTable(
        experiment="Table 2",
        title="Operations executed in scripts (packages per operation)",
        columns=["operation", "paper n", f"expected @x{scale}", "measured",
                 "safe", "safe after TSR"],
    )
    for operation, paper_n in _PAPER_COUNTS.items():
        table.add_row(
            operation.label,
            paper_n,
            max(1, round(paper_n * scale)),
            counts.get(operation, 0),
            "yes" if operation.safe else "NO",
            "yes" if (operation.safe or operation.sanitizable) else "NO",
        )
    record_table(table)

    # Shape: user/group creation dominates unsafe operations (paper: 201 of
    # 230 operation rows), and the safe-after-TSR column flips exactly the
    # empty-file and user/group rows.
    assert counts[OperationType.USER_GROUP_CREATION] > (
        counts[OperationType.CONFIG_CHANGE]
        + counts[OperationType.SHELL_ACTIVATION]
    )
    for operation, paper_n in _PAPER_COUNTS.items():
        assert counts.get(operation, 0) >= 1, operation
