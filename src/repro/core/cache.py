"""TSR's on-disk package cache (paper section 5.5).

The cache lives on the *untrusted* local disk of the machine hosting TSR:
an adversary with root can read, replace, or roll back its contents at
will.  TSR therefore treats cache reads as untrusted input — before serving
a cached sanitized package, the enclave re-checks its hash against the
in-enclave sanitized index (see :mod:`repro.core.program`).

Both the original upstream blob and the sanitized blob are cached: the
former avoids re-downloading on re-sanitization, the latter turns a
download request into a disk read (Fig. 10's 129x).

Sharding: package blobs are spread over ``shards`` independent stores
(hash of ``repo_id/name``), so the pipelined refresh engine can account
concurrent reads and writes on different shards as overlapping — a lookup
no longer serializes behind an insert hitting another shard.  Shard 0's
filesystem doubles as the root ``disk`` holding non-package state (the
sealed freshness file), which keeps the single-disk layout of the paper's
deployment observable to tests.

Content-addressed store: alongside the per-repo named entries, blobs can
be stored under their SHA-256 (``put_content``/``get_content``).  This is
the dedupe substrate of the multi-tenant orchestrator
(:mod:`repro.core.orchestrator`): two tenant repositories whose quorum
indexes pin the same upstream blob resolve to one cached copy, so the
shared package is downloaded (and its bytes stored) once per TSR instead
of once per tenant.  Content entries shard by the blob hash.

Eviction: each shard optionally carries a byte budget
(``shard_budget_bytes``).  Inserts that push a shard over its budget evict
blobs until the shard fits again; the just-written blob itself is never
evicted, so a single oversized blob degrades the budget gracefully instead
of thrashing.  Only blobs the cache manages are eviction candidates —
non-package state on the root disk (e.g. the sealed freshness file) is
written directly via ``disk`` and never tracked.  Evictions are counted
per shard (:class:`ShardStats`), and the identities of evicted entries are
remembered so a later re-download caused by eviction can be surfaced in
refresh accounting (``RefreshReport.evicted_redownloads``):
``original_was_evicted`` / ``content_was_evicted`` pop the marker, so
each eviction is attributed at most once.

Eviction policy: the default, ``policy="lru2"``, is a scan-resistant
LRU-2 (segmented LRU): a blob enters a per-shard *probation* queue on
first insert and is promoted to the *protected* queue on its second touch
(a read, or a re-write).  Victims come from the probation tail first, so
one tenant's long exclusive tail — touched exactly once during its own
refresh — cycles through probation without displacing the cross-tenant
content core, whose blobs every later refresh re-reads (and thereby
protects).  When probation is empty, the protected tail is evicted.
``policy="lru"`` keeps the plain single-queue LRU (reads and writes both
refresh recency) for comparison — the replay bench measures both
(EXPERIMENTS.md §7).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.hashes import sha256_bytes, sha256_hex  # noqa: F401
from repro.osim.fs import SimFileSystem
from repro.util.errors import FileSystemError

ORIGINAL_PREFIX = "/var/cache/tsr/original"
SANITIZED_PREFIX = "/var/cache/tsr/sanitized"
CONTENT_PREFIX = "/var/cache/tsr/content"
CHUNK_PREFIX = "/var/cache/tsr/chunks"

DEFAULT_SHARDS = 8


EVICTION_POLICIES = ("lru2", "lru")


@dataclass
class ShardStats:
    """Per-shard operation counters (reads include misses)."""

    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    #: Probation -> protected promotions (LRU-2 policy only).
    promotions: int = 0


class PackageCache:
    """Name- and content-addressed blob store over the untrusted host fs."""

    def __init__(self, disk: SimFileSystem | None = None,
                 shards: int = DEFAULT_SHARDS,
                 shard_budget_bytes: int | None = None,
                 policy: str = "lru2"):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1: {shards}")
        if shard_budget_bytes is not None and shard_budget_bytes <= 0:
            raise ValueError(
                f"shard budget must be positive: {shard_budget_bytes}"
            )
        if policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {policy!r} "
                f"(expected one of {EVICTION_POLICIES})"
            )
        self.disk = disk or SimFileSystem()
        self.policy = policy
        self._shards: list[SimFileSystem] = [self.disk]
        self._shards.extend(SimFileSystem() for _ in range(shards - 1))
        self._stats = [ShardStats() for _ in range(shards)]
        self._budget = shard_budget_bytes
        #: Per-shard recency queues of managed blobs: path -> size, oldest
        #: first.  Under "lru" only ``_probation`` is used (one plain LRU
        #: queue); under "lru2" a second touch moves a blob from
        #: ``_probation`` into ``_protected``.
        self._probation: list[OrderedDict[str, int]] = [
            OrderedDict() for _ in range(shards)
        ]
        self._protected: list[OrderedDict[str, int]] = [
            OrderedDict() for _ in range(shards)
        ]
        self._used = [0] * shards
        #: Paths evicted and not yet re-queried (re-download attribution).
        self._evicted_paths: set[str] = set()
        #: Chunk-manifest traffic (kept out of :class:`ShardStats` — the
        #: shard counters feed the eviction experiments, and manifests
        #: are untracked metadata, not blob traffic).
        self.manifest_writes = 0
        self.manifest_hits = 0
        self.manifest_misses = 0

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shard_budget_bytes(self) -> int | None:
        return self._budget

    def shard_index(self, repo_id: str, name: str) -> int:
        """Stable shard assignment for one package's blobs."""
        digest = sha256_bytes(f"{repo_id}/{name}".encode())
        return int.from_bytes(digest[:4], "big") % len(self._shards)

    def content_shard_index(self, sha256: str) -> int:
        """Stable shard assignment for one content-addressed blob."""
        return int(sha256[:8], 16) % len(self._shards)

    def shard_stats(self) -> list[ShardStats]:
        return list(self._stats)

    def _shard(self, repo_id: str, name: str) -> tuple[SimFileSystem, ShardStats]:
        index = self.shard_index(repo_id, name)
        return self._shards[index], self._stats[index]

    @staticmethod
    def _path(prefix: str, repo_id: str, name: str) -> str:
        return f"{prefix}/{repo_id}/{name}.apk"

    @staticmethod
    def _content_path(sha256: str) -> str:
        return f"{CONTENT_PREFIX}/{sha256}.blob"

    # -- recency bookkeeping (LRU / LRU-2) -----------------------------------

    def _track(self, shard_index: int, path: str, size: int):
        """Record a managed write and evict blobs past the budget.

        Under LRU-2 a first write lands in probation; a re-write of a
        tracked blob counts as its second touch and promotes it.
        """
        probation = self._probation[shard_index]
        protected = self._protected[shard_index]
        previous = probation.get(path, protected.get(path, 0))
        self._used[shard_index] += size - previous
        if path in protected:
            protected[path] = size
            protected.move_to_end(path)
        elif self.policy == "lru2" and path in probation:
            del probation[path]
            protected[path] = size
            self._stats[shard_index].promotions += 1
        else:
            probation[path] = size
            probation.move_to_end(path)
        self._evict(shard_index, keep=path)

    def _evict(self, shard_index: int, keep: str):
        """Sweep one shard down to its budget; never evicts ``keep``."""
        if self._budget is None:
            return
        shard = self._shards[shard_index]
        stats = self._stats[shard_index]
        probation = self._probation[shard_index]
        protected = self._protected[shard_index]
        while (self._used[shard_index] > self._budget
               and len(probation) + len(protected) > 1):
            # Probation tail first (scan resistance), then protected tail.
            victim = None
            for queue in (probation, protected):
                for candidate in queue:
                    if candidate != keep:
                        victim = (queue, candidate)
                        break
                    break  # ``keep`` is the queue's own LRU: try the other
                if victim is not None:
                    break
            if victim is None:
                # Only ``keep`` is left over budget: never self-evict.
                break
            queue, path = victim
            victim_size = queue.pop(path)
            self._used[shard_index] -= victim_size
            if shard.isfile(path):
                shard.remove(path)
            stats.evictions += 1
            stats.evicted_bytes += victim_size
            self._evicted_paths.add(path)

    def _touch(self, shard_index: int, path: str):
        probation = self._probation[shard_index]
        protected = self._protected[shard_index]
        if path in protected:
            protected.move_to_end(path)
        elif path in probation:
            if self.policy == "lru2":
                # Second touch: promote out of the probation queue.
                protected[path] = probation.pop(path)
                self._stats[shard_index].promotions += 1
            else:
                probation.move_to_end(path)

    def _untrack(self, shard_index: int, path: str):
        size = self._probation[shard_index].pop(path, None)
        if size is None:
            size = self._protected[shard_index].pop(path, None)
        if size is not None:
            self._used[shard_index] -= size
        self._evicted_paths.discard(path)

    def shard_used_bytes(self, shard_index: int) -> int:
        """Bytes of managed blobs currently held by one shard."""
        return self._used[shard_index]

    # -- eviction attribution ----------------------------------------------

    def original_was_evicted(self, repo_id: str, name: str) -> bool:
        """Was this original evicted since last asked?  Pops the marker."""
        return self._pop_evicted(self._path(ORIGINAL_PREFIX, repo_id, name))

    def sanitized_was_evicted(self, repo_id: str, name: str) -> bool:
        return self._pop_evicted(self._path(SANITIZED_PREFIX, repo_id, name))

    def content_was_evicted(self, sha256: str) -> bool:
        return self._pop_evicted(self._content_path(sha256))

    def _pop_evicted(self, path: str) -> bool:
        if path in self._evicted_paths:
            self._evicted_paths.discard(path)
            return True
        return False

    # -- originals ----------------------------------------------------------

    def put_original(self, repo_id: str, name: str, blob: bytes):
        index = self.shard_index(repo_id, name)
        self._stats[index].writes += 1
        path = self._path(ORIGINAL_PREFIX, repo_id, name)
        self._shards[index].write_file(path, blob)
        self._track(index, path, len(blob))

    def get_original(self, repo_id: str, name: str) -> bytes | None:
        return self._read(repo_id, name, ORIGINAL_PREFIX)

    def has_original(self, repo_id: str, name: str) -> bool:
        shard, _ = self._shard(repo_id, name)
        return shard.isfile(self._path(ORIGINAL_PREFIX, repo_id, name))

    # -- sanitized ------------------------------------------------------------

    def put_sanitized(self, repo_id: str, name: str, blob: bytes):
        index = self.shard_index(repo_id, name)
        self._stats[index].writes += 1
        path = self._path(SANITIZED_PREFIX, repo_id, name)
        self._shards[index].write_file(path, blob)
        self._track(index, path, len(blob))

    def get_sanitized(self, repo_id: str, name: str) -> bytes | None:
        return self._read(repo_id, name, SANITIZED_PREFIX)

    def peek_sanitized(self, repo_id: str, name: str) -> bytes | None:
        """Read a sanitized blob without refreshing recency or counters.

        A measurement tap for publication capture
        (:meth:`repro.core.service.TrustedSoftwareRepository.record_publication`):
        snapshotting the served state must not promote every blob into the
        protected queue, or eviction dynamics would no longer reflect the
        refresh/serving traffic the experiments study.
        """
        shard, _ = self._shard(repo_id, name)
        try:
            return shard.read_file(self._path(SANITIZED_PREFIX, repo_id, name))
        except FileSystemError:
            return None

    def has_sanitized(self, repo_id: str, name: str) -> bool:
        shard, _ = self._shard(repo_id, name)
        return shard.isfile(self._path(SANITIZED_PREFIX, repo_id, name))

    def invalidate(self, repo_id: str, name: str):
        index = self.shard_index(repo_id, name)
        shard = self._shards[index]
        for prefix in (ORIGINAL_PREFIX, SANITIZED_PREFIX):
            path = self._path(prefix, repo_id, name)
            if shard.isfile(path):
                shard.remove(path)
            self._untrack(index, path)

    # -- combined lookup ------------------------------------------------------

    def lookup_blob(self, repo_id: str, name: str,
                    expected: dict) -> tuple[bytes | None, str | None, bool]:
        """Resolve one quorum-pinned blob: named entry, then content store.

        ``expected`` is the quorum-validated ``{"sha256", "size"}`` entry;
        a cached blob only counts when it matches it (stale versions of an
        updated package never satisfy a lookup).  Returns ``(blob, source,
        evicted)``: ``source`` is ``"named"`` or ``"content"`` (None on a
        miss), and ``evicted`` is True when the miss is attributable to
        eviction (the markers are popped, so each eviction is counted at
        most once).  Time accounting is the caller's job — every refresh
        path charges the read against its own shard/clock model.
        """
        cached = self.get_original(repo_id, name)
        if cached is not None and self._matches(cached, expected):
            return cached, "named", False
        evicted = self.original_was_evicted(repo_id, name)
        sha = expected["sha256"]
        content = self.get_content(sha)
        if content is not None and self._matches(content, expected):
            return content, "content", False
        evicted = self.content_was_evicted(sha) or evicted
        return None, None, evicted

    @staticmethod
    def _matches(blob: bytes, expected: dict) -> bool:
        return len(blob) == expected["size"] \
            and sha256_hex(blob) == expected["sha256"]

    # -- content-addressed store ---------------------------------------------

    def put_content(self, blob: bytes, sha256: str | None = None) -> str:
        """Store a blob under its SHA-256; returns the hex digest."""
        digest = sha256 or sha256_hex(blob)
        index = self.content_shard_index(digest)
        self._stats[index].writes += 1
        path = self._content_path(digest)
        self._shards[index].write_file(path, blob)
        self._track(index, path, len(blob))
        return digest

    def get_content(self, sha256: str) -> bytes | None:
        index = self.content_shard_index(sha256)
        stats = self._stats[index]
        stats.reads += 1
        try:
            blob = self._shards[index].read_file(self._content_path(sha256))
        except FileSystemError:
            stats.misses += 1
            return None
        stats.hits += 1
        self._touch(index, self._content_path(sha256))
        return blob

    def has_content(self, sha256: str) -> bool:
        index = self.content_shard_index(sha256)
        return self._shards[index].isfile(self._content_path(sha256))

    # -- chunk manifests (delta-update retention) ----------------------------

    def put_chunk_manifest(self, sha256: str, manifest: bytes):
        """Retain a blob's chunk manifest, keyed by the blob's SHA-256.

        Manifests are what lets the TSR serve a chunk delta against a
        *prior* publication whose blob bytes may long be evicted: a
        manifest is a few hundred bytes of chunk ids, so retention is
        deliberately **outside** the byte-budget recency queues — keeping
        every base's manifest alive for the next round must not perturb
        the LRU/LRU-2 eviction dynamics the replay experiments measure
        (and a manifest is never worth evicting to fit one more blob).
        """
        index = self.content_shard_index(sha256)
        self._shards[index].write_file(self._manifest_path(sha256), manifest)
        self.manifest_writes += 1

    def get_chunk_manifest(self, sha256: str) -> bytes | None:
        index = self.content_shard_index(sha256)
        try:
            manifest = self._shards[index].read_file(
                self._manifest_path(sha256))
        except FileSystemError:
            self.manifest_misses += 1
            return None
        self.manifest_hits += 1
        return manifest

    def has_chunk_manifest(self, sha256: str) -> bool:
        index = self.content_shard_index(sha256)
        return self._shards[index].isfile(self._manifest_path(sha256))

    def drop_chunk_manifest(self, sha256: str):
        """Forget a manifest whose base publication was pruned
        (idempotent; clients based on it fall back to full pulls)."""
        index = self.content_shard_index(sha256)
        path = self._manifest_path(sha256)
        if self._shards[index].isfile(path):
            self._shards[index].remove(path)

    @staticmethod
    def _manifest_path(sha256: str) -> str:
        return f"{CHUNK_PREFIX}/{sha256}.manifest"

    # -- adversary surface -------------------------------------------------------

    def tamper_sanitized(self, repo_id: str, name: str, blob: bytes):
        """Root-adversary helper used by tests/benches: replace a cached
        sanitized package (e.g. with an outdated version) behind TSR's back."""
        shard, _ = self._shard(repo_id, name)
        shard.write_file(self._path(SANITIZED_PREFIX, repo_id, name), blob)

    def _read(self, repo_id: str, name: str, prefix: str) -> bytes | None:
        index = self.shard_index(repo_id, name)
        stats = self._stats[index]
        stats.reads += 1
        path = self._path(prefix, repo_id, name)
        try:
            blob = self._shards[index].read_file(path)
        except FileSystemError:
            stats.misses += 1
            return None
        stats.hits += 1
        self._touch(index, path)
        return blob
