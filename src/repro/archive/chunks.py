"""Content-defined chunking (CDC) and chunk-level diff/patch.

The delta-update path (:mod:`repro.core.delta`) ships package payloads as
chunk deltas against the client's cached prior version.  Fixed-size
blocks would be useless here: one inserted byte shifts every later block
boundary and the whole payload re-transfers.  Content-defined boundaries
are chosen by a rolling hash of the *data itself*, so they re-synchronize
within one chunk of an insert/delete/replace edit and everything after
the edit dedupes against the old version again.

The boundary test is a gear hash (FastCDC's primitive): a 256-entry
random table, ``h = (h << 1 + GEAR[byte]) mod 2^64``, cut where the low
``AVG_BITS`` bits are zero.  The left-shift ages bytes out of the hash
after 64 positions, which is exactly what makes the cut points local (and
the chunking self-synchronizing).  The gear table is derived from SHA-256
so every honest party — the TSR building deltas and thousands of clients
applying them — chunks identically without shipping the table.

Chunks are identified by the first 16 hex digits of their SHA-256.  The
truncation is safe because delta application always ends with a full-blob
hash check against the signed index (:mod:`repro.core.delta`): a
truncated-id collision can only yield a reconstruction that *fails* that
check and falls back to a full pull, never wrong accepted bytes.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256_bytes, sha256_hex
from repro.util.errors import DeltaError

try:  # optional exact fast path; the scalar scan is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

#: Bytes below which no boundary is considered (also skips hashing work).
MIN_CHUNK = 512
#: Hard ceiling: a chunk is cut here even if the hash never fires.
MAX_CHUNK = 4096
#: Boundary fires when the low AVG_BITS bits of the gear hash are zero,
#: i.e. with probability 2^-AVG_BITS per byte past MIN_CHUNK; the
#: expected chunk size is MIN_CHUNK + 2^AVG_BITS ≈ 1.5 KiB.
AVG_BITS = 10

_MASK = (1 << AVG_BITS) - 1
_HASH_MOD = (1 << 64) - 1

#: Hex digits of SHA-256 kept as a chunk identifier.
CHUNK_ID_HEX = 16

_GEAR = tuple(
    int.from_bytes(sha256_bytes(b"tsr-gear-v1:" + bytes([i]))[:8], "big")
    for i in range(256)
)

_GEAR_NP = None if _np is None else _np.array(_GEAR, dtype=_np.uint64)

#: Blobs below this length chunk faster with the plain scalar scan.
_NUMPY_THRESHOLD = 8192

#: Chunk boundaries are a pure function of content: refresh rounds and
#: replay modes re-manifest the same blob versions over and over, so the
#: offsets are memoized by content digest (bounded; cleared wholesale).
_OFFSETS_MEMO: dict[tuple, list[tuple[int, int]]] = {}
_OFFSETS_LIMIT = 512


def clear_chunk_memo() -> None:
    """Drop memoized chunk offsets (differential tests pin memoized runs
    against cold ones)."""
    _OFFSETS_MEMO.clear()


def seed_offsets_entry(key: tuple, offsets: list[tuple[int, int]]) -> None:
    """Install worker-computed chunk offsets (host pool); first wins."""
    if key not in _OFFSETS_MEMO:
        if len(_OFFSETS_MEMO) >= _OFFSETS_LIMIT:
            _OFFSETS_MEMO.clear()
        _OFFSETS_MEMO[key] = list(offsets)


def chunk_offsets_batch(datas: list[bytes], pool=None) -> None:
    """Warm the offsets memo for every blob in ``datas`` (delta bases for
    an upcoming pull wave), running cache misses on the worker pool."""
    misses = []
    pending = set()
    for data in datas:
        key = (sha256_bytes(data), len(data), MIN_CHUNK, MAX_CHUNK, _MASK)
        if key in _OFFSETS_MEMO or key in pending:
            continue
        pending.add(key)
        misses.append((data, MIN_CHUNK, MAX_CHUNK, _MASK))
    if not misses or pool is None:
        return
    for key, offsets in pool.run_batch("chunks", misses):
        seed_offsets_entry(key, offsets)


def chunk_offsets(data: bytes, min_size: int = MIN_CHUNK,
                  max_size: int = MAX_CHUNK,
                  mask: int = _MASK) -> list[tuple[int, int]]:
    """Cut ``data`` into content-defined ``(start, end)`` ranges.

    Deterministic, order-preserving, and exhaustive: the ranges tile the
    input exactly.  Every chunk is within ``[min_size, max_size]`` except
    a final (or sole) chunk shorter than ``min_size``.
    """
    if min_size < 1 or max_size < min_size:
        raise ValueError(f"bad chunk bounds: min={min_size} max={max_size}")
    key = (sha256_bytes(data), len(data), min_size, max_size, mask)
    hit = _OFFSETS_MEMO.get(key)
    if hit is not None:
        return list(hit)
    if _GEAR_NP is not None and len(data) >= _NUMPY_THRESHOLD:
        offsets = _chunk_offsets_vector(data, min_size, max_size, mask)
    else:
        offsets = _chunk_offsets_scalar(data, min_size, max_size, mask)
    if len(_OFFSETS_MEMO) >= _OFFSETS_LIMIT:
        _OFFSETS_MEMO.clear()
    _OFFSETS_MEMO[key] = offsets
    return list(offsets)


def _chunk_offsets_scalar(data: bytes, min_size: int, max_size: int,
                          mask: int) -> list[tuple[int, int]]:
    offsets: list[tuple[int, int]] = []
    n = len(data)
    start = 0
    while start < n:
        end = min(start + max_size, n)
        pos = start + min_size
        if pos >= end:
            offsets.append((start, end))
            break
        boundary = end
        h = 0
        for i in range(pos, end):
            h = ((h << 1) + _GEAR[data[i]]) & _HASH_MOD
            if h & mask == 0:
                boundary = i + 1
                break
        offsets.append((start, boundary))
        start = boundary
    return offsets


def _chunk_offsets_vector(data: bytes, min_size: int, max_size: int,
                          mask: int) -> list[tuple[int, int]]:
    """Exact vectorized gear scan — bit-identical to the scalar loop.

    The left-shift recurrence forgets bytes after 64 positions, so once a
    scan has accumulated 64 bytes its hash equals the *steady-state*
    value ``H[i] = sum_{k=0}^{63} GEAR[data[i-k]] << k (mod 2^64)``,
    which depends only on ``i`` — not on where the scan started.  ``H``
    is computed once for the whole blob (64 vectorized shifted adds;
    uint64 wraparound is the mod), and every position where it fires is
    tabulated.  Each chunk then replays only its first 63 positions —
    where the window is still filling and the scalar recurrence genuinely
    differs — and takes the next tabulated candidate beyond them.
    """
    n = len(data)
    g = _GEAR_NP[_np.frombuffer(data, dtype=_np.uint8)]
    # Window-doubling: H_{2w}(i) = H_w(i) + (H_w(i-w) << w), six passes
    # to the 64-byte window.  Entries below index 63 are partial and
    # never consulted (every query position is >= min_size + 63 >= 64).
    steady = g.copy()
    w = 1
    while w < 64:
        steady[w:] += steady[:n - w] << _np.uint64(w)
        w *= 2
    cand = _np.nonzero((steady & _np.uint64(mask)) == 0)[0]
    searchsorted = _np.searchsorted
    offsets: list[tuple[int, int]] = []
    start = 0
    while start < n:
        end = min(start + max_size, n)
        pos = start + min_size
        if pos >= end:
            offsets.append((start, end))
            break
        boundary = end
        h = 0
        found = False
        warm_end = min(pos + 63, end)
        for i in range(pos, warm_end):
            h = ((h << 1) + _GEAR[data[i]]) & _HASH_MOD
            if h & mask == 0:
                boundary = i + 1
                found = True
                break
        if not found and warm_end < end:
            j = int(searchsorted(cand, warm_end))
            if j < cand.size and cand[j] < end:
                boundary = int(cand[j]) + 1
        offsets.append((start, boundary))
        start = boundary
    return offsets


def chunk_id(chunk: bytes) -> str:
    """Truncated-SHA-256 identifier of one chunk."""
    return sha256_hex(chunk)[:CHUNK_ID_HEX]


def chunk_ids(data: bytes) -> list[str]:
    """Ordered chunk identifiers of ``data`` (a chunk *manifest*)."""
    return [chunk_id(data[s:e]) for s, e in chunk_offsets(data)]


def chunk_map(data: bytes) -> dict[str, bytes]:
    """Chunk id -> chunk bytes for ``data`` (the patch-side lookup)."""
    pieces = [data[s:e] for s, e in chunk_offsets(data)]
    return {chunk_id(piece): piece for piece in pieces}


# -- chunk-level diff / patch -------------------------------------------------


def build_chunk_ops(base_ids: set[str],
                    target: bytes) -> list[tuple[str, object]]:
    """Diff ``target`` against a base known only by its chunk ids.

    Returns an op list reconstructing ``target``: ``("copy", id)`` for a
    chunk the base already holds, ``("literal", bytes)`` otherwise
    (adjacent literals are merged).  The base's *bytes* are never needed
    on the diffing side — the TSR retains only manifests.
    """
    ops: list[tuple[str, object]] = []
    for start, end in chunk_offsets(target):
        piece = target[start:end]
        piece_id = chunk_id(piece)
        if piece_id in base_ids:
            ops.append(("copy", piece_id))
        elif ops and ops[-1][0] == "literal":
            ops[-1] = ("literal", ops[-1][1] + piece)
        else:
            ops.append(("literal", piece))
    return ops


def apply_chunk_ops(ops: list[tuple[str, object]],
                    base_chunks: dict[str, bytes]) -> bytes:
    """Patch: materialize an op list against the base's chunk map."""
    parts: list[bytes] = []
    for kind, value in ops:
        if kind == "copy":
            chunk = base_chunks.get(value)  # type: ignore[arg-type]
            if chunk is None:
                raise DeltaError(f"delta references unknown chunk {value!r}")
            parts.append(chunk)
        elif kind == "literal":
            parts.append(value)  # type: ignore[arg-type]
        else:
            raise DeltaError(f"unknown delta op {kind!r}")
    return b"".join(parts)


def encode_ops(ops: list[tuple[str, object]]) -> bytes:
    """Wire-encode an op list (real bytes, so transfer sizes are honest).

    ``R:<16 hex>\\n`` copies a base chunk, ``L:<len>\\n<bytes>`` inlines a
    literal, ``E:\\n`` terminates.
    """
    out: list[bytes] = []
    for kind, value in ops:
        if kind == "copy":
            out.append(b"R:" + str(value).encode() + b"\n")
        elif kind == "literal":
            out.append(b"L:%d\n" % len(value) + value)  # type: ignore[arg-type]
        else:
            raise DeltaError(f"unknown delta op {kind!r}")
    out.append(b"E:\n")
    return b"".join(out)


def decode_ops(blob: bytes) -> list[tuple[str, object]]:
    """Parse :func:`encode_ops` output; raises :class:`DeltaError` on any
    malformation (truncation, bad lengths, missing terminator)."""
    ops: list[tuple[str, object]] = []
    offset = 0
    n = len(blob)
    while True:
        newline = blob.find(b"\n", offset)
        if newline < 0:
            raise DeltaError("truncated delta op stream")
        line = blob[offset:newline]
        offset = newline + 1
        if line == b"E:":
            if offset != n:
                raise DeltaError("trailing bytes after delta terminator")
            return ops
        if line.startswith(b"R:"):
            ref = line[2:].decode("ascii", errors="replace")
            if len(ref) != CHUNK_ID_HEX or any(
                    c not in "0123456789abcdef" for c in ref):
                raise DeltaError(f"malformed chunk reference {ref!r}")
            ops.append(("copy", ref))
        elif line.startswith(b"L:"):
            try:
                length = int(line[2:])
            except ValueError as exc:
                raise DeltaError(f"malformed literal length {line!r}") from exc
            if length < 0 or offset + length > n:
                raise DeltaError("literal length exceeds delta payload")
            ops.append(("literal", blob[offset:offset + length]))
            offset += length
        else:
            raise DeltaError(f"unknown delta op line {line!r}")
