"""Ablation A2 — rollback protection: sealed state + TPM monotonic counter.

Section 5.5: an adversary with root can roll back TSR's on-disk cache and
sealed metadata.  With the freshness mechanism the replay is detected at
restart; without it (unsealed or counter-less persistence) the stale state
is silently accepted.  This ablation demonstrates both sides and prices
the defence.
"""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.core.freshness import FreshnessManager
from repro.core.service import SEALED_STATE_PATH
from repro.sgx.sealing import seal, unseal
from repro.tpm.device import Tpm
from repro.util.errors import RollbackError
from repro.workload.scenario import build_scenario


def _packages():
    return [ApkPackage(
        name="musl", version="1.1.24-r2",
        files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")],
    )]


def test_ablation_rollback_protection(benchmark):
    scenario = build_scenario(packages=_packages(), key_bits=1024,
                              with_monitor=False)
    stale_sealed = scenario.tsr.cache.disk.read_file(SEALED_STATE_PATH)

    # Move state forward: a new upstream release and refresh.
    scenario.origin.publish(ApkPackage(
        name="musl", version="1.1.24-r3",
        files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl r3")],
    ))
    scenario.sync_mirrors()
    scenario.tsr.refresh(scenario.repo_id)

    # (a) Protected: replaying the stale sealed blob is detected.
    scenario.tsr.cache.disk.write_file(SEALED_STATE_PATH, stale_sealed)
    with pytest.raises(RollbackError):
        scenario.tsr.restart()
    protected_detected = True

    # (b) Unprotected baseline: sealing without the counter accepts stale
    # state silently.
    tpm = Tpm("ablation-tpm", key_bits=512)
    sealing_key = bytes(range(32))
    old_state = seal(sealing_key, b"serial=1")
    new_state = seal(sealing_key, b"serial=2")
    del new_state  # the adversary swaps in the old blob
    recovered = unseal(sealing_key, old_state)
    unprotected_detected = recovered != b"serial=1"  # False: accepted

    # Price of the defence: counter increment + seal per refresh.
    manager = FreshnessManager(tpm, "bench-counter")

    def persist_once():
        return manager.persist(sealing_key, {"indexes": "x" * 2000})

    blob = benchmark(persist_once)
    manager.restore(sealing_key, blob)

    table = PaperTable(
        experiment="Ablation A2",
        title="Cache/state rollback across TSR restarts",
        columns=["configuration", "stale state accepted?", "attack detected?"],
    )
    table.add_row("sealing + TPM monotonic counter (TSR)", "no",
                  "YES (RollbackError at restart)")
    table.add_row("sealing only (no freshness)", "yes", "NO")
    table.note("defence cost is one counter increment + one seal per "
               "refresh (see benchmark timing above)")
    record_table(table)

    assert protected_detected
    assert not unprotected_detected
