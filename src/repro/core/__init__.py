"""TSR — the Trusted Software Repository (the paper's contribution).

A shielded proxy between package managers and community repositories:

* :mod:`repro.core.policy` — per-client security policies (Listing 1),
* :mod:`repro.core.quorum` — 2f+1 mirror agreement on the metadata index,
* :mod:`repro.core.catalog` — repository-wide user/group discovery,
* :mod:`repro.core.sanitizer` — package sanitization (section 4.2 / 5.3),
* :mod:`repro.core.cache` / :mod:`repro.core.freshness` — untrusted-disk
  cache with sealed, monotonic-counter-protected freshness (section 5.5),
* :mod:`repro.core.program` — the code that runs *inside* the enclave,
* :mod:`repro.core.service` — the host-side service + network endpoint,
* :mod:`repro.core.pipeline` — the overlapped (pipelined) refresh engine
  and the batch mirror-download scheduler,
* :mod:`repro.core.orchestrator` — the multi-tenant refresh orchestrator
  (shared-enclave scheduling, cross-tenant dedupe, quorum/download
  interleaving),
* :mod:`repro.core.client` — the package-manager-facing repository client.
"""

from repro.core.policy import SecurityPolicy, MirrorPolicyEntry
from repro.core.quorum import QuorumReader, QuorumResult, entry_agreement
from repro.core.catalog import PackageScanDelta, RepositoryCatalog, extract_scan_delta
from repro.core.orchestrator import MultiTenantRefreshReport, RefreshOrchestrator
from repro.core.pipeline import (
    DownloadBatch,
    MirrorDownloadScheduler,
    PipelineOutcome,
    RefreshPipeline,
)
from repro.core.sanitizer import Sanitizer, SanitizationResult, SanitizationRejected
from repro.core.service import RefreshReport, RepoConfig, TrustedSoftwareRepository
from repro.core.client import TsrRepositoryClient, MirrorRepositoryClient

__all__ = [
    "SecurityPolicy",
    "MirrorPolicyEntry",
    "QuorumReader",
    "QuorumResult",
    "entry_agreement",
    "PackageScanDelta",
    "RepositoryCatalog",
    "extract_scan_delta",
    "MultiTenantRefreshReport",
    "RefreshOrchestrator",
    "DownloadBatch",
    "MirrorDownloadScheduler",
    "PipelineOutcome",
    "RefreshPipeline",
    "Sanitizer",
    "SanitizationResult",
    "SanitizationRejected",
    "RefreshReport",
    "RepoConfig",
    "TrustedSoftwareRepository",
    "TsrRepositoryClient",
    "MirrorRepositoryClient",
]
