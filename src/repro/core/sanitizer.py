"""Package sanitization (paper sections 4.2 and 5.3).

Sanitizing a package means:

1. **verify** its authenticity and integrity (signature over the control
   segment, datahash over the data segment) against the policy's trusted
   signer keys;
2. **classify** its installation scripts (Table 2) and reject the package
   if any operation is neither safe nor sanitizable (configuration
   changes, shell activation);
3. **rewrite** the scripts: account-creation commands are replaced by the
   repository-wide deterministic prelude; ``passwd -d`` (the
   CVE-2019-5021 pattern) is dropped; predicted configuration files and
   ``touch``-created empty files get ``setfattr`` lines installing TSR's
   IMA signatures;
4. **sign** every file in the data segment (256-byte RSA signatures into
   PAX ``security.ima`` records);
5. **repack** and re-sign the package with the repository's key.

Each phase is timed individually — Table 4's correlations and Fig. 8/12
are computed from these timings.

The pipeline is split at the trust-relevant boundary between
*content-determined* and *repository-determined* work:

* :meth:`Sanitizer.analyze_blob` — parse, verify, classify, and filter
  the scripts.  The result (:class:`PackageAnalysis`) depends only on the
  package bytes and the trusted signer set, so a multi-tenant TSR can
  compute it once per unique upstream blob and share it across tenant
  repositories (the enclave memoizes it under the blob hash — see
  :mod:`repro.core.program`).  Rejections are content-determined too and
  are recorded in the analysis for replay.
* :meth:`Sanitizer.finish_from_analysis` — everything keyed to one
  repository: splice this repository's account prelude and IMA signature
  lines into the filtered scripts, sign every file with the repository
  key, and repack.  Output bytes are identical whether the analysis was
  computed fresh or replayed from the memo.

:meth:`Sanitizer.sanitize_blob` composes the two (the single-tenant
path); its output is unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.archive.apk import ApkPackage, ParsedApk, parse_apk_cached_with_cost
from repro.core.catalog import RepositoryCatalog
from repro.crypto.hashes import sha256_hex
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.ima.subsystem import ima_signature_for, ima_signature_with_cost
from repro.scripts.classify import OperationType, ScriptProfile, classify_script
from repro.scripts.parser import parse_script
from repro.scripts.shell_ast import (
    ConditionalList,
    IfStatement,
    Pipeline,
    Script,
    Statement,
)
from repro.util.errors import ReproError, ScriptError

_ACCOUNT_COMMANDS = frozenset({"adduser", "addgroup", "passwd"})

CONFIG_PATHS = ("/etc/passwd", "/etc/shadow", "/etc/group")


class SanitizationRejected(ReproError):
    """The package cannot be made safe; TSR refuses to publish it."""

    def __init__(self, package: str, reason: str):
        super().__init__(f"package {package!r} rejected: {reason}")
        self.package = package
        self.reason = reason


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each sanitization phase."""

    verify: float = 0.0
    archive: float = 0.0
    scripts: float = 0.0
    sign: float = 0.0

    @property
    def total(self) -> float:
        return self.verify + self.archive + self.scripts + self.sign

    def proportions(self) -> dict[str, float]:
        total = self.total or 1e-12
        return {
            "verify": self.verify / total,
            "archive": self.archive / total,
            "scripts": self.scripts / total,
            "sign": self.sign / total,
        }


@dataclass
class SanitizationResult:
    """A sanitized package plus the measurements the evaluation needs."""

    package: ApkPackage
    blob: bytes
    original_size: int
    sanitized_size: int
    file_count: int
    uncompressed_size: int
    timings: PhaseTimings
    profile: ScriptProfile
    insecure_findings: list[tuple[str, str]] = field(default_factory=list)
    #: True when the content-determined analysis came from the shared
    #: refresh memo (another tenant already paid for parse/verify/classify).
    shared_analysis: bool = False

    @property
    def size_overhead(self) -> float:
        """Fractional growth, e.g. 0.12 for +12 % (Fig. 9)."""
        if self.original_size == 0:
            return 0.0
        return (self.sanitized_size - self.original_size) / self.original_size

    @property
    def working_set_bytes(self) -> int:
        """Peak enclave memory estimate: compressed blob + extracted data."""
        return self.original_size + self.uncompressed_size


@dataclass
class HookAnalysis:
    """Content-determined rewrite state of one installation script."""

    profile: ScriptProfile
    #: Verbatim source for safe scripts (no rewrite needed); None when the
    #: script was filtered and must be re-rendered per repository.
    source: str | None = None
    #: Statements retained after dropping account pipelines (unsafe-but-
    #: sanitizable scripts only).
    kept: list[Statement] = field(default_factory=list)
    #: Original shebang (falls back to ``#!/bin/sh`` at render time).
    shebang: str | None = None
    #: Paths ``touch``-created by the retained statements.
    touched: list[str] = field(default_factory=list)


@dataclass
class PackageAnalysis:
    """Everything about one blob that does not depend on the repository.

    Shareable across tenants whose policies trust the same signer set;
    ``timings`` records the parse/verify/classify cost so the *first*
    repository to sanitize the blob accounts it and memo hits do not.
    """

    package: ApkPackage
    original_size: int
    profile: ScriptProfile
    hooks: dict[str, HookAnalysis]
    timings: PhaseTimings
    #: (package name, reason) when classification rejected the package.
    rejection: tuple[str, str] | None = None
    #: (blob digest, trusted-signer fingerprints) when this analysis came
    #: through the host-pool memo path; None on the plain serial path.
    #: Lets :meth:`Sanitizer.finish_from_analysis` look up a pool-computed
    #: finish for the same content without rehashing the blob.
    content_key: tuple | None = None

    def charged(self) -> "PackageAnalysis":
        """A view of this analysis whose shared cost is already paid."""
        return PackageAnalysis(
            package=self.package,
            original_size=self.original_size,
            profile=self.profile,
            hooks=self.hooks,
            timings=PhaseTimings(),
            rejection=self.rejection,
            content_key=self.content_key,
        )


class Sanitizer:
    """Sanitizes packages for one TSR repository (one policy)."""

    def __init__(self, signing_key: RsaPrivateKey,
                 trusted_signers: list[RsaPublicKey],
                 catalog: RepositoryCatalog,
                 init_config: dict[str, str]):
        self._signing_key = signing_key
        self._trusted_signers = list(trusted_signers)
        self._catalog = catalog
        self._predicted_config = catalog.predict_config(init_config)
        self._config_signatures = {
            path: ima_signature_for(content.encode(), signing_key)
            for path, content in self._predicted_config.items()
        }
        self._prelude_lines = catalog.prelude_script_lines()
        self._empty_file_signature = ima_signature_for(b"", signing_key)

    @property
    def predicted_config(self) -> dict[str, str]:
        return dict(self._predicted_config)

    @property
    def public_key(self) -> RsaPublicKey:
        return self._signing_key.public_key

    # -- the pipeline ------------------------------------------------------------

    def sanitize_blob(self, blob: bytes) -> SanitizationResult:
        """Run the full sanitization pipeline on raw apk bytes."""
        return self.finish_from_analysis(self.analyze_blob(blob))

    def analyze_blob(self, blob: bytes) -> PackageAnalysis:
        """The content-determined half: parse, verify, classify, filter.

        Never raises for rejected packages — the rejection is recorded so
        a memoized analysis replays it identically per repository.
        """
        return analyze_package_blob(blob, self._trusted_signers)

    def finish_from_analysis(self,
                             analysis: PackageAnalysis) -> SanitizationResult:
        """The repository-determined half: render, sign, repack.

        Raises :class:`SanitizationRejected` when the analysis recorded a
        rejection; the shared parse/verify/classify cost carried in
        ``analysis.timings`` is folded into the result's timings (a memo
        hit passes a zero-cost :meth:`PackageAnalysis.charged` view).
        """
        if analysis.rejection is not None:
            raise SanitizationRejected(*analysis.rejection)
        if _FINISH_MEMO and analysis.content_key is not None:
            # Pool-computed finish for this (content, signer set, signing
            # key): splice the worker's package/blob and recorded phase
            # costs.  The memo is installed exclusively from pool results
            # (catalog-independent packages only), so on the serial path
            # it is empty and this probe never fires.
            hit = _FINISH_MEMO.get(
                analysis.content_key + (self._signing_key.n,))
            if hit is not None:
                return self._finish_from_memo(analysis, hit)
        package = analysis.package
        timings = PhaseTimings(
            verify=analysis.timings.verify,
            archive=analysis.timings.archive,
            scripts=analysis.timings.scripts,
        )

        start = time.perf_counter()
        new_scripts: dict[str, str] = {}
        profile = analysis.profile
        for hook, hook_analysis in analysis.hooks.items():
            if hook_analysis.source is not None:
                new_scripts[hook] = hook_analysis.source  # nothing to change
            else:
                new_scripts[hook] = self._render_hook(hook_analysis)
        timings.scripts += time.perf_counter() - start

        start = time.perf_counter()
        signed_files = []
        sign_cost = 0.0
        for pkg_file in package.files:
            signature, cost = ima_signature_with_cost(pkg_file.content,
                                                      self._signing_key)
            sign_cost += cost
            signed_files.append(type(pkg_file)(
                path=pkg_file.path,
                content=pkg_file.content,
                mode=pkg_file.mode,
                ima_signature=signature,
            ))
        config_signatures = {}
        if OperationType.USER_GROUP_CREATION in profile.operations:
            config_signatures = dict(self._config_signatures)
        # Memoized signatures return instantly but stand for real enclave
        # signing work: charge the recorded fresh cost when it dominates.
        timings.sign += max(time.perf_counter() - start, sign_cost)

        sanitized = ApkPackage(
            name=package.name,
            version=package.version,
            arch=package.arch,
            description=package.description,
            depends=list(package.depends),
            scripts=new_scripts,
            files=signed_files,
            config_signatures=config_signatures,
        )

        start = time.perf_counter()
        sanitized_blob, repack_cost = sanitized.build_with_cost(
            self._signing_key, key_name="tsr")
        # Spliced (memoized) segments charge their recorded deflate cost.
        timings.archive += max(time.perf_counter() - start, repack_cost)

        uncompressed = sum(len(f.content) for f in package.files)
        findings = [
            (pkg, user) for pkg, user in self._catalog.insecure_findings
            if pkg == package.name
        ]
        return SanitizationResult(
            package=sanitized,
            blob=sanitized_blob,
            original_size=analysis.original_size,
            sanitized_size=len(sanitized_blob),
            file_count=len(package.files),
            uncompressed_size=uncompressed,
            timings=timings,
            profile=profile,
            insecure_findings=findings,
        )

    def _finish_from_memo(self, analysis: PackageAnalysis,
                          hit: tuple) -> SanitizationResult:
        """Reassemble a :class:`SanitizationResult` from a pool-computed
        finish: identical package/blob bytes, timings charged from the
        worker-measured render/sign/repack costs (cost-honesty — a warm
        finish accounts exactly like the computation that produced it)."""
        package, blob, render_cost, sign_cost, repack_cost = hit
        timings = PhaseTimings(
            verify=analysis.timings.verify,
            archive=analysis.timings.archive + repack_cost,
            scripts=analysis.timings.scripts + render_cost,
            sign=sign_cost,
        )
        uncompressed = sum(len(f.content) for f in analysis.package.files)
        findings = [
            (pkg, user) for pkg, user in self._catalog.insecure_findings
            if pkg == analysis.package.name
        ]
        return SanitizationResult(
            package=package,
            blob=blob,
            original_size=analysis.original_size,
            sanitized_size=len(blob),
            file_count=len(analysis.package.files),
            uncompressed_size=uncompressed,
            timings=timings,
            profile=analysis.profile,
            insecure_findings=findings,
        )

    # -- script rewriting -----------------------------------------------------------

    def _render_hook(self, analysis: HookAnalysis) -> str:
        """Render one filtered script with this repository's prelude and
        IMA signature lines (the repository-determined rewrite half)."""
        lines: list[str] = []
        if OperationType.USER_GROUP_CREATION in analysis.profile.operations:
            # Deterministic account prelude replaces the script's own
            # adduser/addgroup/passwd commands.
            lines.extend(self._prelude_lines)
        rewritten = Script(statements=analysis.kept,
                           shebang=analysis.shebang or "#!/bin/sh")
        body = rewritten.render().splitlines()
        if body and body[0].startswith("#!"):
            shebang, body = body[0], body[1:]
        else:
            shebang = "#!/bin/sh"
        lines = [shebang, *lines, *body]
        if OperationType.USER_GROUP_CREATION in analysis.profile.operations:
            for path in CONFIG_PATHS:
                signature = self._config_signatures[path]
                lines.append(
                    f"setfattr -n security.ima -v 0x{signature.hex()} {path}"
                )
        for path in analysis.touched:
            lines.append(
                "setfattr -n security.ima -v "
                f"0x{self._empty_file_signature.hex()} {path}"
            )
        return "\n".join(lines) + "\n"


def _filter_statements(statements: list[Statement]) -> list[Statement]:
    """Drop account-management pipelines; recurse into if-statements."""
    kept: list[Statement] = []
    for statement in statements:
        if isinstance(statement, IfStatement):
            then_body = _filter_statements(statement.then_body)
            else_body = _filter_statements(statement.else_body)
            if not then_body and not else_body:
                continue
            kept.append(IfStatement(condition=statement.condition,
                                    then_body=then_body, else_body=else_body))
            continue
        filtered = _filter_conditional(statement)
        if filtered is not None:
            kept.append(filtered)
    return kept


def _filter_conditional(conditional: ConditionalList) -> ConditionalList | None:
    pipelines: list[Pipeline] = []
    connectors: list[str] = []
    previous_connector: str | None = None
    for index, pipeline in enumerate(conditional.pipelines):
        connector = conditional.connectors[index - 1] if index else None
        if _is_account_pipeline(pipeline):
            # Dropping `adduser x && mkdir y` must keep `mkdir y`
            # unconditional; the prelude guarantees the account exists.
            previous_connector = ";" if connector is not None else None
            continue
        if pipelines:
            connectors.append(previous_connector or connector or ";")
        pipelines.append(pipeline)
        previous_connector = None
    if not pipelines:
        return None
    return ConditionalList(pipelines=pipelines, connectors=connectors)


def _is_account_pipeline(pipeline: Pipeline) -> bool:
    return any(cmd.name in _ACCOUNT_COMMANDS for cmd in pipeline.commands)


def _touched_paths(statements: list[Statement]) -> list[str]:
    """Paths created by ``touch`` in the retained statements."""
    touched: list[str] = []
    for command in Script(statements=statements).iter_commands():
        if command.name == "touch":
            touched.extend(arg for arg in command.args if not arg.startswith("-"))
    return touched


# -- host-pool memos and kernels ----------------------------------------------
#
# Both memos are installed exclusively from worker-pool results in the
# main process: in a serial (REPRO_WORKERS=0) process they stay
# permanently empty, every probe is skipped by the truthiness guard, and
# the code path is the literal pre-pool one.  Installed analyses carry
# the worker-measured parse/verify/classify timings; installed finishes
# carry worker-measured render/sign/repack costs — memo hits account
# exactly like the computation that produced them.

#: (blob digest hex, trusted-signer fingerprints) -> PackageAnalysis.
_ANALYSIS_MEMO: dict[tuple, PackageAnalysis] = {}
#: (blob digest hex, signer fps, signing-key modulus) ->
#: (sanitized package, blob, render cost, sign cost, repack cost).
#: Catalog-independent packages only (no account creation, no rejection).
_FINISH_MEMO: dict[tuple, tuple] = {}
_SANITIZE_MEMO_LIMIT = 512


def clear_sanitize_memos() -> None:
    """Drop the pool-fed analysis/finish memos (differential suites start
    each sweep cold)."""
    _ANALYSIS_MEMO.clear()
    _FINISH_MEMO.clear()


def analyze_package_blob(blob: bytes, trusted_signers: list[RsaPublicKey],
                         _collect: dict | None = None) -> PackageAnalysis:
    """Content-determined analysis of one blob: parse, verify, classify,
    filter.  A pure function of (blob, trusted signer set) — the host
    pool precomputes it in workers and installs the result here.

    ``_collect`` is the worker-side hook: when given, memo probes are
    skipped (the worker must measure fresh) and the parsed apk plus its
    parse cost are stashed for harvesting.
    """
    digest = None
    fps = None
    if _ANALYSIS_MEMO and _collect is None:
        digest = sha256_hex(blob)
        fps = tuple(k.fingerprint() for k in trusted_signers)
        hit = _ANALYSIS_MEMO.get((digest, fps))
        if hit is not None:
            return hit

    timings = PhaseTimings()

    start = time.perf_counter()
    parsed, parse_cost = parse_apk_cached_with_cost(blob, digest)
    # A memoized parse returns in microseconds but represents the same
    # enclave work as the first computation: charge whichever is larger,
    # so memo hits and fresh parses account identically.
    timings.archive += max(time.perf_counter() - start, parse_cost)
    if _collect is not None:
        _collect["parsed"] = parsed
        _collect["parse_cost"] = parse_cost

    start = time.perf_counter()
    _, verify_cost = parsed.verify_with_cost(trusted_signers)
    # A memoized verdict returns in microseconds but represents the
    # same enclave work as the first computation: charge whichever is
    # larger, so memo hits and fresh verifies account identically.
    timings.verify += max(time.perf_counter() - start, verify_cost)

    package = parsed.package

    start = time.perf_counter()
    profile = ScriptProfile()
    hooks: dict[str, HookAnalysis] = {}
    rejection: tuple[str, str] | None = None
    for hook, source in package.scripts.items():
        try:
            script = parse_script(source)
            hook_profile = classify_script(script)
        except ScriptError as exc:
            rejection = (package.name,
                         f"unparseable script {hook}: {exc}")
            break
        profile = profile.merge(hook_profile)
        if not hook_profile.sanitizable:
            bad = ", ".join(sorted(
                op.label for op in hook_profile.unsafe_operations
                if not op.sanitizable
            ))
            rejection = (package.name, f"script {hook} performs: {bad}")
            break
        if hook_profile.safe:
            hooks[hook] = HookAnalysis(profile=hook_profile,
                                       source=source)
            continue
        kept = _filter_statements(script.statements)
        hooks[hook] = HookAnalysis(
            profile=hook_profile,
            kept=kept,
            shebang=script.shebang,
            touched=_touched_paths(kept),
        )
    timings.scripts += time.perf_counter() - start

    return PackageAnalysis(
        package=package,
        original_size=len(blob),
        profile=profile,
        hooks=hooks,
        timings=timings,
        rejection=rejection,
        content_key=((digest, fps) if digest is not None else None),
    )


def prewarm_kernel(blob: bytes, trusted_signers: tuple,
                   signing_key: RsaPrivateKey | None) -> dict:
    """Worker-side sanitize prewarm: compute the content-determined
    analysis fresh (measuring real costs) and, when a signing key is
    supplied and the package is catalog-independent, the full
    repository-determined finish.  Returns every memo entry the main
    process should install; never raises (a bad blob returns an error
    marker and the serial path re-raises in context)."""
    from repro.crypto.hashes import sha256_bytes
    from repro.crypto.rsa import _SIGN_MEMO, _VERIFY_MEMO
    trusted = list(trusted_signers)
    collect: dict = {}
    try:
        analysis = analyze_package_blob(blob, trusted, _collect=collect)
    except Exception as exc:
        return {"error": repr(exc)}
    digest = sha256_hex(blob)
    fps = tuple(k.fingerprint() for k in trusted)
    analysis.content_key = (digest, fps)
    parsed: ParsedApk = collect["parsed"]
    verify_entries = []
    control_digest = sha256_bytes(parsed.control_gz)
    for key in trusted:
        if len(parsed.signature) != key.size_bytes:
            continue
        vkey = (key.n, key.e, control_digest, parsed.signature)
        hit = _VERIFY_MEMO.get(vkey)
        if hit is None:
            continue
        verify_entries.append((*vkey, *hit))
        if hit[0]:
            break
    result = {
        "parse": ((digest, len(blob)), parsed, collect["parse_cost"]),
        "verify": verify_entries,
        "analysis": ((digest, fps), analysis),
        "sign": [],
        "build": None,
        "finish": None,
    }
    if (signing_key is None or analysis.rejection is not None
            or OperationType.USER_GROUP_CREATION in analysis.profile.operations):
        return result
    try:
        sanitizer = Sanitizer(signing_key, trusted, RepositoryCatalog(), {})
        finished = sanitizer.finish_from_analysis(analysis.charged())
        _, build_entries = finished.package.build_prewarm(signing_key,
                                                          key_name="tsr")
    except Exception:
        return result  # the analysis half is still worth installing
    sign_entries = []
    for pkg_file in finished.package.files:
        message = sha256_bytes(pkg_file.content)
        file_digest = sha256_bytes(message)
        sign_hit = _SIGN_MEMO.get((signing_key.n, file_digest))
        if sign_hit is None:
            continue
        signature, cost = sign_hit
        verify_hit = _VERIFY_MEMO.get(
            (signing_key.n, signing_key.e, file_digest, signature))
        sign_entries.append((signing_key.n, signing_key.e, file_digest,
                             signature, cost,
                             verify_hit[1] if verify_hit else 0.0))
    result["sign"] = sign_entries
    result["build"] = build_entries
    result["finish"] = (
        (digest, fps, signing_key.n),
        (finished.package, finished.blob, finished.timings.scripts,
         finished.timings.sign, finished.timings.archive),
    )
    return result


def seed_prewarm_result(result: dict) -> int:
    """Install one :func:`prewarm_kernel` harvest (main process only).
    Every install is first-wins, so memo contents are reproducible."""
    if "error" in result:
        return 0
    from repro.archive.apk import seed_build_entries, seed_parse_entry
    from repro.crypto.rsa import seed_sign_entry, seed_verify_entry
    parse_key, parsed, parse_cost = result["parse"]
    seed_parse_entry(parse_key, parsed, parse_cost)
    for entry in result["verify"]:
        seed_verify_entry(*entry)
    for n, e, digest, signature, cost, vcost in result["sign"]:
        seed_sign_entry(n, digest, signature, cost)
        seed_verify_entry(n, e, digest, signature, True, vcost)
    if result["build"] is not None:
        seed_build_entries(result["build"])
    analysis_key, analysis = result["analysis"]
    if analysis_key not in _ANALYSIS_MEMO:
        if len(_ANALYSIS_MEMO) >= _SANITIZE_MEMO_LIMIT:
            _ANALYSIS_MEMO.clear()
        _ANALYSIS_MEMO[analysis_key] = analysis
    if result["finish"] is not None:
        finish_key, value = result["finish"]
        if finish_key not in _FINISH_MEMO:
            if len(_FINISH_MEMO) >= _SANITIZE_MEMO_LIMIT:
                _FINISH_MEMO.clear()
            _FINISH_MEMO[finish_key] = value
    return 1


def _prewarm_key(digest: str, fps: tuple,
                 signing_key: RsaPrivateKey | None) -> tuple:
    return (digest, fps, None if signing_key is None else signing_key.n)


def _fully_warm(digest: str, fps: tuple,
                signing_key: RsaPrivateKey | None) -> bool:
    analysis = _ANALYSIS_MEMO.get((digest, fps))
    if analysis is None:
        return False
    if signing_key is None or analysis.rejection is not None:
        return True
    if OperationType.USER_GROUP_CREATION in analysis.profile.operations:
        return True  # catalog-dependent: the finish never memoizes
    return (digest, fps, signing_key.n) in _FINISH_MEMO


def sanitize_prefetch(blob: bytes, trusted_signers: list[RsaPublicKey],
                      signing_key: RsaPrivateKey | None, pool,
                      digest: str | None = None) -> None:
    """Lookahead: fire one async prewarm unless its results are already
    warm or in flight.  A later :func:`sanitize_prewarm_batch` harvests
    it (or the pool discards it at shutdown)."""
    if pool is None or pool.broken:
        return
    if digest is None:
        digest = sha256_hex(blob)
    fps = tuple(k.fingerprint() for k in trusted_signers)
    if _fully_warm(digest, fps, signing_key):
        return
    pool.prefetch("sanitize_prewarm", _prewarm_key(digest, fps, signing_key),
                  (blob, tuple(trusted_signers), signing_key))


def sanitize_prewarm_batch(blobs: list[bytes],
                           trusted_signers: list[RsaPublicKey],
                           signing_key: RsaPrivateKey | None,
                           pool=None) -> int:
    """Blocking prewarm for a round's known sanitize work: submit every
    cold blob, then collect and install all results before returning, so
    the serial timeline that follows only ever sees warm memos (never a
    race between an in-flight worker and an inline computation)."""
    if pool is None or not blobs:
        return 0
    fps = tuple(k.fingerprint() for k in trusted_signers)
    keys: list[tuple] = []
    seen: set[tuple] = set()
    for blob in blobs:
        blob = bytes(blob)
        digest = sha256_hex(blob)
        # Harvest any analysis-only lookahead already in flight for this
        # blob (fired host-side, where the signing key is unavailable).
        none_key = _prewarm_key(digest, fps, None)
        if pool.pending("sanitize_prewarm", none_key):
            result = pool.collect("sanitize_prewarm", none_key)
            if result is not None:
                seed_prewarm_result(result)
        key = _prewarm_key(digest, fps, signing_key)
        if key in seen or _fully_warm(digest, fps, signing_key):
            continue
        seen.add(key)
        pool.prefetch("sanitize_prewarm", key,
                      (blob, tuple(trusted_signers), signing_key))
        keys.append(key)
    installed = 0
    for key in keys:
        result = pool.collect("sanitize_prewarm", key)
        if result is not None:
            installed += seed_prewarm_result(result)
    return installed
