"""Ablation A4 — parallel package downloading (the paper's future work).

Table 3's discussion: "the download time can be greatly reduced by
enabling parallel downloading. This performance improvement is left as
part of future work."  We implement it twice and quantify the
repository-initialization speedup against the paper's sequential
behaviour:

* *waves* — concurrent fetch waves round-robined over the policy mirrors
  (the original ablation), and
* *pipelined* — the full refresh engine of :mod:`repro.core.pipeline`,
  which additionally overlaps sanitization with the remaining downloads.
"""

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario


def _init_time(workload, parallel: int,
               pipelined: bool = False) -> tuple[float, float]:
    scenario = build_scenario(workload=workload, key_bits=1024,
                              refresh=False, with_monitor=False)
    report = scenario.tsr.refresh(scenario.repo_id,
                                  parallel_downloads=parallel,
                                  pipelined=pipelined)
    return report.download_elapsed, report.total_elapsed


def test_ablation_parallel_download(benchmark):
    # A smaller population than the main scenario: this ablation rebuilds
    # the deployment once per configuration.
    workload = generate_workload(scale=0.008, seed=4, with_content=True)

    def sweep():
        timings = {parallel: _init_time(workload, parallel)
                   for parallel in (1, 4, 8)}
        timings["pipelined"] = _init_time(workload, 1, pipelined=True)
        return timings

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = PaperTable(
        experiment="Ablation A4",
        title="Parallel downloading (the paper's future-work item)",
        columns=["configuration", "download time", "refresh wall-clock",
                 "wall speedup vs sequential"],
    )
    sequential_total = timings[1][1]
    for config, (download, total) in timings.items():
        if config == "pipelined":
            # download_elapsed sums per-stream durations in pipelined mode
            # (concurrent streams overlap), so it is not comparable to the
            # wall-clock download phases of the wave configurations.
            label, download_cell = "pipelined", "(overlapped)"
        else:
            label, download_cell = f"{config} connections", \
                human_duration(download)
        table.add_row(label, download_cell, human_duration(total),
                      f"{sequential_total / total:.1f}x")
    table.note("sequential (1) reproduces the paper's Table 3 behaviour; "
               "wave width bounded by mirror count and the shared downlink; "
               "'pipelined' also overlaps sanitization with downloads")
    record_table(table)

    # Shape: parallelism strictly reduces download time.
    assert timings[4][0] < timings[1][0]
    assert timings[8][0] <= timings[4][0] * 1.05
    # The pipelined engine beats every phased configuration on wall-clock.
    assert timings["pipelined"][1] < timings[8][1]
    assert timings["pipelined"][1] < timings[1][1]
