#!/usr/bin/env python3
"""Byzantine mirrors: freeze and replay attacks vs the TSR quorum.

Reproduces the paper's Figure 5 threat scenario: an adversary controls a
minority of mirrors and tries to (a) hide a security update (freeze) and
(b) serve an old vulnerable package (replay).  A conventional single-mirror
client falls for both; TSR's 2f+1 quorum does not.

Run:  python examples/byzantine_mirrors.py
"""

from repro.archive.apk import ApkPackage, PackageFile
from repro.mirrors.builder import MirrorSpec
from repro.mirrors.mirror import MirrorBehavior
from repro.simnet.latency import Continent
from repro.workload.scenario import build_scenario


def main():
    vulnerable = ApkPackage(
        name="openssl", version="1.1.1f-r0",
        files=[PackageFile("/usr/lib/libssl.so.1.1",
                           b"\x7fELF openssl with CVE")],
    )

    specs = (
        MirrorSpec("honest-eu", Continent.EUROPE),
        MirrorSpec("honest-na", Continent.NORTH_AMERICA),
        MirrorSpec("evil-mirror", Continent.EUROPE,
                   behavior=MirrorBehavior.FREEZE),
    )
    print("== deployment: 3 mirrors, one controlled by the adversary ==")
    scenario = build_scenario(packages=[vulnerable], mirror_specs=specs,
                              key_bits=1024)

    print("upstream publishes the security fix...")
    scenario.origin.publish(ApkPackage(
        name="openssl", version="1.1.1g-r0",
        files=[PackageFile("/usr/lib/libssl.so.1.1",
                           b"\x7fELF openssl patched")],
    ))
    scenario.sync_mirrors()
    print(f"origin serial is now {scenario.origin.serial}; "
          f"evil-mirror still serves serial "
          f"{scenario.mirrors['evil-mirror'].serial} (freeze attack)")

    print("\n== conventional client pinned to the evil mirror ==")
    victim, victim_pm = scenario.new_node("victim", use_tsr=False)
    # The default mirror-direct client binds to the first mirror; rebind
    # the victim explicitly to the adversary's mirror.
    from repro.core.client import MirrorRepositoryClient
    victim_pm._client = MirrorRepositoryClient(scenario.network, "victim",
                                               "evil-mirror")
    index = victim_pm.update()
    print(f"victim sees openssl {index.get('openssl').version} "
          "(signature valid, content stale -> attack succeeds)")

    print("\n== TSR client: quorum across all three mirrors ==")
    report = scenario.refresh()
    print(f"TSR quorum accepted serial {report.serial}; "
          f"changed: {report.changed_packages}")
    node, pm = scenario.new_node("protected")
    index = pm.update()
    print(f"protected node sees openssl {index.get('openssl').version}")
    pm.install("openssl")
    content = node.fs.read_file("/usr/lib/libssl.so.1.1")
    print(f"installed library contains: {content[5:].decode()}")

    assert index.get("openssl").version == "1.1.1g-r0"
    assert b"patched" in content
    print("\nthe minority Byzantine mirror was outvoted. done.")


if __name__ == "__main__":
    main()
