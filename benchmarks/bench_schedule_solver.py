"""Solver scaling — incremental event-heap solve vs the dense reference.

Fleet-shaped schedules (N client channels sharing one repository uplink,
heterogeneous per-client NIC caps, a few transfers per client) are solved
with both engines:

* the incremental solver (``ParallelTransferSchedule.solve``): heap of
  next-completion events + water-level dirty-set rebalance, O(log n) per
  event;
* the PR 2 reference (``solve_reference``): full per-event rate
  recomputation with a sort, O(n log n) per event — measured up to
  ``REFERENCE_CEILING`` channels and extrapolated beyond with the
  exponent fitted to the measured points.

These timings are **host wall-clock** (solver runtime), not simulated
seconds: the point is that a 10k-channel fleet's transfer timeline now
resolves in a couple of host seconds.  The bench also differentially
checks both solvers agree to 1e-6 s at the largest directly-measured
scale, and adds a 100k-channel single-item fan-out row (the fleet
index-pull shape) solved with the vectorized core
(``REPRO_SOLVER=numpy``) — the sub-second headline row.

``REPRO_SOLVER_CHANNELS`` overrides the largest multi-item fleet
(default 10000); ``REPRO_SOLVER_FANOUT`` the fan-out row (default
100000).
"""

from __future__ import annotations

import gc
import math
import os
import random
import time

from repro.bench.report import PaperTable, record_table
from repro.simnet.schedule import ParallelTransferSchedule
from repro.simnet.schedule import _np as _numpy
from repro.util.stats import human_duration

MAX_CHANNELS = int(os.environ.get("REPRO_SOLVER_CHANNELS", "10000"))
FANOUT_CHANNELS = int(os.environ.get("REPRO_SOLVER_FANOUT", "100000"))
SCALES = tuple(sorted({256, 1024, MAX_CHANNELS}))
#: Largest scale the O(events x channels log channels) reference solves
#: directly in reasonable bench time.
REFERENCE_CEILING = 1024
ITEMS_PER_CLIENT = 3
UPLINK = 100 * 1024 * 1024  # 100 MB/s repository uplink
PEER_BANDWIDTH = 3 * 1024 * 1024  # Table 3 anchor: ~3 MB/s per stream
NIC_CHOICES = (1, 2, 4, 8)  # MB/s — heterogeneous client downlinks
#: CI host-time regression ceilings (generous: the measured times are
#: ~0.3 s and ~0.9 s on one unloaded core, but CI runners are shared).
MAX_CHANNELS_CEILING_S = 2.0
FANOUT_CEILING_S = 2.0


def _fleet_schedule(channels: int, seed: int = 7,
                    items: int = ITEMS_PER_CLIENT) -> ParallelTransferSchedule:
    """A fleet-refresh-shaped workload: index + package pulls per client."""
    rng = random.Random(seed)
    schedule = ParallelTransferSchedule(downlink_bandwidth=UPLINK)
    for c in range(channels):
        channel = f"client-{c:05d}"
        schedule.limit_channel(channel,
                               rng.choice(NIC_CHOICES) * 1024 * 1024)
        for i in range(items):
            schedule.enqueue(channel, (channel, i),
                             setup=0.03 + rng.random() * 0.02,
                             size_bytes=rng.randint(20_000, 600_000),
                             bandwidth=PEER_BANDWIDTH)
    return schedule


def _timed(solve) -> tuple[float, dict]:
    begin = time.perf_counter()
    timings = solve()
    return time.perf_counter() - begin, timings


def test_solver_scaling(benchmark, maybe_profile):
    def sweep():
        results = {}
        reference_walls = {}
        for channels in SCALES:
            schedule = _fleet_schedule(channels)
            wall, timings = _timed(schedule.solve)
            results[channels] = {
                "incremental_wall": wall,
                "items": len(timings),
                "makespan": max(t.finish for t in timings.values()),
            }
            if channels <= REFERENCE_CEILING:
                ref_wall, ref_timings = _timed(schedule.solve_reference)
                results[channels]["reference_wall"] = ref_wall
                reference_walls[channels] = ref_wall
                worst = max(
                    max(abs(timings[k].start - ref_timings[k].start),
                        abs(timings[k].finish - ref_timings[k].finish))
                    for k in ref_timings
                )
                results[channels]["worst_delta"] = worst
        # Fit t = c * n^alpha to the measured reference points and
        # extrapolate to the unmeasured scales.
        (n0, t0), (n1, t1) = sorted(reference_walls.items())[-2:]
        alpha = math.log(t1 / t0) / math.log(n1 / n0)
        for channels, row in results.items():
            if "reference_wall" not in row:
                row["reference_extrapolated"] = t1 * (channels / n1) ** alpha
        results["alpha"] = alpha
        # Headline fan-out row: one index pull per client (the fleet
        # refresh wave shape) at 100k channels, solved with the
        # vectorized setup-wave/tail-drain core when numpy is present.
        # Best of two solves with the collector paused: the sub-second
        # claim is about the solver, not the host — a single shot
        # swings +-0.3 s on shared runners, and a gen-2 collection
        # triggered mid-solve scans the whole test session's heap
        # (standalone the same solve never pays that).  Min + gc-off is
        # the standard microbenchmark discipline (pytest-benchmark's
        # --benchmark-disable-gc does exactly this).
        prior = os.environ.get("REPRO_SOLVER")
        if _numpy is not None:
            os.environ["REPRO_SOLVER"] = "numpy"
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            wall = math.inf
            for _ in range(2):
                schedule = _fleet_schedule(FANOUT_CHANNELS, items=1)
                attempt, timings = _timed(schedule.solve)
                wall = min(wall, attempt)
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
            if prior is None:
                os.environ.pop("REPRO_SOLVER", None)
            else:
                os.environ["REPRO_SOLVER"] = prior
        results["fanout"] = {
            "incremental_wall": wall,
            "items": len(timings),
            "makespan": max(t.finish for t in timings.values()),
            "reference_extrapolated":
                t1 * (FANOUT_CHANNELS / (n1 * ITEMS_PER_CLIENT)) ** alpha,
            "vectorized": _numpy is not None,
        }
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(maybe_profile("schedule solver scaling sweep", sweep),
                                 rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)
    alpha = results.pop("alpha")
    fanout = results.pop("fanout")
    benchmark.extra_info["fanout_solve_s"] = round(
        fanout["incremental_wall"], 3)
    benchmark.extra_info["max_scale_solve_s"] = round(
        results[MAX_CHANNELS]["incremental_wall"], 3)

    table = PaperTable(
        experiment="Solver scaling",
        title="Transfer-schedule solve: incremental vs dense reference "
              "(host wall-clock)",
        columns=["channels", "items", "incremental", "reference", "speedup",
                 "simulated makespan"],
    )
    fanout_rows = [(f"{FANOUT_CHANNELS} (fan-out x1"
                    + (", numpy)" if fanout["vectorized"] else ")"),
                    fanout)]
    for channels, row in sorted(results.items()) + fanout_rows:
        if "reference_wall" in row:
            reference = row["reference_wall"]
            ref_label = human_duration(reference)
        else:
            reference = row["reference_extrapolated"]
            ref_label = f"~{human_duration(reference)} (extrapolated)"
        table.add_row(
            channels,
            row["items"],
            human_duration(row["incremental_wall"]),
            ref_label,
            f"{reference / row['incremental_wall']:.0f}x",
            human_duration(row["makespan"]),
        )
    table.note(f"reference cost fitted as n^{alpha:.2f} from the measured "
               f"scales <= {REFERENCE_CEILING} (fan-out row extrapolated "
               "by total item count); timings are solver runtime on the "
               "host, not simulated seconds")
    table.note("differential check: both solvers agree within 1e-6 s at "
               "every directly-measured scale")
    record_table(table)

    largest = results[MAX_CHANNELS]
    reference = largest.get("reference_wall",
                            largest.get("reference_extrapolated"))
    assert reference / largest["incremental_wall"] >= 10.0
    assert fanout["items"] == FANOUT_CHANNELS
    # Acceptance (host-time regression smoke): the 10k-channel fleet and
    # the 100k-channel fan-out each solve within the CI ceiling — and the
    # vectorized fan-out sub-second.  Skipped under ``--profile``, whose
    # instrumentation inflates every wall.
    if not maybe_profile.enabled:
        assert largest["incremental_wall"] <= MAX_CHANNELS_CEILING_S
        assert fanout["incremental_wall"] <= FANOUT_CEILING_S
        if fanout["vectorized"]:
            # Headline: a 100k-client index-pull wave resolves sub-second.
            assert fanout["incremental_wall"] < 1.0
    for row in results.values():
        if "worst_delta" in row:
            assert row["worst_delta"] < 1e-6
