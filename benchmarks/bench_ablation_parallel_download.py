"""Ablation A4 — parallel package downloading (the paper's future work).

Table 3's discussion: "the download time can be greatly reduced by
enabling parallel downloading. This performance improvement is left as
part of future work."  We implement it (concurrent waves round-robined
over the policy's mirrors) and quantify the repository-initialization
speedup against the paper's sequential behaviour.
"""

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario


def _init_time(workload, parallel: int) -> tuple[float, float]:
    scenario = build_scenario(workload=workload, key_bits=1024,
                              refresh=False, with_monitor=False)
    report = scenario.tsr.refresh(scenario.repo_id,
                                  parallel_downloads=parallel)
    return report.download_elapsed, report.total_elapsed


def test_ablation_parallel_download(benchmark):
    # A smaller population than the main scenario: this ablation rebuilds
    # the deployment once per configuration.
    workload = generate_workload(scale=0.008, seed=4, with_content=True)

    def sweep():
        return {parallel: _init_time(workload, parallel)
                for parallel in (1, 4, 8)}

    timings = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = PaperTable(
        experiment="Ablation A4",
        title="Parallel downloading (the paper's future-work item)",
        columns=["parallel connections", "download time", "speedup vs "
                 "sequential"],
    )
    sequential_download = timings[1][0]
    for parallel, (download, _total) in timings.items():
        table.add_row(parallel, human_duration(download),
                      f"{sequential_download / download:.1f}x")
    table.note("sequential (1) reproduces the paper's Table 3 behaviour; "
               "wave width bounded by mirror count and the shared downlink")
    record_table(table)

    # Shape: parallelism strictly reduces download time.
    assert timings[4][0] < timings[1][0]
    assert timings[8][0] <= timings[4][0] * 1.05
