"""Tests for the in-memory filesystem."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.osim.fs import SimFileSystem, normalize
from repro.util.errors import FileSystemError


@pytest.fixture()
def fs():
    return SimFileSystem()


class TestNormalize:
    def test_plain(self):
        assert normalize("/etc/passwd") == "/etc/passwd"

    def test_collapses_dots_and_slashes(self):
        assert normalize("/etc//./ssl/../passwd") == "/etc/passwd"

    def test_root(self):
        assert normalize("/") == "/"
        assert normalize("/..") == "/"

    def test_relative_rejected(self):
        with pytest.raises(FileSystemError):
            normalize("etc/passwd")


class TestFiles:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("/etc/motd", b"welcome")
        assert fs.read_file("/etc/motd") == b"welcome"

    def test_write_creates_parents(self, fs):
        fs.write_file("/usr/share/doc/pkg/README", b"x")
        assert fs.isdir("/usr/share/doc/pkg")

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileSystemError):
            fs.read_file("/nope")

    def test_overwrite_replaces_content(self, fs):
        fs.write_file("/f", b"one")
        fs.write_file("/f", b"two")
        assert fs.read_file("/f") == b"two"

    def test_overwrite_clears_xattrs(self, fs):
        fs.write_file("/f", b"one")
        fs.set_xattr("/f", "security.ima", b"sig")
        fs.write_file("/f", b"two")
        assert fs.get_xattr("/f", "security.ima") is None

    def test_append(self, fs):
        fs.write_file("/f", b"a")
        fs.append_file("/f", b"b")
        assert fs.read_file("/f") == b"ab"

    def test_append_to_missing_creates(self, fs):
        fs.append_file("/f", b"start")
        assert fs.read_file("/f") == b"start"

    def test_touch_creates_empty(self, fs):
        fs.touch("/var/run/lock")
        assert fs.read_file("/var/run/lock") == b""

    def test_touch_preserves_existing(self, fs):
        fs.write_file("/f", b"keep")
        fs.touch("/f")
        assert fs.read_file("/f") == b"keep"

    def test_mode(self, fs):
        fs.write_file("/bin/tool", b"#!", mode=0o755)
        assert fs.file_mode("/bin/tool") == 0o755
        fs.chmod("/bin/tool", 0o500)
        assert fs.file_mode("/bin/tool") == 0o500

    def test_write_directory_path_rejected(self, fs):
        fs.mkdir("/etc")
        with pytest.raises(FileSystemError):
            fs.write_file("/etc", b"nope")

    def test_non_bytes_content_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.write_file("/f", "text")  # type: ignore[arg-type]


class TestDirectories:
    def test_mkdir_and_listing(self, fs):
        fs.mkdir("/etc")
        fs.write_file("/etc/passwd", b"")
        fs.write_file("/etc/group", b"")
        assert fs.list_dir("/etc") == ["group", "passwd"]

    def test_mkdir_missing_parent_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.mkdir("/a/b/c")

    def test_mkdir_parents(self, fs):
        fs.mkdir("/a/b/c", parents=True)
        assert fs.isdir("/a/b/c")

    def test_mkdir_existing_rejected(self, fs):
        fs.mkdir("/a")
        with pytest.raises(FileSystemError):
            fs.mkdir("/a")

    def test_mkdir_parents_idempotent(self, fs):
        fs.mkdir("/a/b", parents=True)
        fs.mkdir("/a/b", parents=True)
        assert fs.isdir("/a/b")

    def test_remove_empty_dir(self, fs):
        fs.mkdir("/a")
        fs.remove("/a")
        assert not fs.exists("/a")

    def test_remove_nonempty_requires_recursive(self, fs):
        fs.write_file("/a/f", b"x")
        with pytest.raises(FileSystemError):
            fs.remove("/a")
        fs.remove("/a", recursive=True)
        assert not fs.exists("/a")

    def test_walk_files_sorted(self, fs):
        for path in ("/b/z", "/b/a", "/a", "/c/d/e"):
            fs.write_file(path, b"")
        assert fs.walk_files() == ["/a", "/b/a", "/b/z", "/c/d/e"]

    def test_walk_files_subtree(self, fs):
        fs.write_file("/x/1", b"")
        fs.write_file("/y/2", b"")
        assert fs.walk_files("/x") == ["/x/1"]


class TestSymlinks:
    def test_symlink_read_through(self, fs):
        fs.write_file("/lib/libssl.so.1.1", b"elf")
        fs.symlink("/lib/libssl.so.1.1", "/lib/libssl.so")
        assert fs.read_file("/lib/libssl.so") == b"elf"
        assert fs.issymlink("/lib/libssl.so")
        assert fs.readlink("/lib/libssl.so") == "/lib/libssl.so.1.1"

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/b", "/a")
        fs.symlink("/a", "/b")
        with pytest.raises(FileSystemError):
            fs.read_file("/a")

    def test_symlink_existing_target_rejected(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(FileSystemError):
            fs.symlink("/x", "/f")

    def test_dangling_symlink_exists_false(self, fs):
        fs.symlink("/missing", "/link")
        assert not fs.exists("/link")
        assert fs.issymlink("/link")


class TestRename:
    def test_rename_file(self, fs):
        fs.write_file("/a", b"data")
        fs.rename("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read_file("/b") == b"data"

    def test_rename_into_directory(self, fs):
        fs.write_file("/f", b"data")
        fs.mkdir("/dir")
        fs.rename("/f", "/dir")
        assert fs.read_file("/dir/f") == b"data"

    def test_rename_missing_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.rename("/nope", "/b")


class TestXattrs:
    def test_set_get_roundtrip(self, fs):
        fs.write_file("/bin/sh", b"#!")
        fs.set_xattr("/bin/sh", "security.ima", b"\x03sig")
        assert fs.get_xattr("/bin/sh", "security.ima") == b"\x03sig"
        assert fs.list_xattrs("/bin/sh") == {"security.ima": b"\x03sig"}

    def test_missing_xattr_is_none(self, fs):
        fs.write_file("/f", b"")
        assert fs.get_xattr("/f", "security.ima") is None

    def test_xattr_on_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileSystemError):
            fs.set_xattr("/d", "security.ima", b"x")


class TestHooks:
    def test_open_hook_fires_on_read(self, fs):
        seen = []
        fs.install_open_hook(lambda path, node: seen.append(path))
        fs.write_file("/etc/passwd", b"root")
        fs.read_file("/etc/passwd")
        fs.read_file("/etc/passwd")
        assert seen == ["/etc/passwd", "/etc/passwd"]

    def test_open_hook_can_veto(self, fs):
        def veto(path, node):
            raise FileSystemError(f"appraisal denied {path}")

        fs.write_file("/f", b"x")
        fs.install_open_hook(veto)
        with pytest.raises(FileSystemError):
            fs.read_file("/f")

    def test_write_hook_fires(self, fs):
        seen = []
        fs.install_write_hook(lambda path, node: seen.append(path))
        fs.write_file("/a", b"1")
        fs.append_file("/a", b"2")
        assert seen == ["/a", "/a"]


class TestPropertyBased:
    @given(st.lists(
        st.text(st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=8),
        min_size=1, max_size=6, unique=True,
    ), st.binary(max_size=100))
    @settings(max_examples=40)
    def test_write_then_read_any_path(self, segments, content):
        fs = SimFileSystem()
        path = "/" + "/".join(segments)
        fs.write_file(path, content)
        assert fs.read_file(path) == content
        assert path in fs.walk_files()
