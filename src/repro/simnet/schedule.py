"""The transfer-schedule solver: incremental max-min fluid-flow accounting.

Every concurrent transfer in the system — quorum reads, the pipelined
refresh engine, client batch fetches, and the fleet fan-out — runs on
:class:`ParallelTransferSchedule`.  Each *channel* (one connection)
processes its queue in order: a per-item setup phase (RTT + upload +
processing, no downlink use) followed by a payload phase whose rate is

    ``min(peer bandwidth, channel capacity, fair share of the shared link)``

where the *channel capacity* is an optional per-channel layer (a fleet
client's NIC downlink, see :meth:`ParallelTransferSchedule.limit_channel`)
and the shared link (``downlink_bandwidth``) is divided max-min fairly
among all payload phases active at the same instant.

:meth:`ParallelTransferSchedule.solve` is an *incremental* event-driven
simulation built for 10k+-channel fleets:

* a heap of next-completion events replaces the scan over every channel
  per event;
* the max-min allocation is tracked as a progressive-filling water level:
  streams whose cap sits below the level are *capped* (rate = cap,
  absolute finish time known), the rest are *level-bound* (rate = level).
  When a stream starts or finishes, only the *dirty set* — streams whose
  cap crosses the new level — moves between the two classes; everyone
  else's state is untouched;
* level-bound streams complete against a *virtual time* that integrates
  the level, so a level change revalues every level-bound deadline at
  once without touching any of them.

Per event the work is O(log channels) plus the dirty-set moves (amortized
small), against the reference solver's O(channels · log channels) full
recomputation.  The PR 2 reference loop is kept verbatim as
:meth:`ParallelTransferSchedule.solve_reference` for differential testing;
both solvers model the same fluid system and agree to float tolerance.

``solve`` does not advance any clock and does not consume the queues, so
callers may enqueue more work and re-solve (the refresh pipeline reinserts
retries into the live schedule this way).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass


@dataclass
class TransferTiming:
    """When one scheduled transfer started and finished (clock offsets)."""

    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class _StreamItem:
    key: object
    setup: float
    size_bytes: int
    bandwidth: float


def max_min_rates(caps: dict, capacity: float | None) -> dict:
    """Max-min fair allocation of a shared capacity among capped streams.

    Each stream receives at most its own cap (the peer's serving
    bandwidth); slack left by streams capped below the fair share is
    redistributed to the rest (progressive filling).  ``capacity=None``
    means the shared link is not the bottleneck.

    Ties between equal caps are broken by insertion order of ``caps``
    (enqueue order): the sort is stable and keys are never compared, so
    the allocation — including the order of the returned dict — is
    reproducible run to run even for keys whose ``repr`` contains a
    memory address.
    """
    if capacity is None or capacity >= sum(caps.values()):
        return dict(caps)
    rates: dict = {}
    remaining = capacity
    pending = sorted(caps.items(), key=lambda item: item[1])
    while pending:
        share = remaining / len(pending)
        key, cap = pending[0]
        if cap <= share:
            rates[key] = cap
            remaining -= cap
            pending.pop(0)
            continue
        for key, cap in pending:
            rates[key] = share
        break
    return rates


class ParallelTransferSchedule:
    """Fluid-flow accounting for concurrent downloads over serial channels.

    Each channel (one mirror connection / one fleet client) processes its
    queue in order; all payload phases active at the same instant share
    ``downlink_bandwidth`` max-min fairly, and each stream is additionally
    capped by its peer's bandwidth and by its channel's capacity layer
    (:meth:`limit_channel`), if set.

    :meth:`solve` runs the incremental event simulation (see the module
    docstring) and returns per-item :class:`TransferTiming` offsets; it
    does not advance any clock, so the caller decides how the makespan
    maps onto simulated time.  :meth:`solve_reference` is the dense PR 2
    solver, kept for differential testing.
    """

    def __init__(self, downlink_bandwidth: float | None = None,
                 channel_capacities: dict | None = None):
        if downlink_bandwidth is not None and downlink_bandwidth <= 0:
            raise ValueError("downlink bandwidth must be positive")
        self._downlink = downlink_bandwidth
        self._queues: dict[object, list[_StreamItem]] = {}
        self._channel_caps: dict[object, float] = {}
        for channel, cap in (channel_capacities or {}).items():
            self.limit_channel(channel, cap)

    def limit_channel(self, channel: object, bandwidth: float):
        """Cap every payload phase on ``channel`` at ``bandwidth``.

        The layered-capacity hook: a fleet client's NIC downlink bounds
        its stream no matter how much of the shared link is free.
        """
        if bandwidth <= 0:
            raise ValueError("channel capacity must be positive")
        self._channel_caps[channel] = bandwidth

    def enqueue(self, channel: object, key: object, setup: float,
                size_bytes: int, bandwidth: float):
        if setup < 0 or size_bytes < 0:
            raise ValueError("negative transfer parameters")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self._queues.setdefault(channel, []).append(
            _StreamItem(key=key, setup=setup, size_bytes=size_bytes,
                        bandwidth=bandwidth)
        )

    def _effective_cap(self, channel: object, bandwidth: float) -> float:
        limit = self._channel_caps.get(channel)
        return bandwidth if limit is None else min(bandwidth, limit)

    # -- incremental solver --------------------------------------------------

    def solve(self, start_time: float = 0.0) -> dict[object, TransferTiming]:
        timings: dict[object, TransferTiming] = {}
        queues = self._queues
        capacity = self._downlink

        # Stable per-channel serial numbers keep heap entries comparable
        # even when the channel objects themselves are not, and break
        # exact-time ties by enqueue order.
        order = {channel: n for n, channel in enumerate(queues)}

        index: dict[object, int] = {}
        started: dict[object, float] = {}

        # Active payload phases, keyed by channel (one stream at a time per
        # channel).  A stream is either "cap" (runs at its own effective
        # cap; datum = absolute finish time) or "lvl" (runs at the shared
        # water level; datum = virtual deadline).  ``epoch`` invalidates a
        # channel's stale heap entries after any class/datum change.
        cls_of: dict[object, str] = {}
        eff_cap: dict[object, float] = {}
        datum: dict[object, float] = {}
        epoch: dict[object, int] = {channel: 0 for channel in queues}

        capsum = 0.0        # total rate of "cap" streams
        nlvl = 0            # number of "lvl" streams
        level = math.inf    # current fair share of the shared link
        vnow = 0.0          # virtual time: integral of the level
        now = start_time

        setup_heap: list = []    # (abs end, order, channel) — never stale
        cap_heap: list = []      # (abs finish, order, epoch, channel)
        lvl_heap: list = []      # (virtual deadline, order, epoch, channel)
        capmax_heap: list = []   # (-eff cap, order, epoch, channel)
        lvlmin_heap: list = []   # (eff cap, order, epoch, channel)

        def push_cap(channel):
            entry = (order[channel], epoch[channel], channel)
            heapq.heappush(cap_heap, (datum[channel], *entry))
            heapq.heappush(capmax_heap, (-eff_cap[channel], *entry))

        def push_lvl(channel):
            entry = (order[channel], epoch[channel], channel)
            heapq.heappush(lvl_heap, (datum[channel], *entry))
            heapq.heappush(lvlmin_heap, (eff_cap[channel], *entry))

        def peek(heap, cls):
            """Top live entry of a lazy heap; stale entries are dropped."""
            while heap:
                value, _, entry_epoch, channel = heap[0]
                if cls_of.get(channel) == cls and epoch[channel] == entry_epoch:
                    return value, channel
                heapq.heappop(heap)
            return None

        def demote(channel):
            """cap -> lvl: the fair share fell below this stream's cap."""
            nonlocal capsum, nlvl
            remaining = (datum[channel] - now) * eff_cap[channel]
            capsum -= eff_cap[channel]
            nlvl += 1
            cls_of[channel] = "lvl"
            datum[channel] = vnow + max(0.0, remaining)
            epoch[channel] += 1
            push_lvl(channel)

        def promote(channel):
            """lvl -> cap: this stream's own cap binds again."""
            nonlocal capsum, nlvl
            remaining = datum[channel] - vnow
            nlvl -= 1
            capsum += eff_cap[channel]
            cls_of[channel] = "cap"
            datum[channel] = now + max(0.0, remaining) / eff_cap[channel]
            epoch[channel] += 1
            push_cap(channel)

        def rebalance():
            """Restore the water-fill invariants after the active set changed.

            Only the dirty set — streams whose cap crosses the moving
            level — changes class; every other stream's datum stays valid
            verbatim (capped finishes are absolute, level-bound deadlines
            are virtual).  Within one call the recomputed level only
            rises, so each stream moves at most twice and the loop always
            terminates at the unique water-fill solution.
            """
            nonlocal level
            if capacity is None:
                return
            while True:
                if nlvl == 0:
                    if capsum <= capacity:
                        level = math.inf
                        return
                    top = peek(capmax_heap, "cap")
                    demote(top[1])
                    continue
                level = (capacity - capsum) / nlvl
                top = peek(lvlmin_heap, "lvl")
                if top is not None and top[0] <= level:
                    promote(top[1])
                    continue
                top = peek(capmax_heap, "cap")
                if top is not None and -top[0] > level:
                    demote(top[1])
                    continue
                return

        def advance_channel(channel):
            """Start the next queued item's setup phase, if any."""
            queue = queues[channel]
            nxt = index[channel] + 1
            index[channel] = nxt
            if nxt < len(queue):
                started[(channel, nxt)] = now
                heapq.heappush(setup_heap,
                               (now + queue[nxt].setup, order[channel],
                                channel))

        def finish_item(channel, item):
            timings[item.key] = TransferTiming(
                start=started[(channel, index[channel])], finish=now)
            advance_channel(channel)

        def begin_transfer(channel, item):
            """Enter the payload phase; an empty payload completes now."""
            nonlocal capsum
            if item.size_bytes == 0:
                finish_item(channel, item)
                return
            cap = self._effective_cap(channel, item.bandwidth)
            eff_cap[channel] = cap
            cls_of[channel] = "cap"
            capsum += cap
            datum[channel] = now + item.size_bytes / cap
            epoch[channel] += 1
            push_cap(channel)
            rebalance()

        def complete_stream(channel):
            nonlocal capsum, nlvl
            item = queues[channel][index[channel]]
            if cls_of[channel] == "cap":
                capsum -= eff_cap[channel]
            else:
                nlvl -= 1
            del cls_of[channel]
            epoch[channel] += 1
            finish_item(channel, item)
            rebalance()

        for channel, queue in queues.items():
            index[channel] = 0
            if queue:
                started[(channel, 0)] = start_time
                heapq.heappush(setup_heap,
                               (start_time + queue[0].setup, order[channel],
                                channel))

        while True:
            # Next event: a setup ending, a capped stream draining, or the
            # earliest virtual deadline among level-bound streams.
            best = None
            if setup_heap:
                when, _, channel = setup_heap[0]
                best = (when, "setup", channel)
            top = peek(cap_heap, "cap")
            if top is not None and (best is None or top[0] < best[0]):
                best = (top[0], "cap", top[1])
            top = peek(lvl_heap, "lvl")
            if top is not None:
                when = now + max(0.0, top[0] - vnow) / level
                if best is None or when < best[0]:
                    best = (when, "lvl", top[1])
            if best is None:
                break
            when = max(best[0], now)
            if nlvl and when > now:
                vnow += level * (when - now)
            now = when
            kind, channel = best[1], best[2]
            if kind == "setup":
                heapq.heappop(setup_heap)
                begin_transfer(channel, queues[channel][index[channel]])
            else:
                complete_stream(channel)
        return timings

    # -- reference solver (PR 2), for differential testing -------------------

    def solve_reference(self, start_time: float = 0.0,
                        ) -> dict[object, TransferTiming]:
        """Dense per-event recomputation: every active stream's rate is
        rebuilt (with a sort) at every event.  O(events × channels log
        channels) — kept only to differentially validate :meth:`solve`,
        which must agree with it to float tolerance."""
        timings: dict[object, TransferTiming] = {}
        # Per-channel cursor state: (queue index, phase, phase datum).
        # phase "setup" -> datum is the absolute end of the setup phase;
        # phase "transfer" -> datum is the remaining payload bytes.
        state: dict[object, list] = {}
        started: dict[object, float] = {}
        for channel, queue in self._queues.items():
            if queue:
                state[channel] = [0, "setup", start_time + queue[0].setup]
                started[(channel, 0)] = start_time
        now = start_time
        while state:
            active = {
                channel: self._effective_cap(
                    channel, self._queues[channel][cursor[0]].bandwidth)
                for channel, cursor in state.items()
                if cursor[1] == "transfer"
            }
            rates = max_min_rates(active, self._downlink)
            horizons: dict[object, float] = {}
            for channel, cursor in state.items():
                if cursor[1] == "setup":
                    horizons[channel] = cursor[2]
                else:
                    rate = rates[channel]
                    horizons[channel] = (now + cursor[2] / rate if rate > 0
                                         else float("inf"))
            step_end = min(horizons.values())
            for channel, cursor in list(state.items()):
                if cursor[1] == "transfer":
                    if horizons[channel] <= step_end:
                        # This stream defines the event: complete it by
                        # identity, not subtraction — at large clock
                        # values the per-step drain can round to zero and
                        # leave a sub-epsilon residue that never clears.
                        cursor[2] = 0.0
                    else:
                        cursor[2] -= rates[channel] * (step_end - now)
            now = step_end
            for channel, cursor in list(state.items()):
                index, phase, datum = cursor
                item = self._queues[channel][index]
                if phase == "setup" and datum <= now + 1e-15:
                    state[channel] = [index, "transfer", float(item.size_bytes)]
                elif phase == "transfer" and datum <= 1e-9:
                    timings[item.key] = TransferTiming(
                        start=started[(channel, index)], finish=now
                    )
                    if index + 1 < len(self._queues[channel]):
                        nxt = self._queues[channel][index + 1]
                        state[channel] = [index + 1, "setup", now + nxt.setup]
                        started[(channel, index + 1)] = now
                    else:
                        del state[channel]
        return timings
