"""Tests for the Table-2 operation classifier."""

import pytest

from repro.scripts.classify import (
    OperationType,
    classify_package_scripts,
    classify_script,
)
from repro.util.errors import ScriptError


class TestCommandCategories:
    def test_filesystem_changes_safe(self):
        profile = classify_script(
            "mkdir -p /var/lib\nln -s /a /b\nchmod 755 /var/lib\nrm -f /tmp/x\n"
        )
        assert profile.operations == {OperationType.FILESYSTEM_CHANGE}
        assert profile.safe

    def test_empty_script(self):
        profile = classify_script("#!/bin/sh\n# nothing\ntrue\nexit 0\n")
        assert profile.is_empty
        assert profile.safe

    def test_script_with_no_commands_is_empty(self):
        profile = classify_script("#!/bin/sh\n")
        assert profile.is_empty
        assert profile.primary_category() is OperationType.EMPTY

    def test_conditional_checks_are_empty_category(self):
        profile = classify_script("if [ -f /etc/conf ]; then\n  echo found\nfi\n")
        assert profile.is_empty

    def test_text_processing_safe(self):
        profile = classify_script("grep -q root /etc/passwd\nsed s/a/b/ /etc/f\n")
        assert profile.operations == {OperationType.TEXT_PROCESSING}
        assert profile.safe

    def test_sed_in_place_is_config_change(self):
        profile = classify_script("sed -i s/80/8080/ /etc/app.conf\n")
        assert OperationType.CONFIG_CHANGE in profile.operations
        assert not profile.safe
        assert not profile.sanitizable

    def test_redirect_is_config_change(self):
        profile = classify_script("echo setting=1 >> /etc/app.conf\n")
        assert OperationType.CONFIG_CHANGE in profile.operations
        assert not profile.sanitizable

    def test_touch_is_empty_file_creation(self):
        profile = classify_script("touch /var/run/app.lock\n")
        assert profile.operations == {OperationType.EMPTY_FILE_CREATION}
        assert not profile.safe
        assert profile.sanitizable

    def test_adduser_is_user_group_creation(self):
        profile = classify_script("adduser -S -D -H postgres\naddgroup -S www\n")
        assert profile.operations == {OperationType.USER_GROUP_CREATION}
        assert not profile.safe
        assert profile.sanitizable

    def test_add_shell_is_shell_activation(self):
        profile = classify_script("add-shell /bin/bash\n")
        assert profile.operations == {OperationType.SHELL_ACTIVATION}
        assert not profile.safe
        assert not profile.sanitizable

    def test_unknown_command_rejected(self):
        with pytest.raises(ScriptError):
            classify_script("wget http://example\n")


class TestSafetyMatrix:
    """The Table 2 safe / safe-after-TSR matrix, row by row."""

    @pytest.mark.parametrize("op,safe,after_tsr", [
        (OperationType.FILESYSTEM_CHANGE, True, True),
        (OperationType.EMPTY, True, True),
        (OperationType.TEXT_PROCESSING, True, True),
        (OperationType.CONFIG_CHANGE, False, False),
        (OperationType.EMPTY_FILE_CREATION, False, True),
        (OperationType.USER_GROUP_CREATION, False, True),
        (OperationType.SHELL_ACTIVATION, False, False),
    ])
    def test_row(self, op, safe, after_tsr):
        assert op.safe is safe
        assert (op.safe or op.sanitizable) is after_tsr

    def test_labels_match_paper(self):
        assert OperationType.USER_GROUP_CREATION.label == "User/Group creation"
        assert OperationType.SHELL_ACTIVATION.label == "Shell activation"


class TestAggregation:
    def test_mixed_script_takes_worst_category(self):
        profile = classify_script(
            "mkdir /var/lib/pg\nadduser -S postgres\nadd-shell /bin/pgsh\n"
        )
        assert profile.primary_category() is OperationType.SHELL_ACTIVATION
        assert not profile.sanitizable

    def test_user_creation_with_filesystem_ops_sanitizable(self):
        profile = classify_script("mkdir -p /var/lib/redis\nadduser -S redis\n")
        assert profile.primary_category() is OperationType.USER_GROUP_CREATION
        assert profile.sanitizable

    def test_package_scripts_merged(self):
        profile = classify_package_scripts({
            ".pre-install": "adduser -S svc\n",
            ".post-install": "mkdir -p /var/lib/svc\n",
            ".post-upgrade": "true\n",
        })
        assert profile.operations == {
            OperationType.USER_GROUP_CREATION,
            OperationType.FILESYSTEM_CHANGE,
            OperationType.EMPTY,
        }
        assert profile.sanitizable
        assert profile.commands == 3

    def test_no_scripts_is_empty_profile(self):
        profile = classify_package_scripts({})
        assert profile.is_empty
        assert profile.safe

    def test_unsafe_operations_reported(self):
        profile = classify_script("touch /f\nsed -i s/a/b/ /etc/c\n")
        assert profile.unsafe_operations == {
            OperationType.EMPTY_FILE_CREATION,
            OperationType.CONFIG_CHANGE,
        }
