"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=600,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "trusted=True" in result.stdout
        assert "quickstart complete." in result.stdout

    def test_byzantine_mirrors(self):
        result = _run("byzantine_mirrors.py")
        assert result.returncode == 0, result.stderr
        assert "outvoted" in result.stdout

    def test_multitenant_policies(self):
        result = _run("multitenant_policies.py")
        assert result.returncode == 0, result.stderr
        assert "multi-tenant demo complete" in result.stdout

    def test_multi_tenant_refresh(self):
        result = _run("multi_tenant_refresh.py")
        assert result.returncode == 0, result.stderr
        assert "cross-tenant dedupe" in result.stdout
        assert "multi-tenant orchestrated refresh complete" in result.stdout

    def test_trace_replay(self):
        result = _run("trace_replay.py")
        assert result.returncode == 0, result.stderr
        assert "per-client staleness" in result.stdout
        assert "plan-wide interleaving" in result.stdout
        assert "trace replay complete." in result.stdout
