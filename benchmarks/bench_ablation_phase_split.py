"""Ablation A3 — where sanitization time goes, phase by phase.

Backs Table 4's correlation story with the raw split: archive processing
and signature generation dominate; integrity checking and script
rewriting are minor.  Also isolates the per-file signing cost (the paper's
dominant factor for many-file packages).
"""

from repro.bench.report import PaperTable, record_table
from repro.crypto.rsa import generate_keypair
from repro.ima.subsystem import ima_signature_for
from repro.util.stats import human_duration


def test_ablation_phase_split(content_scenario, benchmark):
    results = content_scenario.refresh_report.results

    totals = {"verify": 0.0, "archive": 0.0, "scripts": 0.0, "sign": 0.0}
    for result in results:
        totals["verify"] += result.timings.verify
        totals["archive"] += result.timings.archive
        totals["scripts"] += result.timings.scripts
        totals["sign"] += result.timings.sign
    grand_total = sum(totals.values())

    table = PaperTable(
        experiment="Ablation A3",
        title="Sanitization time split by phase (whole repository)",
        columns=["phase", "time", "share"],
    )
    for phase in ("archive", "sign", "verify", "scripts"):
        table.add_row(phase, human_duration(totals[phase]),
                      f"{100 * totals[phase] / grand_total:.1f}%")
    table.add_row("total", human_duration(grand_total), "100%")
    table.note("paper: archive+signing dominate (Table 4 discussion); "
               "signing cost is per-file (256-byte RSA-2048 signatures)")
    record_table(table)

    # Micro-benchmark the per-file signing primitive in isolation.
    key = generate_keypair(2048, seed=33)
    payload = b"\x7fELF" + bytes(4096)
    benchmark(ima_signature_for, payload, key)

    # Shape: archive + signing dominate the pipeline.
    assert totals["archive"] + totals["sign"] > 0.6 * grand_total
    assert totals["scripts"] < 0.2 * grand_total
