"""Fuzz suite for content-defined chunking and the chunk diff/patch layer.

The delta path's correctness rests on three properties exercised here with
randomized inputs (fixed seeds — failures reproduce):

* **Tiling** — chunk offsets partition any input exactly, within the
  ``[MIN_CHUNK, MAX_CHUNK]`` bounds (trailing chunk excepted).
* **Round-trip** — for random base/target pairs related by insert, delete,
  and replace edits (including edits straddling chunk boundaries), the
  encoded op stream patches the base back to the *exact* target bytes.
* **Re-chunk stability** — a one-byte edit re-synchronizes within a
  bounded window, so the diff ships a small literal instead of rewriting
  every chunk (the property that makes deltas small at all).
"""

import random

import pytest

from repro.archive.chunks import (
    MAX_CHUNK,
    MIN_CHUNK,
    apply_chunk_ops,
    build_chunk_ops,
    chunk_id,
    chunk_ids,
    chunk_map,
    chunk_offsets,
    decode_ops,
    encode_ops,
)
from repro.util.errors import DeltaError


def _random_bytes(rng: random.Random, size: int) -> bytes:
    return rng.randbytes(size)


def _roundtrip(base: bytes, target: bytes) -> bytes:
    """Diff target against base, wire-encode, decode, patch — like the
    TSR (manifest side) and a client (bytes side) do."""
    ops = build_chunk_ops(set(chunk_ids(base)), target)
    wire = encode_ops(ops)
    return apply_chunk_ops(decode_ops(wire), chunk_map(base))


class TestChunkOffsets:
    @pytest.mark.parametrize("size", [0, 1, MIN_CHUNK - 1, MIN_CHUNK,
                                      MIN_CHUNK + 1, MAX_CHUNK,
                                      MAX_CHUNK + 1, 5 * MAX_CHUNK + 17])
    def test_tiling_is_exact(self, size):
        rng = random.Random(size)
        data = _random_bytes(rng, size)
        offsets = chunk_offsets(data)
        if size == 0:
            assert offsets == []
            return
        assert offsets[0][0] == 0
        assert offsets[-1][1] == size
        for (_, prev_end), (start, _) in zip(offsets, offsets[1:]):
            assert prev_end == start
        assert b"".join(data[s:e] for s, e in offsets) == data

    def test_bounds_respected_except_trailing(self):
        rng = random.Random(99)
        data = _random_bytes(rng, 64 * 1024)
        offsets = chunk_offsets(data)
        for start, end in offsets[:-1]:
            assert MIN_CHUNK <= end - start <= MAX_CHUNK
        assert offsets[-1][1] - offsets[-1][0] <= MAX_CHUNK

    def test_deterministic(self):
        data = _random_bytes(random.Random(3), 20_000)
        assert chunk_offsets(data) == chunk_offsets(data)
        assert chunk_ids(data) == chunk_ids(data)

    def test_chunking_is_content_defined_not_positional(self):
        """A prefix insertion shifts positions but the cut points
        re-synchronize: most chunk ids survive the shift."""
        rng = random.Random(4)
        data = _random_bytes(rng, 32 * 1024)
        shifted = _random_bytes(rng, 7) + data
        survived = set(chunk_ids(data)) & set(chunk_ids(shifted))
        assert len(survived) >= len(chunk_ids(data)) - 3

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            chunk_offsets(b"x" * 100, min_size=0)
        with pytest.raises(ValueError):
            chunk_offsets(b"x" * 100, min_size=64, max_size=32)


class TestDiffPatchRoundTrip:
    #: (seed, base size) grid: sizes below/above one chunk and multi-chunk.
    CASES = [(seed, size)
             for seed in range(8)
             for size in (200, MIN_CHUNK, 3 * 1024, 40 * 1024)]

    @pytest.mark.parametrize("seed,size", CASES)
    def test_random_mutations_roundtrip(self, seed, size):
        rng = random.Random(f"mut:{seed}:{size}")
        base = _random_bytes(rng, size)
        target = bytearray(base)
        for _ in range(rng.randrange(1, 5)):
            kind = rng.choice(("insert", "delete", "replace"))
            if not target:
                kind = "insert"
            at = rng.randrange(len(target) + 1)
            if kind == "insert":
                target[at:at] = _random_bytes(rng, rng.randrange(1, 300))
            elif kind == "delete":
                del target[at:at + rng.randrange(1, 300)]
            else:
                span = rng.randrange(1, 300)
                target[at:at + span] = _random_bytes(rng, span)
        assert _roundtrip(base, bytes(target)) == bytes(target)

    @pytest.mark.parametrize("seed", range(6))
    def test_boundary_straddling_edits_roundtrip(self, seed):
        """Edits placed exactly across a chunk boundary of the base."""
        rng = random.Random(f"straddle:{seed}")
        base = _random_bytes(rng, 24 * 1024)
        offsets = chunk_offsets(base)
        assert len(offsets) >= 3
        _, boundary = offsets[rng.randrange(len(offsets) - 1)]
        target = bytearray(base)
        # Replace a window centered on the boundary, then insert at it.
        target[boundary - 4:boundary + 4] = _random_bytes(rng, 16)
        target[boundary:boundary] = _random_bytes(rng, 64)
        assert _roundtrip(base, bytes(target)) == bytes(target)

    def test_disjoint_inputs_roundtrip_as_pure_literals(self):
        rng = random.Random(12)
        base = _random_bytes(rng, 8 * 1024)
        target = _random_bytes(rng, 8 * 1024)
        ops = build_chunk_ops(set(chunk_ids(base)), target)
        assert all(kind == "literal" for kind, _ in ops)
        assert len(ops) == 1  # adjacent literals merge
        assert _roundtrip(base, target) == target

    def test_identical_inputs_are_all_copies(self):
        data = _random_bytes(random.Random(13), 16 * 1024)
        ops = build_chunk_ops(set(chunk_ids(data)), data)
        assert all(kind == "copy" for kind, _ in ops)
        assert apply_chunk_ops(ops, chunk_map(data)) == data

    def test_empty_target(self):
        base = _random_bytes(random.Random(14), 4096)
        assert _roundtrip(base, b"") == b""


class TestRechunkStability:
    @pytest.mark.parametrize("seed", range(5))
    def test_one_byte_edit_ships_bounded_literals(self, seed):
        """The delta-efficiency property: one flipped byte must not
        invalidate chunks far from the edit."""
        rng = random.Random(f"stable:{seed}")
        base = _random_bytes(rng, 64 * 1024)
        at = rng.randrange(len(base))
        target = base[:at] + bytes([base[at] ^ 0xA5]) + base[at + 1:]
        ops = build_chunk_ops(set(chunk_ids(base)), target)
        literal = sum(len(v) for kind, v in ops if kind == "literal")
        # The edit dirties its own chunk; re-synchronization may cost a
        # neighbour or two, never a constant fraction of the payload.
        assert literal <= 3 * MAX_CHUNK
        assert _roundtrip(base, target) == target


class TestWireEncoding:
    def test_decode_rejects_malformations(self):
        good = encode_ops([("copy", chunk_id(b"x" * 600)),
                           ("literal", b"abc")])
        assert decode_ops(good)  # sanity: the well-formed stream parses
        for bad in [
            b"",                          # empty → no terminator
            good[:-3],                    # truncated terminator
            good + b"x",                  # trailing bytes
            b"R:nothex\nE:\n",            # bad chunk reference
            b"R:" + b"a" * 20 + b"\nE:\n",  # wrong id length
            b"L:9999\nabc" + b"E:\n",     # literal length overruns
            b"L:-1\nE:\n",                # negative length
            b"Q:0\nE:\n",                 # unknown op
        ]:
            with pytest.raises(DeltaError):
                decode_ops(bad)

    def test_apply_rejects_unknown_chunk(self):
        ops = [("copy", "0" * 16)]
        with pytest.raises(DeltaError):
            apply_chunk_ops(ops, {})

    def test_encode_decode_identity(self):
        rng = random.Random(21)
        base = _random_bytes(rng, 20 * 1024)
        target = base[:7000] + b"EDIT" + base[7100:]
        ops = build_chunk_ops(set(chunk_ids(base)), target)
        assert decode_ops(encode_ops(ops)) == ops
