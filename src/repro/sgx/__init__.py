"""Intel SGX simulator: enclaves, sealing, attestation, EPC cost model.

TSR relies on SGX for four properties (paper sections 4.4, 5.5, 6.2):

1. **confidentiality** — the signing key lives in enclave memory an
   adversary with root cannot read;
2. **sealing** — state persisted to untrusted disk is bound to the CPU and
   the enclave measurement;
3. **remote attestation** — clients deploy policies only after verifying
   the enclave's identity (MRENCLAVE) on a genuine CPU;
4. **the EPC performance cliff** — working sets beyond the ~128 MB enclave
   page cache page in/out with a measurable slowdown (Fig. 12).

This package models all four explicitly; the cost model's calibration is
documented in EXPERIMENTS.md.
"""

from repro.sgx.platform import SgxCpu, AttestationService
from repro.sgx.enclave import Enclave, EnclaveQuote
from repro.sgx.sealing import seal, unseal
from repro.sgx.epc import EpcModel, DEFAULT_EPC_BYTES

__all__ = [
    "SgxCpu",
    "AttestationService",
    "Enclave",
    "EnclaveQuote",
    "seal",
    "unseal",
    "EpcModel",
    "DEFAULT_EPC_BYTES",
]
