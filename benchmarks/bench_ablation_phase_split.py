"""Ablation A3 — where refresh time goes, phase by phase.

Backs Table 4's correlation story with the raw split: archive processing
and signature generation dominate; integrity checking and script
rewriting are minor.  Also isolates the per-file signing cost (the paper's
dominant factor for many-file packages), and — new — measures how much of
the phased wall-clock the pipelined refresh engine claws back by
overlapping downloads and sanitization (identical verdicts in both modes).
"""

from repro.bench.report import PaperTable, record_table
from repro.crypto.rsa import generate_keypair
from repro.ima.subsystem import ima_signature_for
from repro.util.stats import human_duration
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario


def test_ablation_phase_split(content_scenario, benchmark):
    results = content_scenario.refresh_report.results

    totals = {"verify": 0.0, "archive": 0.0, "scripts": 0.0, "sign": 0.0}
    for result in results:
        totals["verify"] += result.timings.verify
        totals["archive"] += result.timings.archive
        totals["scripts"] += result.timings.scripts
        totals["sign"] += result.timings.sign
    grand_total = sum(totals.values())

    table = PaperTable(
        experiment="Ablation A3",
        title="Sanitization time split by phase (whole repository)",
        columns=["phase", "time", "share"],
    )
    for phase in ("archive", "sign", "verify", "scripts"):
        table.add_row(phase, human_duration(totals[phase]),
                      f"{100 * totals[phase] / grand_total:.1f}%")
    table.add_row("total", human_duration(grand_total), "100%")
    table.note("paper: archive+signing dominate (Table 4 discussion); "
               "signing cost is per-file (256-byte RSA-2048 signatures)")
    record_table(table)

    # Micro-benchmark the per-file signing primitive in isolation.
    key = generate_keypair(2048, seed=33)
    payload = b"\x7fELF" + bytes(4096)
    benchmark(ima_signature_for, payload, key)

    # Shape: archive + signing dominate the pipeline.
    assert totals["archive"] + totals["sign"] > 0.6 * grand_total
    assert totals["scripts"] < 0.2 * grand_total


def test_ablation_pipeline_overlap():
    """Sequential vs pipelined refresh over the same multi-package workload.

    The pipelined engine must (a) reach the same sanitization verdicts and
    (b) beat the sequential schedule on simulated wall-clock, because the
    phases overlap instead of running back to back.
    """
    workload = generate_workload(scale=0.008, seed=4, with_content=True)

    sequential = build_scenario(workload=workload, key_bits=1024,
                                refresh=False, with_monitor=False)
    seq_report = sequential.tsr.refresh(sequential.repo_id)

    pipelined = build_scenario(workload=workload, key_bits=1024,
                               refresh=False, with_monitor=False)
    pipe_report = pipelined.tsr.refresh(pipelined.repo_id, pipelined=True)

    table = PaperTable(
        experiment="Ablation A3b",
        title="Phased vs pipelined refresh (same workload, same verdicts)",
        columns=["mode", "download", "sanitize", "wall-clock", "overlap saved"],
    )
    for label, report in (("sequential", seq_report),
                          ("pipelined", pipe_report)):
        table.add_row(label,
                      human_duration(report.download_elapsed),
                      human_duration(report.sanitize_elapsed),
                      human_duration(report.total_elapsed),
                      human_duration(report.overlap_saved))
    table.note(f"pipelined sanitized {pipe_report.sanitized_early} of "
               f"{pipe_report.sanitized} packages before the catalog "
               "barrier; verdict sets are asserted identical")
    record_table(table)

    # Identical verdicts: same sanitized package set, same rejections.
    assert ({r.package.name for r in seq_report.results}
            == {r.package.name for r in pipe_report.results})
    assert (dict(seq_report.rejected) == dict(pipe_report.rejected))
    # The pipeline beats the phased schedule on simulated wall-clock.
    assert pipe_report.total_elapsed < seq_report.total_elapsed
    # Overlap really happened: resource-seconds exceed the wall-clock.
    assert (pipe_report.download_elapsed + pipe_report.sanitize_elapsed
            > pipe_report.total_elapsed - pipe_report.quorum_elapsed)
