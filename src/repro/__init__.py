"""Reproduction of *A practical approach for updating an integrity-enforced
operating system* (TSR — Trusted Software Repository, Middleware 2020).

Public API tour:

* :mod:`repro.core` — TSR itself: policies, quorum reads, sanitization,
  the enclave-hosted service, repository clients.
* :mod:`repro.osim` — the integrity-enforced OS: measured boot, IMA-hooked
  filesystem, apk-like package manager.
* :mod:`repro.attest` — the remote integrity monitoring system.
* :mod:`repro.mirrors` — original repository + honest/Byzantine mirrors.
* :mod:`repro.workload` — synthetic Alpine-calibrated workloads and the
  one-call :func:`repro.workload.build_scenario` deployment builder.
* Substrates: :mod:`repro.crypto`, :mod:`repro.archive`,
  :mod:`repro.scripts`, :mod:`repro.tpm`, :mod:`repro.sgx`,
  :mod:`repro.ima`, :mod:`repro.simnet`.
"""

__version__ = "1.0.0"

from repro.workload.scenario import Scenario, build_scenario
from repro.workload.generator import generate_workload, generate_update_batch
from repro.core.service import TrustedSoftwareRepository
from repro.core.policy import SecurityPolicy
from repro.attest.monitor import MonitoringSystem

__all__ = [
    "__version__",
    "Scenario",
    "build_scenario",
    "generate_workload",
    "generate_update_batch",
    "TrustedSoftwareRepository",
    "SecurityPolicy",
    "MonitoringSystem",
]
