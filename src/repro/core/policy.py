"""Security policies (paper Listing 1).

A policy is what an organization deploys to its TSR repository: which
mirrors to read (with pinned certificate chains), which package signers to
trust, and the initial contents of the account configuration files the
organization ships on its nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rsa import RsaPublicKey
from repro.simnet.latency import Continent
from repro.util.errors import PolicyError
from repro.util.miniyaml import MiniYamlError, dump_yaml, parse_yaml

#: Default initial account files, used when a policy omits
#: ``init_config_files`` (matches the OS baseline).
DEFAULT_INIT_CONFIG = {
    "/etc/passwd": (
        "root:x:0:0:root:/root:/bin/ash\n"
        "daemon:x:2:2:daemon:/sbin:/sbin/nologin\n"
        "nobody:x:65534:65534:nobody:/:/sbin/nologin\n"
    ),
    "/etc/shadow": (
        "root:!:0:0:99999:7:::\n"
        "daemon:!:0:0:99999:7:::\n"
        "nobody:!:0:0:99999:7:::\n"
    ),
    "/etc/group": (
        "root:x:0:\n"
        "daemon:x:2:root,bin,daemon\n"
        "nobody:x:65534:\n"
    ),
}


@dataclass(frozen=True)
class MirrorPolicyEntry:
    """One mirror the policy allows TSR to read."""

    hostname: str
    continent: Continent = Continent.EUROPE
    certificate_chain: str = ""


@dataclass
class SecurityPolicy:
    """A parsed, validated security policy."""

    mirrors: list[MirrorPolicyEntry]
    signers_keys: list[RsaPublicKey]
    init_config_files: dict[str, str] = field(default_factory=lambda: dict(DEFAULT_INIT_CONFIG))
    #: Optional package allow/deny lists (the "private variant" the paper
    #: sketches at the end of section 4.5).
    package_whitelist: frozenset[str] | None = None
    package_blacklist: frozenset[str] = frozenset()

    def __post_init__(self):
        if not self.mirrors:
            raise PolicyError("policy must list at least one mirror")
        if not self.signers_keys:
            raise PolicyError("policy must trust at least one package signer key")
        seen = set()
        for mirror in self.mirrors:
            if mirror.hostname in seen:
                raise PolicyError(f"duplicate mirror {mirror.hostname!r}")
            seen.add(mirror.hostname)
        for path in ("/etc/passwd", "/etc/shadow", "/etc/group"):
            if path not in self.init_config_files:
                raise PolicyError(f"init_config_files must include {path}")

    # -- fault tolerance -----------------------------------------------------

    @property
    def fault_tolerance(self) -> int:
        """f such that the mirror set is 2f+1 (extra mirrors are spares)."""
        return (len(self.mirrors) - 1) // 2

    def quorum_size(self) -> int:
        return self.fault_tolerance + 1

    # -- package filtering -----------------------------------------------------

    def allows_package(self, name: str) -> bool:
        if name in self.package_blacklist:
            return False
        if self.package_whitelist is not None:
            return name in self.package_whitelist
        return True

    # -- (de)serialization --------------------------------------------------------

    @classmethod
    def from_yaml(cls, text: str) -> "SecurityPolicy":
        try:
            raw = parse_yaml(text)
        except MiniYamlError as exc:
            raise PolicyError(f"policy is not valid YAML: {exc}") from exc
        if not isinstance(raw, dict):
            raise PolicyError("policy document must be a mapping")
        mirrors = []
        for item in _require_list(raw, "mirrors"):
            if not isinstance(item, dict) or "hostname" not in item:
                raise PolicyError("each mirror needs at least a hostname")
            continent_text = item.get("continent", "europe")
            try:
                continent = Continent.parse(str(continent_text))
            except ValueError as exc:
                raise PolicyError(str(exc)) from exc
            mirrors.append(MirrorPolicyEntry(
                hostname=item["hostname"],
                continent=continent,
                certificate_chain=item.get("certificate_chain", "") or "",
            ))
        signers = []
        for pem in _require_list(raw, "signers_keys"):
            if not isinstance(pem, str):
                raise PolicyError("signers_keys entries must be PEM strings")
            signers.append(RsaPublicKey.from_pem(pem))
        init_config = dict(DEFAULT_INIT_CONFIG)
        for item in raw.get("init_config_files") or []:
            if not isinstance(item, dict) or "path" not in item or "content" not in item:
                raise PolicyError("init_config_files entries need path and content")
            content = item["content"]
            if not content.endswith("\n"):
                content += "\n"
            init_config[item["path"]] = content
        whitelist = raw.get("package_whitelist")
        blacklist = raw.get("package_blacklist") or []
        return cls(
            mirrors=mirrors,
            signers_keys=signers,
            init_config_files=init_config,
            package_whitelist=frozenset(whitelist) if whitelist is not None else None,
            package_blacklist=frozenset(blacklist),
        )

    def to_yaml(self) -> str:
        doc: dict = {
            "mirrors": [
                {
                    "hostname": m.hostname,
                    "continent": m.continent.value,
                    **({"certificate_chain": m.certificate_chain}
                       if m.certificate_chain else {}),
                }
                for m in self.mirrors
            ],
            "signers_keys": [key.to_pem() for key in self.signers_keys],
            "init_config_files": [
                {"path": path, "content": content}
                for path, content in sorted(self.init_config_files.items())
            ],
        }
        if self.package_whitelist is not None:
            doc["package_whitelist"] = sorted(self.package_whitelist)
        if self.package_blacklist:
            doc["package_blacklist"] = sorted(self.package_blacklist)
        return dump_yaml(doc)


def _require_list(raw: dict, key: str) -> list:
    value = raw.get(key)
    if not isinstance(value, list) or not value:
        raise PolicyError(f"policy must define a non-empty {key!r} list")
    return value
