"""AST node types for the shell subset.

A script is a sequence of statements; each statement is either a
conditional list (pipelines joined by ``&&`` / ``||`` / ``;``) or an ``if``
statement.  Redirections attach to individual commands.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Redirect:
    """Stdout redirection: ``> path`` (truncate) or ``>> path`` (append)."""

    path: str
    append: bool = False


@dataclass
class Command:
    """A simple command: name, arguments, optional stdout redirect."""

    name: str
    args: list[str] = field(default_factory=list)
    redirect: Redirect | None = None
    line: int = 0

    def argv(self) -> list[str]:
        return [self.name, *self.args]

    def render(self) -> str:
        parts = [_quote(self.name), *(_quote(a) for a in self.args)]
        if self.redirect is not None:
            parts.append(">>" if self.redirect.append else ">")
            parts.append(_quote(self.redirect.path))
        return " ".join(parts)


@dataclass
class Pipeline:
    """Commands joined by ``|``; the last command's status is the result."""

    commands: list[Command]

    def render(self) -> str:
        return " | ".join(c.render() for c in self.commands)


@dataclass
class ConditionalList:
    """Pipelines joined by connectors.

    ``connectors[i]`` joins ``pipelines[i]`` to ``pipelines[i+1]`` and is one
    of ``"&&"``, ``"||"``, or ``";"``.
    """

    pipelines: list[Pipeline]
    connectors: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [self.pipelines[0].render()]
        for connector, pipeline in zip(self.connectors, self.pipelines[1:]):
            joiner = "; " if connector == ";" else f" {connector} "
            parts.append(joiner + pipeline.render())
        return "".join(parts)


@dataclass
class IfStatement:
    """``if <condition>; then <body> [else <body>] fi``."""

    condition: "ConditionalList"
    then_body: list["Statement"]
    else_body: list["Statement"] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"if {self.condition.render()}; then"]
        lines.extend("  " + stmt.render() for stmt in self.then_body)
        if self.else_body:
            lines.append("else")
            lines.extend("  " + stmt.render() for stmt in self.else_body)
        lines.append("fi")
        return "\n".join(lines)


Statement = ConditionalList | IfStatement


@dataclass
class Script:
    """A parsed installation script."""

    statements: list[Statement]
    shebang: str | None = None

    def render(self) -> str:
        """Regenerate shell source (used by the sanitizer to emit scripts)."""
        lines = []
        if self.shebang:
            lines.append(self.shebang)
        lines.extend(stmt.render() for stmt in self.statements)
        return "\n".join(lines) + "\n"

    def iter_commands(self):
        """Yield every Command in the script, recursing into if-statements."""
        yield from _iter_commands(self.statements)


def _iter_commands(statements: list[Statement]):
    for statement in statements:
        if isinstance(statement, ConditionalList):
            for pipeline in statement.pipelines:
                yield from pipeline.commands
        elif isinstance(statement, IfStatement):
            for pipeline in statement.condition.pipelines:
                yield from pipeline.commands
            yield from _iter_commands(statement.then_body)
            yield from _iter_commands(statement.else_body)


_SAFE_WORD_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "._-/=:+,@%^[]!"
)


def _quote(word: str) -> str:
    if word and all(c in _SAFE_WORD_CHARS for c in word):
        return word
    return "'" + word.replace("'", "'\\''") + "'"
