"""Linux IMA (integrity measurement architecture) simulator.

Hooks the simulated VFS open path exactly where the kernel's IMA sits:
every file is measured (hashed, appended to the measurement list, extended
into PCR 10) before its content reaches the caller.  With appraisal
enabled, files must carry a valid ``security.ima`` signature from the
trusted keyring or the open is denied (IMA-appraisal enforce mode) — the
paper's local enforcement mechanism (section 3.2, problem 1).
"""

from repro.ima.subsystem import (
    AppraisalMode,
    ImaMeasurement,
    ImaSubsystem,
    ima_signature_for,
)

__all__ = [
    "AppraisalMode",
    "ImaMeasurement",
    "ImaSubsystem",
    "ima_signature_for",
]
