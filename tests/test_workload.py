"""Tests for the synthetic workload generator."""

import pytest

from repro.scripts.classify import OperationType, classify_package_scripts
from repro.workload.generator import (
    PAPER_TOTALS,
    generate_update_batch,
    generate_workload,
)


@pytest.fixture(scope="module")
def workload():
    return generate_workload(scale=0.01, seed=42)


class TestCensus:
    def test_total_count_scales(self, workload):
        expected = round(PAPER_TOTALS["packages"] * 0.01)
        assert workload.expectation.packages == pytest.approx(expected, abs=5)
        assert len(workload.packages) == workload.expectation.packages

    def test_script_proportions_match_paper(self, workload):
        """~97.6 % of packages must be scriptless (Table 1)."""
        scriptless = sum(1 for p in workload.packages if not p.scripts)
        fraction = scriptless / len(workload.packages)
        assert 0.90 < fraction < 0.99

    def test_every_category_present(self, workload):
        kinds = set(workload.category.values())
        for kind in ("fs_only", "empty", "text_only", "user_group",
                     "config_only", "shell", "empty_file"):
            assert kind in kinds, kind

    def test_ground_truth_matches_classifier(self, workload):
        """The generator's labels must agree with the real classifier."""
        for package in workload.packages:
            kind = workload.category[package.name]
            profile = classify_package_scripts(package.scripts)
            if kind is None:
                assert not package.scripts
            elif kind in ("fs_only", "empty", "text_only"):
                assert profile.safe, (package.name, kind)
            elif kind in ("user_group", "empty_file"):
                assert not profile.safe and profile.sanitizable, package.name
            else:  # config_only, shell, user_group_config
                assert not profile.sanitizable, package.name

    def test_unsupported_fraction_small(self, workload):
        expected = workload.expectation
        assert expected.unsupported <= expected.unsafe_scripts
        # Paper: 0.24 % unsupported. Small scales inflate this via the
        # one-per-category minimum; it must still stay a tiny minority.
        assert expected.unsupported / expected.packages < 0.05

    def test_insecure_packages_present(self, workload):
        assert workload.expectation.insecure >= 1
        insecure = [
            p for p in workload.packages
            if any("passwd -d" in s for s in p.scripts.values())
        ]
        assert len(insecure) >= workload.expectation.insecure


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = generate_workload(scale=0.005, seed=3)
        b = generate_workload(scale=0.005, seed=3)
        assert a.names() == b.names()
        assert a.packages[0].files[0].content == b.packages[0].files[0].content

    def test_different_seed_different_content(self):
        a = generate_workload(scale=0.005, seed=3)
        b = generate_workload(scale=0.005, seed=4)
        assert a.packages[0].files[0].content != b.packages[0].files[0].content


class TestShapes:
    def test_size_distribution_skewed(self, workload):
        sizes = sorted(
            sum(len(f.content) for f in p.files) for p in workload.packages
        )
        median = sizes[len(sizes) // 2]
        assert sizes[-1] > 10 * median  # heavy tail

    def test_dependencies_acyclic(self, workload):
        position = {p.name: i for i, p in enumerate(workload.packages)}
        for package in workload.packages:
            for dep in package.depends:
                assert position[dep] < position[package.name]

    def test_metadata_only_mode_small(self):
        light = generate_workload(scale=0.01, seed=42, with_content=False)
        assert light.total_content_bytes() < 100_000

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            generate_workload(scale=0)
        with pytest.raises(ValueError):
            generate_workload(scale=1.5)


class TestUpdateBatches:
    def test_batch_bumps_versions(self, workload):
        batch = generate_update_batch(workload, fraction=0.1, seed=1)
        by_name = {p.name: p for p in workload.packages}
        assert len(batch) == max(1, int(len(workload.packages) * 0.1))
        for updated in batch:
            original = by_name[updated.name]
            assert updated.version != original.version

    def test_batch_changes_content(self, workload):
        batch = generate_update_batch(workload, fraction=0.05, seed=2)
        by_name = {p.name: p for p in workload.packages}
        changed = any(
            u.files and by_name[u.name].files
            and u.files[0].content != by_name[u.name].files[0].content
            for u in batch
        )
        assert changed

    def test_batch_deterministic(self, workload):
        a = generate_update_batch(workload, fraction=0.1, seed=9)
        b = generate_update_batch(workload, fraction=0.1, seed=9)
        assert [p.name for p in a] == [p.name for p in b]

    def test_rejects_bad_fraction(self, workload):
        with pytest.raises(ValueError):
            generate_update_batch(workload, fraction=0)
