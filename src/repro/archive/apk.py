"""The apk v2 package container (paper Figure 3).

An ``.apk`` is three concatenated gzip streams:

1. **signature segment** — a tar holding ``.SIGN.RSA.<key-name>``: an RSA
   signature issued over the *compressed control segment bytes*;
2. **control segment** — a tar holding ``.PKGINFO`` (name, version, deps,
   and ``datahash`` — the SHA-256 of the compressed data segment) plus the
   installation scripts (``.pre-install``, ``.post-install``, …);
3. **data segment** — a tar with the software-specific files; after
   sanitization each file entry carries its IMA signature in a
   ``SCHILY.xattr.security.ima`` PAX record.

The signature therefore certifies the control segment, and the control
segment's ``datahash`` certifies the data segment — exactly the chain the
paper describes under Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive.gz import (
    gzip_compress_cached,
    gzip_compress_cached_with_cost,
    gzip_decompress,
    split_gzip_streams,
)
from repro.archive.tar import TarEntry, read_tar, write_tar
from repro.crypto.hashes import sha256_bytes, sha256_hex
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.util.errors import IntegrityError, PackagingError, SignatureError

SIGNATURE_PAX_KEY = "SCHILY.xattr.security.ima"

#: Script hook names apk supports, in the order the package manager runs them.
SCRIPT_HOOKS = (
    ".pre-install",
    ".post-install",
    ".pre-upgrade",
    ".post-upgrade",
    ".pre-deinstall",
    ".post-deinstall",
)


@dataclass
class PackageFile:
    """One file shipped in the data segment."""

    path: str
    content: bytes
    mode: int = 0o644
    ima_signature: bytes | None = None


@dataclass
class ApkPackage:
    """In-memory representation of an apk package."""

    name: str
    version: str
    arch: str = "x86_64"
    description: str = ""
    depends: list[str] = field(default_factory=list)
    scripts: dict[str, str] = field(default_factory=dict)
    files: list[PackageFile] = field(default_factory=list)
    #: Signatures over predicted config files, installed by sanitized
    #: scripts (paper section 4.2); maps target path -> signature bytes.
    config_signatures: dict[str, bytes] = field(default_factory=dict)

    def __post_init__(self):
        for hook in self.scripts:
            if hook not in SCRIPT_HOOKS:
                raise PackagingError(f"unknown script hook {hook!r}")

    @property
    def full_name(self) -> str:
        return f"{self.name}-{self.version}"

    def file_map(self) -> dict[str, PackageFile]:
        return {f.path: f for f in self.files}

    # -- serialization -----------------------------------------------------

    def _control_tar(self, data_blob: bytes) -> bytes:
        pkginfo_lines = [
            f"pkgname = {self.name}",
            f"pkgver = {self.version}",
            f"arch = {self.arch}",
            f"pkgdesc = {self.description}",
            f"datahash = {sha256_hex(data_blob)}",
        ]
        pkginfo_lines.extend(f"depend = {dep}" for dep in self.depends)
        entries = [TarEntry(name=".PKGINFO",
                            data="\n".join(pkginfo_lines).encode() + b"\n")]
        for hook in SCRIPT_HOOKS:
            if hook in self.scripts:
                entries.append(TarEntry(name=hook, mode=0o755,
                                        data=self.scripts[hook].encode()))
        if self.config_signatures:
            for path in sorted(self.config_signatures):
                entry = TarEntry(name=f".config-sig{path}",
                                 data=self.config_signatures[path])
                entries.append(entry)
        return write_tar(entries)

    def _data_tar(self) -> bytes:
        entries = []
        for pkg_file in sorted(self.files, key=lambda f: f.path):
            entry = TarEntry(
                name=pkg_file.path.lstrip("/"),
                data=pkg_file.content,
                mode=pkg_file.mode,
            )
            if pkg_file.ima_signature is not None:
                entry.set_xattr("security.ima", pkg_file.ima_signature)
            entries.append(entry)
        return write_tar(entries)

    def _data_tar_gz(self) -> bytes:
        return gzip_compress_cached(self._data_tar())

    def build_segments(self, signing_key: RsaPrivateKey,
                       key_name: str = "builder") -> tuple[bytes, bytes, bytes]:
        """The three compressed segments (signature, control, data).

        Incremental repack: each segment compresses through the
        deterministic-gzip memo, so a rebuild only re-deflates the
        segments whose members actually changed — an unchanged data tar
        splices its previously compressed bytes even when the control
        segment (and therefore the signature) was rewritten.  The
        resulting bytes are pinned identical to a cold full repack by the
        differential suite.
        """
        segments, _ = self._build_segments_with_cost(signing_key, key_name)
        return segments

    def _build_segments_with_cost(
            self, signing_key: RsaPrivateKey,
            key_name: str) -> tuple[tuple[bytes, bytes, bytes], float]:
        data_gz, data_cost = gzip_compress_cached_with_cost(self._data_tar())
        control_gz, control_cost = gzip_compress_cached_with_cost(
            self._control_tar(data_gz))
        signature = signing_key.sign(control_gz)
        signature_tar = write_tar(
            [TarEntry(name=f".SIGN.RSA.{key_name}.rsa.pub", data=signature)]
        )
        signature_gz, signature_cost = gzip_compress_cached_with_cost(
            signature_tar)
        cost = data_cost + control_cost + signature_cost
        return (signature_gz, control_gz, data_gz), cost

    def build(self, signing_key: RsaPrivateKey, key_name: str = "builder") -> bytes:
        """Serialize and sign, producing the on-the-wire apk bytes."""
        signature_gz, control_gz, data_gz = self.build_segments(
            signing_key, key_name=key_name)
        return signature_gz + control_gz + data_gz

    def build_with_cost(self, signing_key: RsaPrivateKey,
                        key_name: str = "builder") -> tuple[bytes, float]:
        """Like :meth:`build`, also reporting the host seconds the deflate
        work originally cost (memo hits report the recorded fresh cost)."""
        segments, cost = self._build_segments_with_cost(signing_key, key_name)
        return b"".join(segments), cost

    # -- parsing / verification --------------------------------------------

    @classmethod
    def parse(cls, blob: bytes) -> "ParsedApk":
        """Split an apk into its segments and decode metadata."""
        segments = split_gzip_streams(blob, expected=3)
        signature_entries = read_tar(gzip_decompress(segments[0]))
        control_entries = read_tar(gzip_decompress(segments[1]))
        signature = None
        signer_name = None
        for entry in signature_entries:
            if entry.name.startswith(".SIGN.RSA."):
                signature = entry.data
                signer_name = entry.name[len(".SIGN.RSA."):]
        if signature is None:
            raise PackagingError("apk missing .SIGN.RSA signature entry")
        pkginfo = None
        scripts: dict[str, str] = {}
        config_signatures: dict[str, bytes] = {}
        for entry in control_entries:
            if entry.name == ".PKGINFO":
                pkginfo = entry.data.decode()
            elif entry.name in SCRIPT_HOOKS:
                scripts[entry.name] = entry.data.decode()
            elif entry.name.startswith(".config-sig"):
                config_signatures[entry.name[len(".config-sig"):]] = entry.data
        if pkginfo is None:
            raise PackagingError("apk control segment missing .PKGINFO")
        meta = _parse_pkginfo(pkginfo)
        data_entries = read_tar(gzip_decompress(segments[2]))
        files = []
        for entry in data_entries:
            if not entry.is_file:
                continue
            files.append(PackageFile(
                path="/" + entry.name.lstrip("/"),
                content=entry.data,
                mode=entry.mode,
                ima_signature=entry.xattrs().get("security.ima"),
            ))
        package = cls(
            name=meta["pkgname"],
            version=meta["pkgver"],
            arch=meta.get("arch", "x86_64"),
            description=meta.get("pkgdesc", ""),
            depends=meta.get("depends", []),
            scripts=scripts,
            files=files,
            config_signatures=config_signatures,
        )
        return ParsedApk(
            package=package,
            signature=signature,
            signer_name=signer_name,
            control_gz=segments[1],
            data_gz=segments[2],
            datahash=meta["datahash"],
        )


@dataclass
class ParsedApk:
    """A parsed apk: the package plus the raw segments needed to verify it."""

    package: ApkPackage
    signature: bytes
    signer_name: str | None
    control_gz: bytes
    data_gz: bytes
    datahash: str

    def verify(self, trusted_keys: list[RsaPublicKey]) -> RsaPublicKey:
        """Full chain check: signature over control, datahash over data.

        Returns the key that verified the signature, or raises.
        """
        return self.verify_with_cost(trusted_keys)[0]

    def verify_with_cost(
            self, trusted_keys: list[RsaPublicKey]
    ) -> tuple[RsaPublicKey, float]:
        """Like :meth:`verify`, also reporting the host seconds the chain
        check originally cost (signature verdicts are memoized; the
        recorded cost lets enclave-time models charge hits as fresh)."""
        signer = None
        cost = 0.0
        for key in trusted_keys:
            ok, verify_cost = key.verify_with_cost(self.control_gz,
                                                   self.signature)
            cost += verify_cost
            if ok:
                signer = key
                break
        if signer is None:
            raise SignatureError(
                f"package {self.package.full_name}: control segment signature "
                "did not verify under any trusted key"
            )
        actual = sha256_hex(self.data_gz)
        if actual != self.datahash:
            raise IntegrityError(
                f"package {self.package.full_name}: datahash mismatch "
                f"(control says {self.datahash[:12]}…, data is {actual[:12]}…)"
            )
        return signer, cost


def _parse_pkginfo(text: str) -> dict:
    """Parse the ``key = value`` lines of .PKGINFO."""
    meta: dict = {"depends": []}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "=" not in line:
            raise PackagingError(f"malformed .PKGINFO line: {line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "depend":
            meta["depends"].append(value)
        else:
            meta[key] = value
    for required in ("pkgname", "pkgver", "datahash"):
        if required not in meta:
            raise PackagingError(f".PKGINFO missing required field {required!r}")
    return meta


def package_content_hash(blob: bytes) -> str:
    """Hash of the full apk file, as recorded in the repository index."""
    return sha256_hex(blob)


def package_size(blob: bytes) -> int:
    return len(blob)


__all__ = [
    "ApkPackage",
    "PackageFile",
    "ParsedApk",
    "SCRIPT_HOOKS",
    "SIGNATURE_PAX_KEY",
    "package_content_hash",
    "package_size",
    "sha256_bytes",
]
