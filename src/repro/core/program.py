"""The code that runs *inside* the SGX enclave.

Everything security-critical happens here: per-repository signing keys are
generated and used only inside; mirror responses are signature-checked and
quorum-counted inside; cached blobs are hash-checked against the in-enclave
sanitized index before being released to clients; state leaves the enclave
only sealed.

The host (``repro.core.service``) performs all I/O — network, disk, TPM —
and feeds results in through ecalls, the standard SGX partitioning.
"""

from __future__ import annotations

import json

from repro.archive.index import IndexEntry, RepositoryIndex, parse_index_cached
from repro.core.catalog import RepositoryCatalog, extract_scan_delta
from repro.core.policy import SecurityPolicy
from repro.core.sanitizer import PackageAnalysis, SanitizationResult, Sanitizer
from repro.crypto.hashes import hmac_sha256, sha256_hex
from repro.crypto.rsa import generate_keypair
from repro.scripts.accounts import GroupSpec, UserSpec
from repro.util.errors import (
    IntegrityError,
    PolicyError,
    QuorumError,
    RollbackError,
)


class _RepositoryState:
    """In-enclave state of one tenant repository."""

    def __init__(self, repo_id: str, policy: SecurityPolicy, signing_key):
        self.repo_id = repo_id
        self.policy = policy
        self.signing_key = signing_key
        self.upstream_index: RepositoryIndex | None = None
        self.sanitized_index = RepositoryIndex(serial=0)
        self.catalog = RepositoryCatalog()
        self.sanitizer: Sanitizer | None = None
        #: Provisional sanitizer for the pipelined refresh: usable before
        #: the catalog is frozen, but only on packages whose rewrite does
        #: not read the catalog (no account-creation commands).
        self.early_sanitizer: Sanitizer | None = None

    def build_sanitizer(self) -> Sanitizer:
        sanitizer = Sanitizer(
            signing_key=self.signing_key,
            trusted_signers=self.policy.signers_keys,
            catalog=self.catalog,
            init_config=self.policy.init_config_files,
        )
        return sanitizer


class _SharedRefreshContext:
    """Cross-tenant dedupe memos for one orchestrated refresh plan.

    Scoped to a single ``begin_shared_refresh`` / ``end_shared_refresh``
    window so the single-repository refresh paths keep their historical
    per-call cost; everything memoized here is *content-determined*:

    * scan records — the account-operation delta and catalog dependency
      of one blob (pure function of the bytes), replayed per repository
      via :meth:`RepositoryCatalog.apply_delta`;
    * package analyses — the parse/verify/classify/filter half of
      sanitization, keyed by blob hash *and* trusted-signer set (two
      tenants trusting different signers never share a verification).
    """

    def __init__(self):
        #: blob hash -> (generation, scan record).
        self.scan_memo: dict[str, tuple[int, dict]] = {}
        #: (blob hash, signer set) -> (generation, analysis, prescan info).
        self.analysis_memo: dict[tuple, tuple[int, PackageAnalysis, dict]] = {}
        #: Persistent windows (multi-round replay plans) bump this per
        #: round.  A hit from the *current* generation is a cross-tenant
        #: dedupe and accounts as before; a hit from an *earlier*
        #: generation is a cross-round replay — it skips the host work
        #: but reports the recorded costs of the original computation, so
        #: per-round counters and simulated enclave time are identical to
        #: recomputing from scratch.
        self.generation = 0
        self.scan_hits = 0
        self.scan_misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        self.scan_replays = 0
        self.analysis_replays = 0

    def renew(self):
        """Start the next round of a persistent window."""
        self.generation += 1
        self.scan_hits = 0
        self.scan_misses = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        self.scan_replays = 0
        self.analysis_replays = 0

    def stats(self) -> dict:
        return {
            "scan_hits": self.scan_hits,
            "scan_misses": self.scan_misses,
            "analysis_hits": self.analysis_hits,
            "analysis_misses": self.analysis_misses,
            "scan_replays": self.scan_replays,
            "analysis_replays": self.analysis_replays,
        }


class TsrProgram:
    """Enclave program implementing the TSR trusted core."""

    def __init__(self, key_bits: int = 2048):
        self._key_bits = key_bits
        self._repos: dict[str, _RepositoryState] = {}
        self._enclave = None  # bound via _bind_enclave (EGETKEY analog)
        self._shared: _SharedRefreshContext | None = None

    def _bind_enclave(self, enclave):
        self._enclave = enclave

    def _sealing_key(self) -> bytes:
        if self._enclave is None:
            raise PolicyError("enclave facilities not bound")
        return self._enclave.sealing_key()

    def _repo(self, repo_id: str) -> _RepositoryState:
        if repo_id not in self._repos:
            raise PolicyError(f"unknown repository id: {repo_id}")
        return self._repos[repo_id]

    # -- policy deployment ------------------------------------------------------

    def deploy_policy(self, policy_yaml: str) -> dict:
        """Create a tenant repository; returns id + public signing key.

        The signing key is derived deterministically from the enclave
        sealing key and the repository id: it exists only inside this
        enclave on this CPU, and the same enclave can re-derive it after a
        restart even without sealed state.
        """
        policy = SecurityPolicy.from_yaml(policy_yaml)
        repo_id = f"repo-{len(self._repos) + 1:04d}"
        seed = int.from_bytes(
            hmac_sha256(self._sealing_key(), b"signing-key:" + repo_id.encode())[:8],
            "big",
        )
        signing_key = generate_keypair(self._key_bits, seed=seed)
        self._repos[repo_id] = _RepositoryState(repo_id, policy, signing_key)
        return {
            "repo_id": repo_id,
            "public_key_pem": signing_key.public_key.to_pem(),
            "mirrors": [
                {"hostname": m.hostname, "continent": m.continent.value}
                for m in policy.mirrors
            ],
            "fault_tolerance": policy.fault_tolerance,
        }

    def public_key_pem(self, repo_id: str) -> str:
        return self._repo(repo_id).signing_key.public_key.to_pem()

    # -- quorum evaluation ---------------------------------------------------------

    def evaluate_quorum(self, repo_id: str,
                        responses: list[tuple[str, bytes]]) -> dict:
        """Count mirror index responses inside the enclave.

        ``responses`` are (hostname, raw index bytes) pairs collected by the
        untrusted host.  Returns the accepted serial and the list of
        packages that changed vs. the enclave's known upstream index, or
        raises :class:`QuorumError` if no value has f+1 valid votes.
        """
        state = self._repo(repo_id)
        needed = state.policy.fault_tolerance + 1
        votes: dict[str, list[str]] = {}
        parsed: dict[str, RepositoryIndex] = {}
        # Batched verification: the widening host re-submits the full
        # accumulated response set each round, and f+1 honest mirrors echo
        # identical bytes — the blob-level parse memo and the RSA verify
        # memo make every repeat a dictionary hit, so each distinct signed
        # index costs one parse and one modular exponentiation per process
        # no matter how many envelopes carry it.
        for hostname, blob in responses:
            try:
                index = parse_index_cached(bytes(blob))
            except Exception:
                continue
            if not any(index.verify(k) for k in state.policy.signers_keys):
                continue
            votes.setdefault(index.body_hash(), []).append(hostname)
            parsed.setdefault(index.body_hash(), index)
        winner = next(
            (h for h, names in votes.items() if len(names) >= needed), None
        )
        if winner is None:
            raise QuorumError(
                f"no index value reached {needed} matching valid responses "
                f"out of {len(responses)}"
            )
        accepted = parsed[winner]
        if state.upstream_index is None:
            changed = sorted(accepted.entries)
        else:
            if accepted.serial < state.upstream_index.serial:
                raise RollbackError(
                    f"quorum index serial {accepted.serial} older than known "
                    f"serial {state.upstream_index.serial} (replay attack)"
                )
            changed = [e.name for e in accepted.diff_updated(state.upstream_index)]
        changed = [name for name in changed if state.policy.allows_package(name)]
        state.upstream_index = accepted
        return {
            "serial": accepted.serial,
            "changed": changed,
            "agreeing": votes[winner],
            # Expected blob identities, so the host can validate its cache
            # before re-downloading (the enclave re-checks regardless).
            "expected": {
                name: {"sha256": accepted.entries[name].sha256,
                       "size": accepted.entries[name].size}
                for name in changed
            },
        }

    # -- shared refresh (multi-tenant dedupe) ------------------------------------------

    def begin_shared_refresh(self, keep: bool = False):
        """Open a cross-tenant dedupe window (orchestrated refresh plans).

        While open, content-determined scan records and package analyses
        are memoized by blob hash and shared across repositories; the
        per-repository halves (catalog replay, prelude splicing, signing,
        repacking) always run per tenant, so outputs are byte-identical
        to unshared refreshes.

        With ``keep=True`` the window is *persistent* across rounds of a
        multi-round replay: if one is already open its generation is
        bumped and its per-round counters reset instead of raising.
        Cross-generation memo hits replay the stored analysis *with its
        original recorded timings* — charged exactly like recomputing —
        and report ``deduped=False``, so per-round accounting and every
        simulated duration are identical to cold rounds; only redundant
        host work is skipped.
        """
        if self._shared is not None:
            if not keep:
                raise PolicyError("a shared refresh is already in progress")
            self._shared.renew()
            return
        self._shared = _SharedRefreshContext()

    def end_shared_refresh(self, keep: bool = False) -> dict:
        """Close the dedupe window; returns its hit/miss counters.

        With ``keep=True`` (persistent windows) the round's counters are
        returned but the memos survive for the next round."""
        if self._shared is None:
            raise PolicyError("no shared refresh in progress")
        stats = self._shared.stats()
        if not keep:
            self._shared = None
        return stats

    def _scan_record(self, blob: bytes) -> tuple[dict, bool]:
        """(scan record, memo hit?) for one blob; memoized when shared."""
        from repro.archive.apk import parse_apk_cached_with_cost
        from repro.scripts.classify import OperationType, classify_package_scripts
        from repro.util.errors import ScriptError

        shared = self._shared
        digest = None
        if shared is not None:
            digest = sha256_hex(bytes(blob))
            cached = shared.scan_memo.get(digest)
            if cached is not None:
                generation, record = cached
                if generation == shared.generation:
                    shared.scan_hits += 1
                    return record, True
                # Cross-round replay: account as a fresh scan (the round
                # is charged identically) but skip the parse/classify.
                shared.scan_memo[digest] = (shared.generation, record)
                shared.scan_misses += 1
                shared.scan_replays += 1
                return record, False
        # The scan phase charges no simulated time, so the pool-fed parse
        # memo only removes host work here; outcomes are unchanged.
        package = parse_apk_cached_with_cost(bytes(blob), digest)[0].package
        delta = extract_scan_delta(package)
        try:
            profile = classify_package_scripts(package.scripts)
            needs_catalog = OperationType.USER_GROUP_CREATION in profile.operations
        except ScriptError:
            # Unparseable/unsupported scripts are rejected during
            # sanitization regardless of catalog state.
            needs_catalog = False
        record = {"delta": delta, "needs_catalog": needs_catalog}
        if shared is not None:
            shared.scan_memo[digest] = (shared.generation, record)
            shared.scan_misses += 1
        return record, False

    def analyze_blob(self, repo_id: str, blob: bytes) -> dict:
        """Optimistic pre-scan: warm the shared memos for a local blob.

        Called by the orchestrator while a quorum is still *widening*, for
        f+1-agreed index entries whose original blob is already in the
        package cache — zero network, and the parse/verify/classify work
        moves off the sanitize-phase queue head.  Only the
        content-determined halves run: nothing is verified against an
        accepted index (there is none yet) and no per-repository state is
        touched, so a pre-scan can never change verdicts or output bytes.
        A wrong blob fed by a malicious host memoizes under *its own*
        hash, which the real sanitize pass then never looks up.

        Returns the simulated-cost inputs for the enclave channel:
        ``native`` seconds of analysis work actually performed (0.0 on a
        memo hit) and the analysis working-set estimate.
        """
        if self._shared is None:
            raise PolicyError(
                "analyze_blob requires an open shared refresh window"
            )
        state = self._repo(repo_id)
        blob = bytes(blob)
        shared = self._shared
        record, scan_hit = self._scan_record(blob)
        del record  # memoized for later scan_package calls; not applied
        key = (
            sha256_hex(blob),
            tuple(k.fingerprint() for k in state.policy.signers_keys),
        )
        cached = shared.analysis_memo.get(key)
        if cached is not None:
            generation, analysis, info = cached
            if generation == shared.generation:
                return {"deduped": True, "native": 0.0, "working_set": 0}
            # Cross-round replay: report the originally recorded analysis
            # cost and working set, exactly as a cold recomputation would.
            shared.analysis_memo[key] = (shared.generation, analysis, info)
            shared.analysis_misses += 1
            shared.analysis_replays += 1
            return {"deduped": False, **info}
        if state.early_sanitizer is None:
            state.early_sanitizer = state.build_sanitizer()
        analysis = state.early_sanitizer.analyze_blob(blob)
        uncompressed = sum(len(f.content) for f in analysis.package.files)
        info = {
            "native": analysis.timings.total,
            "working_set": analysis.original_size + uncompressed,
        }
        shared.analysis_memo[key] = (shared.generation, analysis, info)
        shared.analysis_misses += 1
        return {"deduped": False, **info}

    def prewarm_sanitize(self, repo_id: str, blobs: list[bytes]) -> dict:
        """Fan this round's known sanitize work out to the host pool.

        Precomputes the content- and repository-determined halves of
        sanitization for ``blobs`` on worker processes and installs the
        results into the cost-honest memos the serial sanitize phase
        consumes.  Pure host-side acceleration: results carry the
        worker-measured costs, installation order is deterministic, and
        with the pool disabled this is a no-op — the serial path is
        bit-for-bit the pre-pool one.  Untrusted blobs are safe to submit:
        a blob that fails verification memoizes its analysis (including
        the failure) under its own content hash, and the serial pass
        raises at exactly the point it always did.
        """
        from repro.core.sanitizer import sanitize_prewarm_batch
        from repro.util.hostpool import get_pool

        pool = get_pool()
        if pool is None:
            return {"prewarmed": 0}
        state = self._repo(repo_id)
        installed = sanitize_prewarm_batch(
            [bytes(blob) for blob in blobs],
            state.policy.signers_keys,
            state.signing_key,
            pool=pool,
        )
        return {"prewarmed": installed}

    # -- catalog & sanitization -------------------------------------------------------

    def scan_for_accounts(self, repo_id: str, blob: bytes):
        """Feed one upstream package through the account scanner."""
        state = self._repo(repo_id)
        self._check_upstream_blob(state, blob)
        record, _ = self._scan_record(blob)
        state.catalog.apply_delta(record["delta"])

    def scan_package(self, repo_id: str, blob: bytes) -> dict:
        """Account-scan one package and report its catalog dependency.

        ``needs_catalog`` is True when the package's scripts contain
        account-creation commands: sanitizing it splices in the
        repository-wide deterministic prelude, so it must wait for
        :meth:`finish_catalog`.  Everything else can be sanitized the
        moment its blob arrives — the pipelined refresh engine uses this to
        overlap sanitization with ongoing downloads.

        Inside a shared refresh the parse/extract half is memoized by
        blob hash (``deduped`` reports a hit); the delta replay against
        this repository's catalog always runs.
        """
        state = self._repo(repo_id)
        entry = self._check_upstream_blob(state, blob)
        record, deduped = self._scan_record(blob)
        state.catalog.apply_delta(record["delta"])
        return {"name": entry.name,
                "needs_catalog": record["needs_catalog"],
                "deduped": deduped}

    def finish_catalog(self, repo_id: str) -> dict:
        """Freeze the catalog and build the sanitizer."""
        state = self._repo(repo_id)
        state.sanitizer = state.build_sanitizer()
        state.early_sanitizer = None
        return {
            "users": len(state.catalog.users),
            "groups": len(state.catalog.groups),
            "insecure_findings": list(state.catalog.insecure_findings),
        }

    def sanitize_package(self, repo_id: str, blob: bytes) -> SanitizationResult:
        """Verify an upstream blob against the quorum index and sanitize it."""
        state = self._repo(repo_id)
        if state.sanitizer is None:
            raise PolicyError("catalog not finalized: call finish_catalog first")
        return self._sanitize_with(state, state.sanitizer, blob)

    def sanitize_package_precatalog(self, repo_id: str,
                                    blob: bytes) -> SanitizationResult:
        """Sanitize a catalog-independent package before ``finish_catalog``.

        Legal only for packages :meth:`scan_package` reported as
        ``needs_catalog=False``: their rewrite never reads the account
        catalog, so the output is byte-identical whether the catalog is
        empty, partial, or frozen.  A package that turns out to splice the
        account prelude is refused — the host scheduler made an illegal
        overlap.
        """
        from repro.scripts.classify import OperationType

        state = self._repo(repo_id)
        if state.early_sanitizer is None:
            state.early_sanitizer = state.build_sanitizer()
        return self._sanitize_with(
            state, state.early_sanitizer, blob,
            forbid=OperationType.USER_GROUP_CREATION,
        )

    def _sanitize_with(self, state: _RepositoryState, sanitizer: Sanitizer,
                       blob: bytes, forbid=None) -> SanitizationResult:
        entry = self._check_upstream_blob(state, blob)
        shared = self._shared
        if shared is None:
            result = sanitizer.sanitize_blob(bytes(blob))
        else:
            # Shared refresh: the content-determined analysis (parse,
            # verify, classify, filter — including a recorded rejection)
            # is memoized per (blob, trusted signer set); the repository-
            # determined half (prelude, signatures, repack) always runs.
            key = (
                sha256_hex(bytes(blob)),
                tuple(k.fingerprint() for k in state.policy.signers_keys),
            )
            cached = shared.analysis_memo.get(key)
            if cached is None:
                analysis = sanitizer.analyze_blob(bytes(blob))
                uncompressed = sum(
                    len(f.content) for f in analysis.package.files)
                info = {
                    "native": analysis.timings.total,
                    "working_set": analysis.original_size + uncompressed,
                }
                shared.analysis_memo[key] = (shared.generation, analysis,
                                             info)
                shared.analysis_misses += 1
                result = sanitizer.finish_from_analysis(analysis)
            elif cached[0] == shared.generation:
                shared.analysis_hits += 1
                result = sanitizer.finish_from_analysis(cached[1].charged())
                result.shared_analysis = True
            else:
                # Cross-round replay: the stored analysis keeps its
                # original recorded timings, so the result is charged as
                # if recomputed from scratch; only host work is skipped.
                analysis = cached[1]
                shared.analysis_memo[key] = (shared.generation, analysis,
                                             cached[2])
                shared.analysis_misses += 1
                shared.analysis_replays += 1
                result = sanitizer.finish_from_analysis(analysis)
        if forbid is not None and forbid in result.profile.operations:
            raise PolicyError(
                "catalog-dependent package sanitized before finish_catalog "
                "(pipeline scheduling bug)"
            )
        state.sanitized_index.add(IndexEntry(
            name=entry.name,
            version=entry.version,
            size=len(result.blob),
            sha256=sha256_hex(result.blob),
            depends=entry.depends,
        ))
        return result

    def finalize_index(self, repo_id: str) -> bytes:
        """Sign the sanitized index; serial mirrors the upstream serial."""
        state = self._repo(repo_id)
        if state.upstream_index is None:
            raise PolicyError("no upstream index accepted yet")
        state.sanitized_index.serial = state.upstream_index.serial
        state.sanitized_index.sign(state.signing_key)
        return state.sanitized_index.to_bytes()

    def sanitized_index_bytes(self, repo_id: str) -> bytes:
        state = self._repo(repo_id)
        if state.sanitized_index.signature is None:
            raise PolicyError("sanitized index not finalized yet")
        return state.sanitized_index.to_bytes()

    def check_cached_blob(self, repo_id: str, name: str, blob: bytes) -> bool:
        """Rollback defence: a cached blob must match the in-enclave index."""
        state = self._repo(repo_id)
        entry = state.sanitized_index.get(name)
        if entry is None:
            raise IntegrityError(f"package {name!r} not in sanitized index")
        if len(blob) != entry.size or sha256_hex(bytes(blob)) != entry.sha256:
            raise RollbackError(
                f"cached package {name!r} does not match the sanitized index "
                "(tampered or rolled-back cache)"
            )
        return True

    def _check_upstream_blob(self, state: _RepositoryState,
                             blob: bytes) -> IndexEntry:
        if state.upstream_index is None:
            raise PolicyError("no upstream index accepted yet")
        digest = sha256_hex(bytes(blob))
        for entry in state.upstream_index.entries.values():
            if entry.sha256 == digest and entry.size == len(blob):
                return entry
        raise IntegrityError(
            "upstream blob does not match any entry of the quorum-validated "
            "index (corrupt mirror download)"
        )

    # -- attestation -------------------------------------------------------------------

    def quote_for_repo(self, repo_id: str) -> dict:
        """Remote-attestation quote binding this enclave to the repo key."""
        state = self._repo(repo_id)
        fingerprint = state.signing_key.public_key.fingerprint()
        quote = self._enclave.quote(report_data=fingerprint.encode())
        return {
            "quote": quote,
            "public_key_pem": state.signing_key.public_key.to_pem(),
        }

    # -- sealing ------------------------------------------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot of all tenant state (sealed by the host
        flow in :class:`FreshnessManager`; keys are re-derived, not stored)."""
        snapshot: dict = {}
        for repo_id, state in self._repos.items():
            snapshot[repo_id] = {
                "policy_yaml": state.policy.to_yaml(),
                "upstream_index": (
                    state.upstream_index.to_bytes().hex()
                    if state.upstream_index is not None else None
                ),
                "sanitized_index": (
                    state.sanitized_index.to_bytes().hex()
                    if state.sanitized_index.signature is not None else None
                ),
                "catalog": _catalog_to_dict(state.catalog),
            }
        return snapshot

    def restore_state(self, snapshot: dict):
        """Rebuild tenant state from an (already freshness-checked) export."""
        for repo_id, raw in snapshot.items():
            policy = SecurityPolicy.from_yaml(raw["policy_yaml"])
            seed = int.from_bytes(
                hmac_sha256(self._sealing_key(),
                            b"signing-key:" + repo_id.encode())[:8],
                "big",
            )
            signing_key = generate_keypair(self._key_bits, seed=seed)
            state = _RepositoryState(repo_id, policy, signing_key)
            if raw.get("upstream_index"):
                state.upstream_index = RepositoryIndex.from_bytes(
                    bytes.fromhex(raw["upstream_index"])
                )
            if raw.get("sanitized_index"):
                state.sanitized_index = RepositoryIndex.from_bytes(
                    bytes.fromhex(raw["sanitized_index"])
                )
            state.catalog = _catalog_from_dict(raw.get("catalog", {}))
            state.sanitizer = state.build_sanitizer()
            self._repos[repo_id] = state

    def repository_ids(self) -> list[str]:
        return sorted(self._repos)


def _catalog_to_dict(catalog: RepositoryCatalog) -> dict:
    return {
        "users": [
            {
                "name": u.name, "uid": u.uid, "gid": u.gid, "home": u.home,
                "shell": u.shell, "gecos": u.gecos,
            }
            for u in catalog.users.values()
        ],
        "groups": [
            {"name": g.name, "gid": g.gid, "members": list(g.members)}
            for g in catalog.groups.values()
        ],
        "primary": dict(catalog.user_primary_group),
        "insecure": [list(pair) for pair in catalog.insecure_findings],
    }


def _catalog_from_dict(raw: dict) -> RepositoryCatalog:
    catalog = RepositoryCatalog()
    for user in raw.get("users", []):
        catalog.users[user["name"]] = UserSpec(
            name=user["name"], uid=user["uid"], gid=user["gid"],
            home=user["home"], shell=user["shell"], gecos=user["gecos"],
        )
    for group in raw.get("groups", []):
        catalog.groups[group["name"]] = GroupSpec(
            name=group["name"], gid=group["gid"],
            members=tuple(group["members"]),
        )
    catalog.user_primary_group = dict(raw.get("primary", {}))
    catalog.insecure_findings = [tuple(pair) for pair in raw.get("insecure", [])]
    return catalog


def state_to_json(snapshot: dict) -> str:
    """Canonical JSON used by the sealing flow."""
    return json.dumps(snapshot, sort_keys=True)
