"""Synchronous request/response transport over the latency model.

Hosts register a handler; callers issue requests that advance the shared
:class:`SimClock` by RTT plus payload transfer plus handler processing time.
``gather`` models concurrent fan-out (the quorum reader contacts several
mirrors at once): the clock advances to the *slowest completed* request, but
each response records its individual completion offset.

Parallel-transfer accounting: :meth:`Network.probe` resolves a request
without touching the clock, and the incremental solver in
:mod:`repro.simnet.schedule` (:class:`ParallelTransferSchedule`, re-exported
here) computes per-transfer completion offsets for many concurrent streams —
each channel serves one stream at a time at its own bandwidth, capped by its
channel's capacity layer (a client NIC), and all active streams share a
common link capacity max-min fairly.  The schedule is the *single* transfer
engine: :meth:`Network.gather` (and its composable form,
:meth:`Network.gather_scheduled`) is built on it, as are the pipelined
refresh engine (:mod:`repro.core.pipeline`), the quorum reader
(:mod:`repro.core.quorum`), and the client fleet
(:class:`ScheduledFetchSession`).

Failure injection: hosts can be taken down (requests fail after a timeout)
and pairs of hosts can be partitioned — the paper's adversary "prevents
network connection to the original repository and arbitrary mirrors".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.simnet.clock import SimClock
from repro.simnet.latency import (
    Continent,
    DEFAULT_BANDWIDTH_BYTES_PER_S,
    LatencyModel,
)
from repro.simnet.schedule import (  # noqa: F401  (re-exported)
    ParallelTransferSchedule,
    TransferTiming,
    max_min_rates,
)
from repro.util.errors import NetworkError

DEFAULT_TIMEOUT_S = 5.0


@dataclass
class Request:
    """A request addressed to a host; ``payload`` is handler-defined."""

    target: str
    operation: str
    payload: object = None
    size_bytes: int = 256  # small control message by default


@dataclass
class Response:
    """Handler result plus transport accounting."""

    payload: object
    size_bytes: int
    elapsed: float  # seconds from issue to completion (simulated)


@dataclass
class TransferProbe:
    """A resolved request with raw transfer parameters, clock untouched.

    ``setup`` covers RTT, request upload, server processing and throttling;
    the payload phase is *not* pre-computed — callers schedule it against
    ``size_bytes`` and ``bandwidth`` so concurrent streams can share links.
    """

    payload: object
    size_bytes: int
    setup: float
    bandwidth: float

    @property
    def solo_duration(self) -> float:
        """Completion time when the stream runs with no contention."""
        return self.setup + self.size_bytes / self.bandwidth


@dataclass
class Host:
    """A network endpoint with a handler and failure state."""

    name: str
    continent: Continent
    handler: Callable[[str, object], tuple[object, int]] | None = None
    processing_time: float = 0.0005
    bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_S
    up: bool = True
    # Extra one-way delay, used to model overloaded or throttled mirrors.
    extra_delay: float = 0.0
    #: When set, concurrent ``gather`` responses share this sustained
    #: download bandwidth at the *receiving* host (the NIC bottleneck that
    #: makes quorum latency grow with mirror count, Fig. 13).
    downlink_bandwidth: float | None = None

    def handle(self, operation: str, payload: object) -> tuple[object, int]:
        if self.handler is None:
            raise NetworkError(f"host {self.name} has no handler registered")
        return self.handler(operation, payload)


class Network:
    """Host registry and transport; owns the latency model."""

    def __init__(self, clock: SimClock | None = None,
                 latency: LatencyModel | None = None,
                 timeout: float = DEFAULT_TIMEOUT_S):
        self.clock = clock or SimClock()
        self.latency = latency or LatencyModel()
        self.timeout = timeout
        self._hosts: dict[str, Host] = {}
        self._partitions: set[frozenset[str]] = set()

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise NetworkError(f"host already registered: {host.name}")
        self._hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name}") from None

    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def remove_host(self, name: str):
        """Forget a host entirely (a retired client releases its slot)."""
        self._hosts.pop(name, None)
        self._partitions = {pair for pair in self._partitions
                            if name not in pair}

    def set_down(self, name: str, down: bool = True):
        self.host(name).up = not down

    def partition(self, a: str, b: str):
        """Block traffic between two hosts (adversarial network control)."""
        self._partitions.add(frozenset([a, b]))

    def heal(self, a: str, b: str):
        self._partitions.discard(frozenset([a, b]))

    def _reachable(self, src: str, dst: str) -> bool:
        return frozenset([src, dst]) not in self._partitions

    def probe(self, src_name: str, request: Request) -> TransferProbe:
        """Resolve a request without advancing the clock.

        Executes the target's handler and returns the payload plus the raw
        transfer parameters (setup latency, response size, peer bandwidth)
        so schedulers can account the payload phase under contention.
        """
        src = self.host(src_name)
        dst = self.host(request.target)
        if not dst.up or not self._reachable(src.name, dst.name):
            # A dead or partitioned peer manifests as a timeout.
            raise NetworkError(
                f"request from {src.name} to {request.target} timed out "
                f"after {self.timeout}s"
            )
        rtt = self.latency.rtt(src.continent, dst.continent)
        payload_up = self.latency.transfer_time(request.size_bytes, dst.bandwidth)
        result, response_size = dst.handle(request.operation, request.payload)
        setup = rtt + payload_up + dst.processing_time + dst.extra_delay
        payload_down = self.latency.transfer_time(response_size, dst.bandwidth)
        if setup + payload_down > self.timeout:
            raise NetworkError(
                f"request from {src.name} to {request.target} exceeded "
                f"timeout ({setup + payload_down:.3f}s > {self.timeout}s)"
            )
        return TransferProbe(payload=result, size_bytes=response_size,
                             setup=setup, bandwidth=dst.bandwidth)

    def _completion_offset(self, src: Host, request: Request) -> tuple[object, int, float]:
        """Compute (response payload, response size, completion offset)."""
        probe = self.probe(src.name, request)
        return probe.payload, probe.size_bytes, probe.solo_duration

    def call(self, src_name: str, request: Request) -> Response:
        """Issue a single request; advances the clock by its full latency."""
        src = self.host(src_name)
        payload, size, offset = self._completion_offset(src, request)
        self.clock.advance(offset)
        return Response(payload=payload, size_bytes=size, elapsed=offset)

    def gather_scheduled(self, src_name: str, requests: list[Request],
                         *, start_at: float = 0.0,
                         channels: list | None = None,
                         advance: str = "none",
                         ) -> list[Response | NetworkError]:
        """Issue requests concurrently over a :class:`ParallelTransferSchedule`.

        Returns one entry per request: a :class:`Response` (its ``elapsed``
        is the *absolute* completion offset on the schedule timeline, i.e.
        ``>= start_at``) or the :class:`NetworkError` the request failed
        with.  Payload phases of all successful requests share the source
        host's ``downlink_bandwidth`` max-min fairly — the exact fluid-flow
        accounting the refresh pipeline uses, replacing the old closed-form
        shared-downlink bound.

        ``channels`` optionally assigns each request to a schedule channel;
        requests on the same channel serialize (one connection), distinct
        channels run concurrently.  By default every request gets its own
        channel (independent connections).  ``start_at`` offsets the whole
        batch, so successive waves (e.g. quorum extension reads) compose on
        one timeline.  ``advance="max"`` moves the clock by the slowest
        successful completion relative to ``start_at`` (or by the timeout if
        every request failed); ``advance="none"`` leaves the clock to the
        caller.
        """
        if advance not in ("max", "none"):
            raise ValueError(f"unsupported advance mode: {advance}")
        src = self.host(src_name)
        if not requests:
            # Nothing was asked for: no transfers, no timeout — distinct
            # from "every request failed", which does burn the timeout.
            return []
        if channels is None:
            channels = list(range(len(requests)))
        elif len(channels) != len(requests):
            raise ValueError("channels must parallel requests")
        schedule = ParallelTransferSchedule(
            downlink_bandwidth=src.downlink_bandwidth
        )
        probes: list[TransferProbe | None] = [None] * len(requests)
        results: list[Response | NetworkError] = [None] * len(requests)
        for i, (request, channel) in enumerate(zip(requests, channels)):
            try:
                probe = self.probe(src_name, request)
            except NetworkError as exc:
                results[i] = exc
                continue
            probes[i] = probe
            schedule.enqueue(channel, i, probe.setup, probe.size_bytes,
                             probe.bandwidth)
        timings = schedule.solve(start_time=start_at)
        finishes: list[float] = []
        for i, probe in enumerate(probes):
            if probe is None:
                continue
            finish = timings[i].finish
            results[i] = Response(payload=probe.payload,
                                  size_bytes=probe.size_bytes,
                                  elapsed=finish)
            finishes.append(finish)
        if advance == "max":
            self.clock.advance(max(finishes) - start_at if finishes
                               else self.timeout)
        return results

    def gather(self, src_name: str, requests: list[Request],
               advance: str = "max") -> list[Response | NetworkError]:
        """Issue requests concurrently (thin wrapper over the schedule).

        Returns one entry per request: a :class:`Response` or the
        :class:`NetworkError` the request failed with.  The clock advances by
        the slowest *successful* completion (``advance="max"``) — timeouts do
        not stall the caller because the quorum logic proceeds as soon as it
        has enough answers — or by the timeout if every request failed.
        """
        return self.gather_scheduled(src_name, requests, advance=advance)


class ScheduledFetchSession:
    """Many clients' fetches as concurrent channels on one shared schedule.

    Drives fleet-scale concurrency: each client is a channel (its requests
    serialize, as over one connection), different clients' payload phases
    run concurrently and share ``shared_bandwidth`` — typically the serving
    host's uplink — max-min fairly.  :meth:`fetch` resolves the handler
    immediately (payloads are exact) and defers all time accounting to one
    :meth:`solve` call, so a thousands-of-node fleet costs a single event
    simulation instead of per-client clock serialization.

    Per-client NICs are layered onto the schedule: when the fetching host
    declares a ``downlink_bandwidth``, its channel is capped at that rate,
    so a stream runs at ``min(peer bandwidth, client NIC, fair share of
    the shared link)``.

    Failed fetches charge the network timeout to their channel (the client
    waited for it) and re-raise.

    ``start_time`` is recorded at construction: :meth:`solve` (and the
    accessors built on it, :meth:`channel_finish` / :attr:`makespan`)
    defaults to it, so a session placed mid-timeline cannot silently
    resolve at offset 0.0.
    """

    def __init__(self, network: Network,
                 shared_bandwidth: float | None = None,
                 start_time: float = 0.0):
        self._network = network
        self._schedule = ParallelTransferSchedule(
            downlink_bandwidth=shared_bandwidth
        )
        self._start_time = start_time
        self._solved_at: float | None = None
        self._sequence = 0
        self._channel_items: dict[object, list[object]] = {}
        self._timings: dict[object, TransferTiming] | None = None
        self._channel_bytes: dict[object, int] = {}
        self._total_bytes = 0

    @property
    def start_time(self) -> float:
        """The timeline offset this session's schedule begins at."""
        return self._start_time

    def fetch(self, src_name: str, request: Request,
              channel: object = None) -> object:
        """Resolve one request now; account its transfer at solve time."""
        if self._timings is not None:
            raise NetworkError("session already solved")
        channel = src_name if channel is None else channel
        key = (channel, self._sequence)
        self._sequence += 1
        try:
            nic = self._network.host(src_name).downlink_bandwidth
        except NetworkError:
            nic = None  # unknown src: let probe() report it below
        if nic is not None:
            self._schedule.limit_channel(channel, nic)
        try:
            probe = self._network.probe(src_name, request)
        except NetworkError:
            # The client burned the timeout waiting before giving up.
            self._schedule.enqueue(channel, key, self._network.timeout, 0, 1.0)
            self._channel_items.setdefault(channel, []).append(key)
            raise
        self._schedule.enqueue(channel, key, probe.setup, probe.size_bytes,
                               probe.bandwidth)
        self._channel_items.setdefault(channel, []).append(key)
        self._channel_bytes[channel] = \
            self._channel_bytes.get(channel, 0) + probe.size_bytes
        self._total_bytes += probe.size_bytes
        return probe.payload

    def wire_bytes(self, channel: object) -> int:
        """Payload bytes fetched on one channel so far (failures cost 0)."""
        return self._channel_bytes.get(channel, 0)

    @property
    def total_wire_bytes(self) -> int:
        """Payload bytes fetched across every channel so far."""
        return self._total_bytes

    def solve(self, start_time: float | None = None,
              ) -> dict[object, TransferTiming]:
        """Run the event simulation once; repeat calls return the result.

        ``start_time`` defaults to the value recorded at construction.
        Re-solving at a *different* offset raises instead of silently
        returning the cached timings.
        """
        if start_time is None:
            start_time = self._start_time
        if self._timings is None:
            self._solved_at = start_time
            self._timings = self._schedule.solve(start_time=start_time)
        elif start_time != self._solved_at:
            raise NetworkError(
                f"session already solved at start_time={self._solved_at}; "
                f"cannot re-solve at {start_time}"
            )
        return self._timings

    def channel_finish(self, channel: object) -> float:
        """Completion offset of a channel's last transfer.

        An idle channel reports the session's start time (it finished the
        moment it began).
        """
        timings = self.solve()
        items = self._channel_items.get(channel, [])
        return max((timings[key].finish for key in items),
                   default=self._solved_at)

    @property
    def makespan(self) -> float:
        """Completion offset of the slowest channel."""
        timings = self.solve()
        return max((t.finish for t in timings.values()),
                   default=self._solved_at)


class PlanFetchSession:
    """Multi-wave client fetches over an externally owned schedule.

    Where :class:`ScheduledFetchSession` models *one* fan-out wave on its
    own private schedule (solve once, then read timings), this session
    composes client pulls onto a plan-wide
    :class:`ParallelTransferSchedule` shared with other traffic — a
    multi-round refresh plan's mirror downloads and quorum reads — and
    supports *successive waves at increasing start offsets* on the same
    persistent per-client channels.

    :meth:`begin_wave` pins the wave instant against the schedule's
    *solved* state: the first fetch of each channel in the wave carries a
    setup gap of ``max(0, wave_at - channel_free)``, and the solver's
    monotonicity (added load never makes an existing stream finish
    earlier) keeps the pin valid as later rounds pile more traffic onto
    the link.  Final timings are read by whoever owns the schedule, after
    all waves and rounds are enqueued — per-item keys are returned by
    :meth:`fetch` / :meth:`last_key` for that purpose.

    Per-client NIC downlinks layer onto the schedule exactly as in the
    single-wave session (``min(peer bandwidth, NIC, fair share)``), and a
    failed fetch charges the network timeout to its channel and re-raises.

    On a **streaming** schedule (one driven through a
    :class:`~repro.simnet.schedule.ScheduleStream`) the wave pin needs no
    plan-wide solve at all: the stream's frontier sits at the wave
    instant, so a live channel is by definition busy past it (gap 0 —
    exactly what the materialized path's ``max(0, at - free)`` yields for
    any ``free > at``) and a retired channel's last finish is the exact
    ``free``.  Per-channel item lists collapse to a last-key slot, and
    :meth:`retire_client` drops a rotated-out client's residue entirely.
    """

    def __init__(self, network: Network, schedule: ParallelTransferSchedule):
        self._network = network
        self._schedule = schedule
        self._sequence = 0
        self._wave_at = 0.0
        self._channel_items: dict[object, list[object]] = {}
        #: Streaming mode: the only per-channel key history anyone reads
        #: (:meth:`last_key`) — full item lists are never kept.
        self._last_keys: dict[object, object] = {}
        self._channel_bytes: dict[object, int] = {}
        self._total_bytes = 0
        #: Channels whose first fetch of the current wave already pinned
        #: the wave gap.
        self._pinned: set[object] = set()
        #: Per-channel busy-until at the last ``begin_wave`` solve.
        self._frees: dict[object, float] = {}

    @property
    def schedule(self) -> ParallelTransferSchedule:
        return self._schedule

    def begin_wave(self, at: float):
        """Open a pull wave whose channels start no earlier than ``at``."""
        if at < self._wave_at:
            raise NetworkError(
                f"plan waves must be issued in time order: {at} < "
                f"{self._wave_at}"
            )
        self._wave_at = at
        self._pinned = set()
        if self._schedule.streaming:
            # Frees are answered per channel by the stream (live -> busy
            # past the frontier, retired -> exact last finish); no solve.
            self._frees = {}
        elif any(self._channel_items.values()):
            timings = self._schedule.solve()
            self._frees = {
                channel: max((timings[key].finish for key in items),
                             default=0.0)
                for channel, items in self._channel_items.items()
            }
        else:
            self._frees = {}

    def _wave_gap(self, channel: object) -> float:
        if self._schedule.streaming:
            free = self._schedule.stream_handle.channel_free(channel)
            if free is None:        # never fetched: free since time 0
                free = 0.0
            elif free == float("inf"):   # live: busy past the wave instant
                return 0.0
            return max(0.0, self._wave_at - free)
        return max(0.0, self._wave_at - self._frees.get(channel, 0.0))

    def _record_key(self, channel: object, key: object):
        if self._schedule.streaming:
            self._last_keys[channel] = key
        else:
            self._channel_items.setdefault(channel, []).append(key)

    def retire_client(self, channel: object):
        """Forget a rotated-out client's channel state entirely.

        Only valid when the channel will never fetch again (streaming
        replays retiring a fleet client); its wire bytes stay counted in
        the totals.
        """
        if self._schedule.streaming:
            self._schedule.stream_handle.forget_channel(channel)
        self._last_keys.pop(channel, None)
        self._channel_items.pop(channel, None)
        self._channel_bytes.pop(channel, None)
        self._pinned.discard(channel)
        self._frees.pop(channel, None)

    def fetch(self, src_name: str, request: Request,
              channel: object = None) -> object:
        """Resolve one request now; account its transfer on the plan."""
        channel = src_name if channel is None else channel
        key = ("pull", channel, self._sequence)
        self._sequence += 1
        try:
            nic = self._network.host(src_name).downlink_bandwidth
        except NetworkError:
            nic = None  # unknown src: let probe() report it below
        if nic is not None:
            self._schedule.limit_channel(channel, nic)
        extra_wait = 0.0
        if channel not in self._pinned:
            self._pinned.add(channel)
            extra_wait = self._wave_gap(channel)
        # Serving-host routing: when the plan schedule declares the
        # target as a link (an edge replica's uplink), the payload
        # phase water-fills that link's pool instead of the default
        # (primary) one; the channel itself stays global, so a client
        # mixing replica and primary fetches still serializes them.
        link = request.target if self._schedule.has_link(request.target) \
            else None
        try:
            probe = self._network.probe(src_name, request)
        except NetworkError:
            # The client burned the timeout waiting before giving up.
            self._schedule.enqueue(channel, key,
                                   extra_wait + self._network.timeout, 0, 1.0)
            self._record_key(channel, key)
            raise
        self._schedule.enqueue(channel, key, extra_wait + probe.setup,
                               probe.size_bytes, probe.bandwidth, link=link)
        self._record_key(channel, key)
        self._channel_bytes[channel] = \
            self._channel_bytes.get(channel, 0) + probe.size_bytes
        self._total_bytes += probe.size_bytes
        return probe.payload

    def wire_bytes(self, channel: object) -> int:
        """Payload bytes fetched on one channel so far (failures cost 0)."""
        return self._channel_bytes.get(channel, 0)

    @property
    def total_wire_bytes(self) -> int:
        """Payload bytes fetched across every channel, all waves so far."""
        return self._total_bytes

    def last_key(self, channel: object) -> object | None:
        """Schedule key of the channel's most recent fetch (None if idle)."""
        if self._schedule.streaming:
            return self._last_keys.get(channel)
        items = self._channel_items.get(channel)
        return items[-1] if items else None

    def channel_keys(self, channel: object) -> list[object]:
        return list(self._channel_items.get(channel, []))
