"""Figure 9 — package size increase caused by sanitization.

Paper: +12 % (p50), +27 % (p75), +76 % (p95) per package; packages with
many small files suffer most (signatures are 256 bytes each); the *total*
repository grows only 3.6 % (3000 MB -> 3110 MB).
"""

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_bytes, percentile

_PAPER = {"p50": 12.0, "p75": 27.0, "p95": 76.0, "total": 3.6}


def _overhead_stats(results):
    overheads = [100 * r.size_overhead for r in results]
    original_total = sum(r.original_size for r in results)
    sanitized_total = sum(r.sanitized_size for r in results)
    return overheads, original_total, sanitized_total


def test_fig9_size_overhead(content_scenario, benchmark):
    results = content_scenario.refresh_report.results
    overheads, original_total, sanitized_total = benchmark.pedantic(
        _overhead_stats, args=(results,), rounds=1, iterations=1
    )
    total_growth = 100 * (sanitized_total - original_total) / original_total

    table = PaperTable(
        experiment="Figure 9",
        title="Package size increase caused by sanitization",
        columns=["metric", "paper", "measured"],
    )
    table.add_row("p50 overhead", f"+{_PAPER['p50']:.0f}%",
                  f"+{percentile(overheads, 50):.1f}%")
    table.add_row("p75 overhead", f"+{_PAPER['p75']:.0f}%",
                  f"+{percentile(overheads, 75):.1f}%")
    table.add_row("p95 overhead", f"+{_PAPER['p95']:.0f}%",
                  f"+{percentile(overheads, 95):.1f}%")
    table.add_row("total repository", "+3.6% (3000->3110 MB)",
                  f"+{total_growth:.1f}% ({human_bytes(original_total)}"
                  f" -> {human_bytes(sanitized_total)})")
    table.note("signatures are 256 bytes/file (RSA-2048), as in the paper")
    record_table(table)

    # Shape: per-package median near 10-15 %, heavy tail, small total.
    assert 5 < percentile(overheads, 50) < 25
    assert percentile(overheads, 95) > 2 * percentile(overheads, 50)
    assert total_growth < 10
    # Many-small-files packages suffer most.
    small_files = [100 * r.size_overhead for r in results if r.file_count <= 4]
    many_files = [
        100 * r.size_overhead for r in results
        if r.file_count >= 32 and r.original_size < 200_000
    ]
    if small_files and many_files:
        assert percentile(many_files, 50) > percentile(small_files, 50)
