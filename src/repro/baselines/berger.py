"""The Berger et al. baseline: sign files when the community builds them.

The approach the paper builds on (and contrasts with): every file inside a
package gets a digital signature issued with the distribution's signing key
during package creation, so IMA measurement reports can be verified with
one certificate.  Limitations reproduced faithfully:

* the community build pipeline must change (the paper's Problem 2) — here
  that is explicit: the builder needs the distribution's *private* key;
* installation scripts are untouched, so packages that mutate the OS
  configuration still break attestation (the paper's Problem 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archive.apk import ApkPackage, PackageFile
from repro.ima.subsystem import ima_signature_for
from repro.crypto.rsa import RsaPrivateKey
from repro.scripts.classify import classify_package_scripts


@dataclass
class BergerBuildReport:
    """What signing at build time did (and did not) cover."""

    package: ApkPackage
    signed_files: int
    scripts_still_unsafe: bool


class BergerBuilder:
    """Builds packages with in-package per-file signatures."""

    def __init__(self, community_key: RsaPrivateKey):
        # The baseline's defining requirement: direct access to the
        # distribution's signing key at build time.
        self._key = community_key

    def build(self, package: ApkPackage) -> BergerBuildReport:
        signed_files = [
            PackageFile(
                path=f.path,
                content=f.content,
                mode=f.mode,
                ima_signature=ima_signature_for(f.content, self._key),
            )
            for f in package.files
        ]
        profile = classify_package_scripts(package.scripts)
        rebuilt = ApkPackage(
            name=package.name,
            version=package.version,
            arch=package.arch,
            description=package.description,
            depends=list(package.depends),
            scripts=dict(package.scripts),  # unchanged: the gap TSR closes
            files=signed_files,
        )
        return BergerBuildReport(
            package=rebuilt,
            signed_files=len(signed_files),
            scripts_still_unsafe=not profile.safe,
        )
