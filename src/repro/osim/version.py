"""Alpine-style package version parsing and comparison.

Versions look like ``1.2.3-r4``: a dotted numeric core plus a package
release number.  Comparison is numeric segment-by-segment, with shorter
cores padded (``1.2 < 1.2.1``) and the release number as tiebreaker.
"""

from __future__ import annotations

import re
from functools import total_ordering

from repro.util.errors import PackageManagerError

_VERSION_RE = re.compile(r"^(\d+(?:\.\d+)*)([a-z])?(?:-r(\d+))?$")


@total_ordering
class Version:
    """A parsed package version, ordered like apk orders them."""

    def __init__(self, text: str):
        match = _VERSION_RE.match(text.strip())
        if match is None:
            raise PackageManagerError(f"unparseable version: {text!r}")
        core, letter, release = match.groups()
        self.text = text.strip()
        self._core = tuple(int(part) for part in core.split("."))
        self._letter = letter or ""
        self._release = int(release) if release is not None else 0

    def _key(self) -> tuple:
        return (self._core, self._letter, self._release)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other) -> bool:
        if not isinstance(other, Version):
            return NotImplemented
        # Pad cores to equal length so 1.2 < 1.2.1.
        mine, theirs = list(self._core), list(other._core)
        width = max(len(mine), len(theirs))
        mine += [0] * (width - len(mine))
        theirs += [0] * (width - len(theirs))
        return (mine, self._letter, self._release) < (
            theirs, other._letter, other._release
        )

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"Version({self.text!r})"


def is_newer(candidate: str, installed: str) -> bool:
    """True if ``candidate`` is strictly newer than ``installed``."""
    return Version(candidate) > Version(installed)
