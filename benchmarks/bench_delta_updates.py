"""Delta updates — fleet uplink bytes, full pulls vs signed diffs (§8).

The trace replay (§7) made the TSR uplink the fleet-scale cost: every
pull wave re-transfers the full signed index and whole packages to every
client.  This bench replays the same multi-round trace twice on twin
deployments — once with baseline full pulls, once with the delta path
(signed index diffs + content-defined chunk patches, ``core/delta``) —
and measures the ablation:

* **bytes per client per round** on the TSR uplink, all waves and
  steady-state (wave 1 is cold either way: no client holds a base yet);
* simulated **wall-clock** and the staleness/availability story, which
  must NOT change — deltas deliver byte-identical indexes and packages
  (pinned by ``tests/test_delta_updates.py``), so only wire sizes move.

The headline acceptance bar: >= 5x steady-state uplink reduction at
unchanged staleness.  CI runs this emitting ``BENCH_delta_updates.json``.
"""

import os
import time
import random

from repro.archive.apk import ApkPackage, PackageFile
from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_bytes, human_duration
from repro.workload.generator import generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import build_scenario

ROUNDS = int(os.environ.get("REPRO_DELTA_ROUNDS", "10"))
CLIENTS = int(os.environ.get("REPRO_DELTA_CLIENTS", "16"))
PACKAGES = 8
#: One large incompressible payload per package: the realistic delta
#: shape (a binary whose release flips a few bytes).  Compressible
#: repeated-byte payloads would understate full-pull cost and overstate
#: nothing — deltas win on *unchanged chunks*, not compressibility.
PAYLOAD_BYTES = 48 * 1024
INTERVAL = 0.6
#: A provisioned uplink (transfer time small against the wave interval):
#: the staleness comparison isolates *bytes*, not queueing — on a
#: saturated NIC deltas additionally shorten waves, which would make
#: "unchanged staleness" untestable.
LINK_BANDWIDTH = 256 * 2 ** 20
#: Acceptance bar: steady-state uplink reduction.
MIN_REDUCTION = 5.0


def _population(count=PACKAGES, payload=PAYLOAD_BYTES):
    packages = []
    for i in range(count):
        packages.append(ApkPackage(
            name=f"blob-{i:02d}", version="1.0-r0",
            files=[
                PackageFile(f"/usr/lib/blob{i}.bin",
                            random.Random(9000 + i).randbytes(payload)),
                PackageFile(f"/etc/blob{i}.conf", b"mode=fast\n" * 4),
            ],
        ))
    return packages


def _trace():
    # Every client tracks the full catalog (installs_per_client covers
    # the population): wave 1 installs everything, later waves upgrade
    # whatever each publish evolved — the distro-tracking fleet shape.
    return generate_trace(rounds=ROUNDS, interval=INTERVAL,
                          publish_fraction=0.5, seed=17,
                          installs_per_client=PACKAGES)


def _replay(delta: bool):
    scenario = build_scenario(packages=_population(), with_monitor=False)
    report = replay_trace(scenario, _trace(), clients=CLIENTS,
                          mode="interleaved", delta_updates=delta,
                          link_bandwidth=LINK_BANDWIDTH)
    return scenario, report


def test_delta_updates_ablation(benchmark, maybe_profile):
    def sweep():
        results = {}
        for mode in ("full", "delta"):
            results[mode] = _replay(delta=(mode == "delta"))
        return results

    begin = time.perf_counter()
    results = benchmark.pedantic(maybe_profile("test_delta_updates_ablation", sweep),
                                 rounds=1, iterations=1)
    benchmark.extra_info["host_time_s"] = round(time.perf_counter() - begin, 3)
    (_, full), (tsr_scenario, delta) = results["full"], results["delta"]

    full_steady = full.steady_state_bytes_per_client_per_round()
    delta_steady = delta.steady_state_bytes_per_client_per_round()
    reduction = full_steady / max(1.0, delta_steady)

    table = PaperTable(
        experiment="Delta updates",
        title=f"{ROUNDS}-round / {CLIENTS}-client fleet trace: "
              "full pulls vs signed index diffs + chunk patches",
        columns=["mode", "bytes/client/round", "steady-state", "total wire",
                 "wall", "staleness mean", "avail mean", "installs"],
    )
    for mode, (_, report) in results.items():
        table.add_row(
            mode,
            human_bytes(report.bytes_per_client_per_round),
            human_bytes(report.steady_state_bytes_per_client_per_round()),
            human_bytes(report.client_wire_bytes),
            human_duration(report.wall_elapsed),
            human_duration(report.staleness_mean),
            human_duration(report.availability_mean),
            report.installs,
        )
    stats = delta.delta_stats
    table.note(f"steady-state uplink reduction: {reduction:.1f}x "
               f"(index diffs {stats['index_deltas']}, package patches "
               f"{stats['package_deltas']}, base reuses "
               f"{stats['base_reuses']}, server bytes saved "
               f"{human_bytes(tsr_scenario.tsr.delta_bytes_saved)}); "
               "installed bytes and staleness identical by construction")
    record_table(table)

    # Structural equivalence: the delta path changed wire sizes only.
    assert delta.installs == full.installs
    assert delta.failed_pulls == full.failed_pulls
    assert delta.publishes == full.publishes
    assert abs(delta.staleness_mean - full.staleness_mean) \
        <= 0.02 * max(full.staleness_mean, 1e-9)
    assert abs(delta.availability_mean - full.availability_mean) \
        <= 0.02 * max(full.availability_mean, 1e-9)
    # Cold first wave costs the same; the delta path never serves a
    # *larger* wave than full pulls (fallbacks are tagged full blobs).
    assert delta.pull_wire_bytes[0] == full.pull_wire_bytes[0]
    assert all(d <= f for d, f in zip(delta.pull_wire_bytes,
                                      full.pull_wire_bytes))
    # The headline: >= 5x steady-state uplink reduction.
    assert reduction >= MIN_REDUCTION, \
        f"steady-state reduction only {reduction:.1f}x " \
        f"({human_bytes(full_steady)} -> {human_bytes(delta_steady)})"
    # The delta machinery actually engaged (no vacuous pass through
    # fallbacks).
    assert stats["index_deltas"] > 0
    assert stats["package_deltas"] > 0
    assert stats["index_rejected"] == 0
    assert stats["package_rejected"] == 0
