"""Software TPM 2.0: PCRs, event log, quotes, monotonic counters.

The trusted-computing substrate of the paper: integrity measurements are
extended into PCRs, a quote signed by the TPM's attestation key certifies
the PCR state to remote verifiers, and monotonic counters anchor TSR's
rollback protection (paper section 5.5).
"""

from repro.tpm.device import (
    Tpm,
    TpmQuote,
    PcrBank,
    EventLogEntry,
    verify_quote,
    IMA_PCR_INDEX,
)

__all__ = [
    "Tpm",
    "TpmQuote",
    "PcrBank",
    "EventLogEntry",
    "verify_quote",
    "IMA_PCR_INDEX",
]
