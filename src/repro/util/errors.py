"""Error hierarchy shared by every subsystem.

Each subsystem raises a dedicated subclass of :class:`ReproError` so callers
can catch exactly the failure domain they care about (e.g. a monitoring
system distinguishes an :class:`AttestationError` from a transport failure).
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class IntegrityError(ReproError):
    """A cryptographic hash did not match its expected value."""


class SignatureError(ReproError):
    """A digital signature failed verification or could not be produced."""


class PolicyError(ReproError):
    """A security policy is malformed or violates invariants."""


class QuorumError(ReproError):
    """Not enough agreeing mirrors to establish a quorum."""


class PackagingError(ReproError):
    """A package archive is malformed or violates the apk format."""


class ScriptError(ReproError):
    """An installation script could not be parsed, executed, or sanitized."""


class SealingError(ReproError):
    """Sealed data could not be unsealed (wrong CPU, enclave, or tampering)."""


class RollbackError(ReproError):
    """State was rolled back to an earlier version (freshness violation)."""


class AttestationError(ReproError):
    """A remote attestation report failed verification."""


class DeltaError(ReproError):
    """A delta-update envelope is malformed, mismatched, or unapplicable
    (clients fall back to a full pull — never a hard failure)."""


class NetworkError(ReproError):
    """A simulated network operation failed (host down, partition)."""


class FileSystemError(ReproError):
    """A simulated filesystem operation failed."""


class PackageManagerError(ReproError):
    """The package manager could not complete an operation."""
