"""A small POSIX-shell subset: lexer, parser, interpreter, classifier.

Software packages carry installation scripts executed as root during
installation (paper section 2.2).  TSR must *analyze* those scripts to
decide whether they keep the OS in a verifiable state (Table 2 taxonomy)
and *rewrite* the sanitizable ones.  This package implements:

* a shell lexer/parser for the subset real Alpine maintainer scripts use
  (simple commands, quoting, ``&&``/``||``/``;`` lists, pipelines, ``if``
  statements, output redirection),
* an interpreter that executes scripts against a filesystem-like host
  (the simulated OS provides one),
* the operation classifier reproducing the paper's Table 2 taxonomy.
"""

from repro.scripts.lexer import tokenize, Token, TokenType
from repro.scripts.parser import parse_script
from repro.scripts.shell_ast import Command, ConditionalList, IfStatement, Pipeline, Script
from repro.scripts.interpreter import ExecutionResult, Interpreter, ScriptHost
from repro.scripts.classify import (
    OperationType,
    ScriptProfile,
    classify_script,
    classify_package_scripts,
)

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse_script",
    "Script",
    "Command",
    "Pipeline",
    "ConditionalList",
    "IfStatement",
    "Interpreter",
    "ScriptHost",
    "ExecutionResult",
    "OperationType",
    "ScriptProfile",
    "classify_script",
    "classify_package_scripts",
]
