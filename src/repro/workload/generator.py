"""Synthetic package population generator.

Census targets (full scale, from the paper's Tables 1-2):

* 11,581 packages; 97.6 % without scripts;
* safe-scripted packages: 53 (filesystem-only 15, empty 22, text-only 16);
* user/group creation: 201 packages (30 of which also do filesystem
  changes, 20 also text processing, 5 also unsafe config changes);
* configuration change only: 13; shell activation: 10; empty file: 1;
* 2 packages exhibit the CVE-2019-5021 insecure-account pattern;
* 28 packages (0.24 %) are unsupported by TSR (config change + shell).

Size / file-count distributions are log-normal, calibrated so that the
sanitization size overhead and timing reproduce the shapes of Figs. 8-9
(constants below; discussion in EXPERIMENTS.md).
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field

from repro.archive.apk import ApkPackage, PackageFile
from repro.scripts.classify import OperationType

#: Full-scale census targets.
PAPER_TOTALS = {
    "packages": 11581,
    "no_scripts": 11303,
    "safe_scripts": 53,
    "unsafe_scripts": 225,
    "unsupported": 28,
    "repo_bytes": 3000 * 1024 * 1024,
}

# Unique-package counts per primary category at full scale.
_CATEGORY_COUNTS = {
    "fs_only": 15,
    "empty": 22,
    "text_only": 16,
    "user_group": 196,        # user/group creation only (+fs/text mixins)
    "user_group_config": 5,   # user/group AND config change -> unsupported
    "config_only": 13,
    "shell": 10,
    "empty_file": 1,
}

#: Of the 196 sanitizable user/group packages: how many also run
#: filesystem / text-processing commands (keeps Table 2's row counts).
_USER_GROUP_FS_MIXIN = 30
_USER_GROUP_TEXT_MIXIN = 20

#: How many packages exhibit the insecure-account (CVE-2019-5021) pattern.
_INSECURE_COUNT = 2

# Log-normal parameters, calibrated so sanitization size overhead lands on
# the paper's Fig. 9 percentiles (12/27/76 % at p50/p75/p95, +3.6 % total):
# each package has one main payload file and many small supporting files;
# signature bytes (256/file) against that mix reproduce the shape.
_FILES_MEDIAN = 8
_FILES_SIGMA = 1.6
_FILES_MAX = 600
_PAYLOAD_MEDIAN = 10_000
_PAYLOAD_SIGMA = 2.4
_PAYLOAD_MIN = 1_024
_PAYLOAD_MAX = 10_000_000
_SUPPORT_MEDIAN = 600
_SUPPORT_SIGMA = 1.2
_SUPPORT_MIN = 200
_SUPPORT_MAX = 2_000_000

#: EPC size to use with workloads generated here: the top ~5 % of packages
#: exceed it, mirroring the paper's Fig. 8/12 annotation.  (The real EPC is
#: 128 MB against 3 GB of packages; both are scaled together.)
SUGGESTED_EPC_BYTES = 1_500_000


@dataclass
class WorkloadExpectation:
    """What the generated population should contain (scaled census)."""

    packages: int
    no_scripts: int
    safe_scripts: int
    unsafe_scripts: int
    unsupported: int
    insecure: int


@dataclass
class GeneratedWorkload:
    """A generated package population plus its ground truth."""

    packages: list[ApkPackage]
    #: package name -> primary category key from _CATEGORY_COUNTS, or None.
    category: dict[str, str | None]
    expectation: WorkloadExpectation
    seed: int
    scale: float
    suggested_epc_bytes: int = SUGGESTED_EPC_BYTES

    def names(self) -> list[str]:
        return [package.name for package in self.packages]

    def total_content_bytes(self) -> int:
        return sum(
            sum(len(f.content) for f in package.files)
            for package in self.packages
        )


def _scaled(count: int, scale: float, minimum: int = 1) -> int:
    if count == 0:
        return 0
    return max(minimum, round(count * scale))


def _lognormal(rng: random.Random, median: float, sigma: float,
               low: float, high: float) -> float:
    value = median * math.exp(rng.gauss(0.0, sigma))
    return min(high, max(low, value))


def generate_workload(scale: float = 0.04, seed: int = 2020,
                      with_content: bool = True) -> GeneratedWorkload:
    """Sample a package population.

    ``scale`` shrinks every census count proportionally (minimum one
    package per category so small test workloads still exercise every code
    path).  ``with_content=False`` produces metadata-only packages (tiny
    placeholder contents) for censuses that do not need realistic sizes.
    """
    if not 0 < scale <= 1:
        raise ValueError(f"scale out of range: {scale}")
    rng = random.Random(f"workload:{seed}:{scale}")
    counts = {key: _scaled(value, scale)
              for key, value in _CATEGORY_COUNTS.items()}
    total = _scaled(PAPER_TOTALS["packages"], scale, minimum=10)
    scripted = sum(counts.values())
    plain = max(0, total - scripted)
    insecure_target = _scaled(_INSECURE_COUNT, scale)

    packages: list[ApkPackage] = []
    category: dict[str, str | None] = {}
    fs_mixins = _scaled(_USER_GROUP_FS_MIXIN, scale, minimum=0)
    text_mixins = _scaled(_USER_GROUP_TEXT_MIXIN, scale, minimum=0)

    assignments: list[str | None] = []
    assignments.extend([None] * plain)
    for key, count in counts.items():
        assignments.extend([key] * count)
    rng.shuffle(assignments)

    user_group_seen = 0
    insecure_made = 0
    for index, kind in enumerate(assignments):
        name = f"pkg-{index:05d}"
        version = f"{rng.randint(0, 5)}.{rng.randint(0, 20)}.{rng.randint(0, 9)}-r{rng.randint(0, 5)}"
        scripts: dict[str, str] = {}
        if kind == "fs_only":
            scripts = {".post-install": _fs_script(name)}
        elif kind == "empty":
            scripts = {".post-install": _empty_script(name)}
        elif kind == "text_only":
            scripts = {".post-install": _text_script()}
        elif kind == "user_group":
            user_group_seen += 1
            mix_fs = user_group_seen <= fs_mixins
            mix_text = fs_mixins < user_group_seen <= fs_mixins + text_mixins
            insecure = insecure_made < insecure_target
            if insecure:
                insecure_made += 1
            scripts = {".pre-install": _user_group_script(
                name, index, rng, mix_fs=mix_fs, mix_text=mix_text,
                insecure=insecure,
            )}
        elif kind == "user_group_config":
            scripts = {".pre-install": _user_group_script(name, index, rng),
                       ".post-install": _config_change_script(name)}
        elif kind == "config_only":
            scripts = {".post-install": _config_change_script(name)}
        elif kind == "shell":
            scripts = {".post-install": f"add-shell /bin/{name}-sh\n"}
        elif kind == "empty_file":
            scripts = {".post-install": f"touch /var/run/{name}.lock\n"}
        files = _generate_files(name, rng, with_content)
        depends = _pick_depends(rng, packages)
        packages.append(ApkPackage(
            name=name,
            version=version,
            description=f"synthetic package {name}",
            depends=depends,
            scripts=scripts,
            files=files,
        ))
        category[name] = kind

    expectation = WorkloadExpectation(
        packages=len(packages),
        no_scripts=plain,
        safe_scripts=counts["fs_only"] + counts["empty"] + counts["text_only"],
        unsafe_scripts=(counts["user_group"] + counts["user_group_config"]
                        + counts["config_only"] + counts["shell"]
                        + counts["empty_file"]),
        unsupported=(counts["user_group_config"] + counts["config_only"]
                     + counts["shell"]),
        insecure=insecure_made,
    )
    return GeneratedWorkload(
        packages=packages, category=category, expectation=expectation,
        seed=seed, scale=scale,
    )


def generate_update_batch(workload: GeneratedWorkload, fraction: float = 0.05,
                          seed: int = 7) -> list[ApkPackage]:
    """New releases for a random subset: bumped version, changed payload."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction out of range: {fraction}")
    rng = random.Random(f"updates:{seed}")
    chosen = rng.sample(workload.packages,
                        max(1, int(len(workload.packages) * fraction)))
    updated = []
    for package in chosen:
        files = [PackageFile(
            path=f.path,
            content=_mutate(f.content, rng),
            mode=f.mode,
        ) for f in package.files]
        core, _, release = package.version.rpartition("-r")
        updated.append(ApkPackage(
            name=package.name,
            version=f"{core}-r{int(release) + 1}",
            description=package.description,
            depends=list(package.depends),
            scripts=dict(package.scripts),
            files=files,
        ))
    return updated


def evolve_packages(population: dict[str, ApkPackage], fraction: float,
                    rng: random.Random) -> list[ApkPackage]:
    """One upstream release over an *evolving* population.

    Unlike :func:`generate_update_batch` — which always derives release
    ``r+1`` from the workload's original packages, so a twice-updated
    package keeps the same version string — this samples from the
    *current* population (name -> latest :class:`ApkPackage`) and bumps
    each chosen package's release once more, mutating its payload.  The
    multi-round trace replay threads its own :class:`random.Random`
    through here, so a whole trace's upstream evolution is reproducible
    independently of any other trace replayed in the same process.

    Returns the new releases; the caller is expected to fold them back
    into ``population`` and publish them.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction out of range: {fraction}")
    if not population:
        raise ValueError("cannot evolve an empty population")
    names = sorted(population)
    chosen = rng.sample(names, max(1, int(len(names) * fraction)))
    updated = []
    for name in chosen:
        package = population[name]
        files = [PackageFile(
            path=f.path,
            content=_mutate(f.content, rng),
            mode=f.mode,
        ) for f in package.files]
        core, _, release = package.version.rpartition("-r")
        updated.append(ApkPackage(
            name=package.name,
            version=f"{core}-r{int(release) + 1}",
            description=package.description,
            depends=list(package.depends),
            scripts=dict(package.scripts),
            files=files,
        ))
    return updated


def _mutate(content: bytes, rng: random.Random) -> bytes:
    if not content:
        return b"\x01"
    position = rng.randrange(len(content))
    patch = bytes([content[position] ^ 0xA5])
    return content[:position] + patch + content[position + 1:]


# -- multi-round traces --------------------------------------------------------

#: Stable processing order for events sharing a timestamp: upstream state
#: changes first, then mirror propagation, then TSR refreshes, then pulls.
TRACE_KINDS = ("publish", "mirror_sync", "refresh", "fleet_pull")


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped step of a multi-round update workload.

    ``at`` is plan time (seconds from the trace start).  Field use by
    kind:

    * ``publish`` — upstream releases a batch: ``fraction`` of the
      evolving population, sampled by an event-local RNG derived from
      ``seed`` (so the published bytes are identical no matter which
      replay mode consumes the trace);
    * ``mirror_sync`` — the named ``mirrors`` pull the origin's latest
      snapshot (``None`` = every mirror); lagging or frozen replicas are
      modelled by *when* (or whether) their sync events appear;
    * ``refresh`` — the TSR refreshes ``tenants`` (``None`` = all) as one
      orchestrated round;
    * ``fleet_pull`` — the client fleet (indices ``clients``, ``None`` =
      all) refreshes indexes and installs ``installs_per_client``
      packages each; install choices are drawn from an event-local RNG
      derived from the trace seed and this event's ``seed``.
    """

    at: float
    kind: str
    fraction: float = 0.05
    seed: int = 0
    mirrors: tuple[str, ...] | None = None
    tenants: tuple[str, ...] | None = None
    clients: tuple[int, ...] | None = None
    installs_per_client: int = 1

    def __post_init__(self):
        if self.kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace event kind: {self.kind!r}")
        if self.at < 0:
            raise ValueError(f"trace events cannot predate the trace: {self}")


@dataclass
class Trace:
    """A timestamped event stream driving one multi-round scenario."""

    events: list[TraceEvent]
    #: Observation horizon (seconds); staleness integrates over
    #: ``[0, max(horizon, last activity)]``.
    horizon: float
    seed: int = 0
    #: Sort-once cache for :meth:`ordered` — replay walks the processing
    #: order once per pass (and tests re-request it), so re-sorting the
    #: full list per access was pure waste.  Invalidated by length (the
    #: only supported mutation is appending events).
    _ordered_cache: list[TraceEvent] | None = field(
        default=None, repr=False, compare=False)

    def ordered(self) -> list[TraceEvent]:
        """Events in processing order: by time, ties by kind causality.

        Sorted once and cached; repeated calls return the *same* list
        object (treat it as read-only).  Appending to ``events`` after a
        call invalidates the cache.
        """
        cache = self._ordered_cache
        if cache is not None and len(cache) == len(self.events):
            return cache
        rank = {kind: i for i, kind in enumerate(TRACE_KINDS)}
        cache = sorted(self.events, key=lambda e: (e.at, rank[e.kind]))
        self._ordered_cache = cache
        return cache

    def iter_events(self):
        """Iterate events in processing order (materialized traces just
        walk the cached sort; :class:`StreamingTrace` generates)."""
        return iter(self.ordered())

    def rounds(self) -> int:
        return sum(1 for e in self.events if e.kind == "refresh")


@dataclass
class StreamingTrace:
    """A :func:`generate_trace` plan that is never materialized.

    Duck-types the :class:`Trace` surface the replay consumes
    (``iter_events`` / ``horizon`` / ``seed`` / ``rounds()``) but holds
    only the generation parameters: :meth:`iter_events` re-derives the
    event stream on every call, emitting events in exactly the order
    ``Trace.ordered()`` would (a k-way merge over the per-round
    generators, buffering only the rounds whose time windows overlap),
    so a 10^3-round / 10^5-client plan costs O(overlapping rounds)
    memory instead of O(rounds × clients-per-wave).
    """

    n_rounds: int
    interval: float
    publish_fraction: float = 0.1
    sync_lag: float = 0.2
    refresh_lag: float = 0.4
    pull_lag: float = 0.8
    installs_per_client: int = 1
    mirror_names: list[str] | None = None
    lagging_mirrors: dict[str, float] | None = None
    frozen_mirrors: tuple[str, ...] = ()
    fleet_size: int | None = None
    clients_per_wave: int | None = None
    seed: int = 0

    @property
    def horizon(self) -> float:
        return self.n_rounds * self.interval + self.pull_lag

    def rounds(self) -> int:
        return self.n_rounds

    def iter_events(self):
        """Generate the trace in processing order, lazily.

        Later rounds can start before an earlier round's laggy events
        fire (``pull_lag > interval``), so per-round streams are merged
        through a small heap: round ``r`` is loaded only once the heap
        top's instant reaches ``r * interval`` (a publish — every
        round's earliest event — sorts first among ties, so nothing
        unloaded can precede an emitted event).  Tie order inside the
        heap falls back to a generation counter, reproducing the stable
        sort's append-order tie-break exactly.
        """
        rank = {kind: i for i, kind in enumerate(TRACE_KINDS)}
        lagging = dict(self.lagging_mirrors or {})
        frozen = set(self.frozen_mirrors)
        heap: list[tuple[float, int, int, TraceEvent]] = []
        counter = 0
        next_round = 0

        def load(r: int):
            nonlocal counter
            for event in _round_events(
                    r, self.interval, self.publish_fraction, self.sync_lag,
                    self.refresh_lag, self.pull_lag,
                    self.installs_per_client, self.mirror_names, lagging,
                    frozen, self.seed, self.fleet_size,
                    self.clients_per_wave):
                heapq.heappush(
                    heap, (event.at, rank[event.kind], counter, event))
                counter += 1

        while next_round < self.n_rounds or heap:
            while next_round < self.n_rounds and (
                    not heap
                    or next_round * self.interval <= heap[0][0]):
                load(next_round)
                next_round += 1
            yield heapq.heappop(heap)[3]

    def ordered(self) -> list[TraceEvent]:
        """Materialize the processing order (small traces / debugging)."""
        return list(self.iter_events())


def _wave_clients(r: int, fleet_size: int | None,
                  clients_per_wave: int | None) -> tuple[int, ...] | None:
    """Round-robin pull rotation: wave ``r`` covers ``clients_per_wave``
    consecutive client indices starting at ``r * clients_per_wave`` (mod
    fleet size), so every client pulls once per ``ceil(N/k)`` rounds and
    a wave's active set — hence solver and fleet state — is O(k), not
    O(N).  ``None`` (no rotation) keeps the whole-fleet wave."""
    if fleet_size is None or clients_per_wave is None:
        return None
    k = min(clients_per_wave, fleet_size)
    base = (r * k) % fleet_size
    return tuple((base + j) % fleet_size for j in range(k))


def _round_events(r: int, interval: float, publish_fraction: float,
                  sync_lag: float, refresh_lag: float, pull_lag: float,
                  installs_per_client: int,
                  mirror_names: list[str] | None, lagging: dict[str, float],
                  frozen: set[str], seed: int, fleet_size: int | None,
                  clients_per_wave: int | None):
    """One round's events, in the materialized builder's append order."""
    t0 = r * interval
    yield TraceEvent(at=t0, kind="publish",
                     fraction=publish_fraction, seed=seed + r)
    if mirror_names is None:
        yield TraceEvent(at=t0 + sync_lag, kind="mirror_sync")
    else:
        for mirror in mirror_names:
            if mirror in frozen:
                continue
            lag = lagging.get(mirror, 0.0)
            yield TraceEvent(at=t0 + sync_lag + lag, kind="mirror_sync",
                             mirrors=(mirror,))
    yield TraceEvent(at=t0 + refresh_lag, kind="refresh")
    yield TraceEvent(at=t0 + pull_lag, kind="fleet_pull",
                     installs_per_client=installs_per_client,
                     clients=_wave_clients(r, fleet_size, clients_per_wave),
                     seed=seed + r)


def generate_trace(rounds: int, interval: float, *,
                   publish_fraction: float = 0.1,
                   sync_lag: float = 0.2,
                   refresh_lag: float = 0.4,
                   pull_lag: float = 0.8,
                   installs_per_client: int = 1,
                   mirror_names: list[str] | None = None,
                   lagging_mirrors: dict[str, float] | None = None,
                   frozen_mirrors: tuple[str, ...] = (),
                   fleet_size: int | None = None,
                   clients_per_wave: int | None = None,
                   streaming: bool = False,
                   seed: int = 0) -> Trace | StreamingTrace:
    """A publish → sync → refresh → pull cycle repeated ``rounds`` times.

    Every round ``r`` starts at ``r * interval``: upstream publishes a
    batch, honest mirrors sync after ``sync_lag`` (per-mirror extra lag
    via ``lagging_mirrors``; ``frozen_mirrors`` never sync — the freeze
    attack as a trace property), the TSR runs a publish-triggered refresh
    at ``refresh_lag``, and the fleet pulls at ``pull_lag``.  Pass
    ``mirror_names`` to emit per-mirror sync events (required when lag or
    freeze is used); with ``None`` one sync event covers every mirror.

    ``fleet_size``/``clients_per_wave`` turn whole-fleet pull waves into
    a round-robin rotation (see :func:`_wave_clients`) — the shape that
    keeps a 10^5-client plan's *active* set small.  ``streaming=True``
    returns a :class:`StreamingTrace` that generates the identical event
    sequence lazily instead of materializing the list.
    """
    if rounds < 1:
        raise ValueError("a trace needs at least one round")
    if interval <= 0:
        raise ValueError(f"round interval must be positive: {interval}")
    lagging = dict(lagging_mirrors or {})
    frozen = set(frozen_mirrors)
    if (lagging or frozen) and mirror_names is None:
        raise ValueError("per-mirror lag/freeze needs explicit mirror_names")
    if (fleet_size is None) != (clients_per_wave is None):
        raise ValueError(
            "pull rotation needs both fleet_size and clients_per_wave")
    if streaming:
        return StreamingTrace(
            n_rounds=rounds, interval=interval,
            publish_fraction=publish_fraction, sync_lag=sync_lag,
            refresh_lag=refresh_lag, pull_lag=pull_lag,
            installs_per_client=installs_per_client,
            mirror_names=mirror_names, lagging_mirrors=lagging_mirrors,
            frozen_mirrors=frozen_mirrors, fleet_size=fleet_size,
            clients_per_wave=clients_per_wave, seed=seed)
    events: list[TraceEvent] = []
    for r in range(rounds):
        events.extend(_round_events(
            r, interval, publish_fraction, sync_lag, refresh_lag, pull_lag,
            installs_per_client, mirror_names, lagging, frozen, seed,
            fleet_size, clients_per_wave))
    return Trace(events=events, horizon=rounds * interval + pull_lag,
                 seed=seed)


# -- pieces -------------------------------------------------------------------

def _generate_files(name: str, rng: random.Random,
                    with_content: bool) -> list[PackageFile]:
    file_count = int(_lognormal(rng, _FILES_MEDIAN, _FILES_SIGMA, 1, _FILES_MAX))
    if not with_content:
        return [
            PackageFile(path=f"/usr/lib/{name}/file{i}", content=b"x")
            for i in range(min(file_count, 3))
        ]
    # One main payload (binary/library) plus small supporting files
    # (headers, docs, locale data) — the mix real packages ship.
    sizes = [int(_lognormal(rng, _PAYLOAD_MEDIAN, _PAYLOAD_SIGMA,
                            _PAYLOAD_MIN, _PAYLOAD_MAX))]
    sizes.extend(
        int(_lognormal(rng, _SUPPORT_MEDIAN, _SUPPORT_SIGMA,
                       _SUPPORT_MIN, _SUPPORT_MAX))
        for _ in range(file_count - 1)
    )
    files = []
    for i, size in enumerate(sizes):
        directory = "/usr/bin" if i == 0 else f"/usr/lib/{name}"
        files.append(PackageFile(
            path=f"{directory}/{name}-f{i}",
            content=rng.randbytes(size),
            mode=0o755 if i == 0 else 0o644,
        ))
    return files


def _pick_depends(rng: random.Random, existing: list[ApkPackage]) -> list[str]:
    if not existing or rng.random() < 0.55:
        return []
    count = min(len(existing), rng.choice((1, 1, 1, 2, 2, 3)))
    return sorted({pkg.name for pkg in rng.sample(existing, count)})


def _fs_script(name: str) -> str:
    return (
        "#!/bin/sh\n"
        f"mkdir -p /var/lib/{name}\n"
        f"chmod 755 /var/lib/{name}\n"
        f"ln -sf /usr/bin/{name}-f0 /usr/bin/{name}\n"
        f"rm -f /tmp/{name}.stage\n"
    )


def _empty_script(name: str) -> str:
    return (
        "#!/bin/sh\n"
        f"if [ -f /etc/{name}.conf ]; then\n"
        "  echo configuration present\n"
        "fi\n"
        "exit 0\n"
    )


def _text_script() -> str:
    return (
        "#!/bin/sh\n"
        "grep -q root /etc/passwd\n"
        "cat /etc/hostname | head -n 1\n"
    )


def _user_group_script(name: str, index: int, rng: random.Random,
                       mix_fs: bool = False, mix_text: bool = False,
                       insecure: bool = False) -> str:
    user = f"svc{index:05d}"
    group = f"grp{index:05d}"
    lines = ["#!/bin/sh", f"addgroup -S {group}"]
    if insecure:
        # The CVE-2019-5021 pattern: usable shell + deleted password.
        lines.append(f"adduser -S -D -H -s /bin/ash -G {group} {user}")
        lines.append(f"passwd -d {user}")
    else:
        lines.append(f"adduser -S -D -H -s /sbin/nologin -G {group} {user}")
    if mix_fs:
        lines.append(f"mkdir -p /var/lib/{name}")
        lines.append(f"chmod 750 /var/lib/{name}")
    if mix_text:
        lines.append("grep -q root /etc/passwd")
    return "\n".join(lines) + "\n"


def _config_change_script(name: str) -> str:
    # Appending to an existing config file is exactly the unpredictable
    # modification TSR cannot sanitize (the roundcubemail case).
    return f"echo session_key={name} >> /etc/{name}.conf\n"
