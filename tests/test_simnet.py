"""Tests for the simulated clock, latency model, and transport."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simnet.clock import SimClock
from repro.simnet.latency import Continent, LatencyModel
from repro.simnet.network import (
    Host,
    Network,
    ParallelTransferSchedule,
    Request,
    Response,
    ScheduledFetchSession,
    max_min_rates,
)
from repro.util.errors import NetworkError


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_to_is_monotone(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)  # no-op, already past
        assert clock.now() == 10.0
        clock.advance_to(12.0)
        assert clock.now() == 12.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)
        with pytest.raises(ValueError):
            SimClock(-1)

    @given(st.lists(st.floats(0, 100), max_size=20))
    def test_monotonic_under_any_advances(self, steps):
        clock = SimClock()
        last = 0.0
        for step in steps:
            clock.advance(step)
            assert clock.now() >= last
            last = clock.now()


class TestLatencyModel:
    def test_same_continent_anchor(self):
        # Paper: average same-continent (EU) mirror latency is 26.4 ms.
        model = LatencyModel(jitter=0)
        assert model.rtt(Continent.EUROPE, Continent.EUROPE) == pytest.approx(0.0264)

    def test_cross_continent_slower(self):
        model = LatencyModel(jitter=0)
        eu = model.rtt(Continent.EUROPE, Continent.EUROPE)
        asia = model.rtt(Continent.EUROPE, Continent.ASIA)
        assert asia > 3 * eu

    def test_rtt_symmetric(self):
        model = LatencyModel(jitter=0)
        assert model.rtt(Continent.EUROPE, Continent.ASIA) == model.rtt(
            Continent.ASIA, Continent.EUROPE
        )

    def test_jitter_deterministic_per_seed(self):
        a = LatencyModel(seed=1)
        b = LatencyModel(seed=1)
        series_a = [a.rtt(Continent.EUROPE, Continent.EUROPE) for _ in range(5)]
        series_b = [b.rtt(Continent.EUROPE, Continent.EUROPE) for _ in range(5)]
        assert series_a == series_b

    def test_jitter_bounded(self):
        model = LatencyModel(jitter=0.15, seed=3)
        base = model.base_rtt(Continent.EUROPE, Continent.EUROPE)
        for _ in range(100):
            value = model.rtt(Continent.EUROPE, Continent.EUROPE)
            assert base * 0.85 <= value <= base * 1.15

    def test_transfer_time_table3_anchor(self):
        # ~3 GB at the default bandwidth should take on the order of 17 min.
        model = LatencyModel()
        seconds = model.transfer_time(3 * 1024**3)
        assert 14 * 60 < seconds < 21 * 60

    def test_transfer_rejects_bad_args(self):
        model = LatencyModel()
        with pytest.raises(ValueError):
            model.transfer_time(-1)
        with pytest.raises(ValueError):
            model.transfer_time(10, bandwidth=0)

    def test_continent_parse(self):
        assert Continent.parse("Europe") is Continent.EUROPE
        assert Continent.parse("north-america") is Continent.NORTH_AMERICA
        assert Continent.parse("AS") is Continent.ASIA
        with pytest.raises(ValueError):
            Continent.parse("atlantis")


def _echo_handler(operation, payload):
    return (operation, payload), 128


def _build_network() -> Network:
    net = Network()
    net.add_host(Host("tsr.eu", Continent.EUROPE, handler=_echo_handler))
    net.add_host(Host("mirror.eu", Continent.EUROPE, handler=_echo_handler))
    net.add_host(Host("mirror.asia", Continent.ASIA, handler=_echo_handler))
    return net


class TestNetwork:
    def test_call_advances_clock(self):
        net = _build_network()
        response = net.call("tsr.eu", Request("mirror.eu", "ping"))
        assert response.payload == ("ping", None)
        assert net.clock.now() == pytest.approx(response.elapsed)
        assert response.elapsed > 0.02  # at least the EU RTT

    def test_cross_continent_call_slower(self):
        net = _build_network()
        eu = net.call("tsr.eu", Request("mirror.eu", "ping")).elapsed
        asia = net.call("tsr.eu", Request("mirror.asia", "ping")).elapsed
        assert asia > eu

    def test_duplicate_host_rejected(self):
        net = _build_network()
        with pytest.raises(NetworkError):
            net.add_host(Host("tsr.eu", Continent.EUROPE))

    def test_unknown_host_rejected(self):
        net = _build_network()
        with pytest.raises(NetworkError):
            net.call("tsr.eu", Request("nope", "ping"))

    def test_down_host_times_out(self):
        net = _build_network()
        net.set_down("mirror.eu")
        with pytest.raises(NetworkError):
            net.call("tsr.eu", Request("mirror.eu", "ping"))

    def test_partition_blocks_and_heals(self):
        net = _build_network()
        net.partition("tsr.eu", "mirror.eu")
        with pytest.raises(NetworkError):
            net.call("tsr.eu", Request("mirror.eu", "ping"))
        net.heal("tsr.eu", "mirror.eu")
        assert net.call("tsr.eu", Request("mirror.eu", "ping")).payload[0] == "ping"

    def test_large_payload_takes_longer(self):
        net = _build_network()
        small = net.call("tsr.eu", Request("mirror.eu", "get", size_bytes=100)).elapsed
        net2 = _build_network()
        big = net2.call("tsr.eu", Request("mirror.eu", "get", size_bytes=10_000_000)).elapsed
        assert big > small + 1.0  # 10 MB at ~3 MB/s

    def test_gather_advances_to_slowest_success(self):
        net = _build_network()
        requests = [Request("mirror.eu", "ping"), Request("mirror.asia", "ping")]
        responses = net.gather("tsr.eu", requests)
        elapsed = [r.elapsed for r in responses if not isinstance(r, NetworkError)]
        assert len(elapsed) == 2
        assert net.clock.now() == pytest.approx(max(elapsed))

    def test_gather_mixes_failures_and_successes(self):
        net = _build_network()
        net.set_down("mirror.asia")
        responses = net.gather(
            "tsr.eu", [Request("mirror.eu", "ping"), Request("mirror.asia", "ping")]
        )
        assert not isinstance(responses[0], NetworkError)
        assert isinstance(responses[1], NetworkError)

    def test_gather_all_failed_advances_by_timeout(self):
        net = _build_network()
        net.set_down("mirror.eu")
        net.set_down("mirror.asia")
        responses = net.gather(
            "tsr.eu", [Request("mirror.eu", "ping"), Request("mirror.asia", "ping")]
        )
        assert all(isinstance(r, NetworkError) for r in responses)
        assert net.clock.now() == pytest.approx(net.timeout)

    def test_timeout_enforced_on_slow_transfer(self):
        net = _build_network()
        with pytest.raises(NetworkError):
            # 100 MB at 3 MB/s far exceeds the 5 s default timeout.
            net.call("tsr.eu", Request("mirror.eu", "get", size_bytes=100_000_000))

    def test_extra_delay_models_throttled_mirror(self):
        net = _build_network()
        baseline = net.call("tsr.eu", Request("mirror.eu", "ping")).elapsed
        net.host("mirror.eu").extra_delay = 0.2
        slowed = net.call("tsr.eu", Request("mirror.eu", "ping")).elapsed
        assert slowed > baseline + 0.15


class TestMaxMinRatesEdgeCases:
    def test_capacity_exactly_sum_of_caps_gives_full_rates(self):
        caps = {"a": 4.0, "b": 6.0}
        assert max_min_rates(caps, 10.0) == caps

    def test_single_stream_capped_by_capacity(self):
        assert max_min_rates({"a": 10.0}, 4.0) == {"a": 4.0}

    def test_single_stream_capped_by_own_bandwidth(self):
        assert max_min_rates({"a": 3.0}, 100.0) == {"a": 3.0}

    def test_capped_streams_never_exhaust_capacity_for_the_rest(self):
        # Progressive filling: a stream popped at its cap always leaves a
        # positive share for every still-pending stream.
        rates = max_min_rates({"a": 1.0, "b": 2.0, "c": 50.0}, 6.0)
        assert rates["a"] == 1.0
        assert rates["b"] == 2.0
        assert rates["c"] == pytest.approx(3.0)
        assert all(rate > 0 for rate in rates.values())
        assert sum(rates.values()) == pytest.approx(6.0)

    def test_tiny_capacity_splits_evenly_and_stays_positive(self):
        rates = max_min_rates({"a": 5.0, "b": 5.0}, 1e-6)
        assert rates["a"] == pytest.approx(5e-7)
        assert rates["b"] == pytest.approx(5e-7)

    @given(st.dictionaries(st.text(min_size=1, max_size=4),
                           st.floats(0.1, 100.0), min_size=1, max_size=8),
           st.floats(0.05, 500.0))
    def test_allocation_feasible_and_work_conserving(self, caps, capacity):
        rates = max_min_rates(caps, capacity)
        assert set(rates) == set(caps)
        for key, rate in rates.items():
            assert 0 < rate <= caps[key] + 1e-9
        total = sum(rates.values())
        assert total <= max(capacity, sum(caps.values())) + 1e-9
        if capacity < sum(caps.values()):
            # The shared link binds: it must be fully used.
            assert total == pytest.approx(capacity)


class TestScheduleFaults:
    def test_rejects_nonpositive_downlink(self):
        with pytest.raises(ValueError):
            ParallelTransferSchedule(downlink_bandwidth=0.0)
        with pytest.raises(ValueError):
            ParallelTransferSchedule(downlink_bandwidth=-5.0)

    def test_downed_channel_mid_queue_stalls_only_its_queue(self):
        # Channel m1 times out on its second item (the peer went down /
        # was partitioned mid-queue, modelled as a zero-byte stall that
        # holds the channel for the timeout); m2 is unaffected.
        schedule = ParallelTransferSchedule()
        schedule.enqueue("m1", "a", setup=0.0, size_bytes=100, bandwidth=100.0)
        schedule.enqueue("m1", ("stall", "b"), setup=5.0, size_bytes=0,
                         bandwidth=100.0)
        schedule.enqueue("m1", "c", setup=0.0, size_bytes=100, bandwidth=100.0)
        schedule.enqueue("m2", "d", setup=0.0, size_bytes=400, bandwidth=100.0)
        timings = schedule.solve()
        assert timings["a"].finish == pytest.approx(1.0)
        assert timings[("stall", "b")].finish == pytest.approx(6.0)
        assert timings["c"].start == pytest.approx(6.0)
        assert timings["c"].finish == pytest.approx(7.0)
        assert timings["d"].finish == pytest.approx(4.0)

    def test_no_float_deadlock_at_large_clock_offsets(self):
        """Regression: when a stream's remaining bytes drain to a
        sub-epsilon residue at a clock value whose float ulp exceeds the
        next step (residue/rate), the old subtraction-based loop could
        stop advancing time and spin forever.  The event-defining stream
        now completes by identity, so solve always terminates."""
        schedule = ParallelTransferSchedule()
        # Late-queued items (retry shapes: big setups after earlier
        # transfers) push completions to clock values ~15 s where
        # residues of a few nanobytes are below one ulp of the horizon.
        schedule.enqueue("m1", "early", setup=0.029, size_bytes=160265,
                         bandwidth=3145728.0)
        schedule.enqueue("m1", "late", setup=9.413, size_bytes=57927,
                         bandwidth=3145728.0)
        schedule.enqueue("m2", "other", setup=4.733, size_bytes=71511,
                         bandwidth=3145728.0)
        schedule.enqueue("m2", "tail", setup=9.978, size_bytes=11129,
                         bandwidth=3145728.0)
        timings = schedule.solve()
        assert len(timings) == 4
        assert all(t.finish >= t.start for t in timings.values())

    def test_stall_consumes_no_shared_downlink(self):
        schedule = ParallelTransferSchedule(downlink_bandwidth=100.0)
        schedule.enqueue("m1", ("stall", "x"), setup=5.0, size_bytes=0,
                         bandwidth=100.0)
        schedule.enqueue("m2", "d", setup=0.0, size_bytes=400, bandwidth=100.0)
        timings = schedule.solve()
        # The stalled channel never enters a payload phase, so m2 keeps
        # the full link.
        assert timings["d"].finish == pytest.approx(4.0)


def _sized_network(downlink: float | None) -> Network:
    """Jitter-free network with two mirrors serving 1000-byte payloads."""
    net = Network(latency=LatencyModel(jitter=0))
    net.timeout = 1000.0
    net.add_host(Host("dst.eu", Continent.EUROPE,
                      downlink_bandwidth=downlink))
    handler = lambda op, payload: (b"x" * 1000, 1000)
    net.add_host(Host("m1.eu", Continent.EUROPE, handler=handler,
                      processing_time=0.0, bandwidth=100.0))
    net.add_host(Host("m2.eu", Continent.EUROPE, handler=handler,
                      processing_time=0.0, bandwidth=100.0, extra_delay=5.0))
    return net


class TestGatherScheduled:
    """The schedule-backed gather: exact max-min downlink accounting."""

    def test_no_downlink_matches_solo_timings(self):
        net = _sized_network(None)
        requests = [Request("m1.eu", "get", size_bytes=0),
                    Request("m2.eu", "get", size_bytes=0)]
        responses = net.gather("dst.eu", requests)
        rtt = 0.0264
        assert responses[0].elapsed == pytest.approx(rtt + 10.0)
        assert responses[1].elapsed == pytest.approx(rtt + 5.0 + 10.0)
        assert net.clock.now() == pytest.approx(rtt + 15.0)

    def test_shared_downlink_exact_max_min_not_closed_form(self):
        # m1 starts 5 s before m2 (handshake delay): it transfers 500 B
        # alone at the full 100 B/s, then shares 50/50.  The retired
        # closed-form bound would charge max(setup) + 2000/100 = 25 s
        # after the RTT; the exact schedule finishes sooner.
        net = _sized_network(100.0)
        requests = [Request("m1.eu", "get", size_bytes=0),
                    Request("m2.eu", "get", size_bytes=0)]
        responses = net.gather("dst.eu", requests)
        rtt = 0.0264
        assert responses[0].elapsed == pytest.approx(rtt + 15.0)
        assert responses[1].elapsed == pytest.approx(rtt + 5.0 + 15.0)
        assert net.clock.now() == pytest.approx(rtt + 20.0)
        closed_form = rtt + 5.0 + 20.0
        assert net.clock.now() < closed_form

    def test_same_channel_serializes_requests(self):
        net = _sized_network(None)
        requests = [Request("m1.eu", "get", size_bytes=0),
                    Request("m1.eu", "get", size_bytes=0)]
        responses = net.gather_scheduled(
            "dst.eu", requests, channels=["c", "c"], advance="max"
        )
        rtt = 0.0264
        assert responses[0].elapsed == pytest.approx(rtt + 10.0)
        # The second request waits for the first, then pays its own setup.
        assert responses[1].elapsed == pytest.approx(2 * (rtt + 10.0))

    def test_start_at_offsets_the_wave(self):
        net = _sized_network(None)
        responses = net.gather_scheduled(
            "dst.eu", [Request("m1.eu", "get", size_bytes=0)], start_at=100.0
        )
        assert responses[0].elapsed == pytest.approx(100.0 + 0.0264 + 10.0)
        assert net.clock.now() == 0.0  # advance="none" by default

    def test_partitioned_host_fails_without_stalling_others(self):
        net = _sized_network(None)
        net.partition("dst.eu", "m2.eu")
        responses = net.gather("dst.eu", [Request("m1.eu", "get", size_bytes=0),
                                          Request("m2.eu", "get", size_bytes=0)])
        assert isinstance(responses[0], Response)
        assert isinstance(responses[1], NetworkError)
        assert net.clock.now() == pytest.approx(responses[0].elapsed)

    def test_channels_length_validated(self):
        net = _sized_network(None)
        with pytest.raises(ValueError):
            net.gather_scheduled("dst.eu", [Request("m1.eu", "get")],
                                 channels=["a", "b"])


class TestScheduledFetchSession:
    def test_channels_share_capacity_and_serialize_per_client(self):
        net = _sized_network(100.0)
        session = ScheduledFetchSession(net, shared_bandwidth=100.0)
        # Two clients, one request each, both served by m1 (bandwidth 100):
        # the shared 100 B/s splits 50/50 while both are active.
        net.add_host(Host("c1.eu", Continent.EUROPE))
        net.add_host(Host("c2.eu", Continent.EUROPE))
        payload = session.fetch("c1.eu", Request("m1.eu", "get", size_bytes=0))
        assert payload == b"x" * 1000
        session.fetch("c2.eu", Request("m1.eu", "get", size_bytes=0))
        session.solve()
        rtt = 0.0264
        assert session.channel_finish("c1.eu") == pytest.approx(rtt + 20.0)
        assert session.channel_finish("c2.eu") == pytest.approx(rtt + 20.0)
        assert session.makespan == pytest.approx(rtt + 20.0)
        assert session.channel_finish("idle") == 0.0

    def test_failed_fetch_charges_timeout_and_raises(self):
        net = _sized_network(None)
        net.add_host(Host("c1.eu", Continent.EUROPE))
        net.set_down("m1.eu")
        session = ScheduledFetchSession(net)
        with pytest.raises(NetworkError):
            session.fetch("c1.eu", Request("m1.eu", "get", size_bytes=0))
        assert session.channel_finish("c1.eu") == pytest.approx(net.timeout)

    def test_solved_session_rejects_new_fetches(self):
        net = _sized_network(None)
        net.add_host(Host("c1.eu", Continent.EUROPE))
        session = ScheduledFetchSession(net)
        session.solve()
        with pytest.raises(NetworkError):
            session.fetch("c1.eu", Request("m1.eu", "get", size_bytes=0))
