#!/usr/bin/env python3
"""Quickstart: the whole TSR story in one script.

Builds an original repository with a handful of packages, three mirrors, a
TSR instance inside a (simulated) SGX enclave, an integrity-enforced node,
and a monitoring system — then shows the paper's Figure 1 problem and how
TSR solves it:

1. a node updating straight from a mirror fails remote attestation
   (false positive), while
2. the same update served through TSR verifies cleanly.

Run:  python examples/quickstart.py
"""

from repro.archive.apk import ApkPackage, PackageFile
from repro.workload.scenario import build_scenario


def make_packages():
    """A libc, a server that creates its service account, and a package
    TSR must reject (it activates a new login shell)."""
    return [
        ApkPackage(
            name="musl", version="1.1.24-r2",
            description="the C library",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl libc")],
        ),
        ApkPackage(
            name="nginx", version="1.16.1-r6",
            description="HTTP server", depends=["musl"],
            scripts={".pre-install": (
                "#!/bin/sh\n"
                "addgroup -S www-data\n"
                "adduser -S -D -H -s /sbin/nologin -G www-data nginx\n"
                "mkdir -p /var/www\n"
            )},
            files=[PackageFile("/usr/sbin/nginx", b"\x7fELF nginx server",
                               mode=0o755)],
        ),
        ApkPackage(
            name="fancy-shell", version="0.9-r0",
            description="a package TSR must reject",
            scripts={".post-install": "add-shell /bin/fancysh\n"},
        ),
    ]


def main():
    print("== assembling deployment (origin, 3 mirrors, TSR, monitor) ==")
    scenario = build_scenario(packages=make_packages(), key_bits=1024)
    report = scenario.refresh_report
    print(f"TSR refreshed: {report.sanitized} packages sanitized, "
          f"{len(report.rejected)} rejected")
    for name, reason in report.rejected:
        print(f"  rejected {name}: {reason}")

    print("\n== the problem: update straight from a mirror ==")
    plain_node, plain_pm = scenario.new_node("plain-node", use_tsr=False)
    plain_pm.update()
    plain_pm.install("nginx")
    plain_pm.exercise("nginx")
    plain_node.load_file("/etc/passwd")
    verdict = scenario.monitor.verify_node(plain_node)
    print(f"monitoring verdict: trusted={verdict.trusted}")
    for violation in verdict.violations[:4]:
        print(f"  violation: {violation.path} -- {violation.reason}")
    print("  (the node is fine; the verifier just cannot tell — the "
          "paper's false positive)")

    print("\n== the fix: the same update through TSR ==")
    tsr_node, tsr_pm = scenario.new_node("tsr-node", use_tsr=True)
    tsr_pm.update()
    stats = tsr_pm.install("nginx")
    tsr_pm.exercise("nginx")
    tsr_node.load_file("/etc/passwd")
    print(f"installed {stats.packages} packages, "
          f"{stats.xattrs_written} IMA signatures materialized from PAX headers")
    verdict = scenario.monitor.verify_node(tsr_node)
    print(f"monitoring verdict: trusted={verdict.trusted}")

    print("\n== and real attacks are still caught ==")
    tsr_node.fs.write_file("/usr/bin/backdoor", b"\x7fELF evil")
    tsr_node.load_file("/usr/bin/backdoor")
    verdict = scenario.monitor.verify_node(tsr_node)
    print(f"after dropping an unsigned binary: trusted={verdict.trusted}")
    for violation in verdict.violations:
        print(f"  violation: {violation.path} -- {violation.reason}")

    assert not verdict.trusted
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
