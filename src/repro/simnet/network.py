"""Synchronous request/response transport over the latency model.

Hosts register a handler; callers issue requests that advance the shared
:class:`SimClock` by RTT plus payload transfer plus handler processing time.
``gather`` models concurrent fan-out (the quorum reader contacts several
mirrors at once): the clock advances to the *slowest completed* request, but
each response records its individual completion offset.

Parallel-transfer accounting: :meth:`Network.probe` resolves a request
without touching the clock, and :class:`ParallelTransferSchedule` computes
per-transfer completion offsets for many concurrent streams — each peer
serves one stream at a time at its own bandwidth, and all active streams
share the receiver's downlink max-min fairly.  The pipelined refresh engine
(:mod:`repro.core.pipeline`) is built on these two primitives.

Failure injection: hosts can be taken down (requests fail after a timeout)
and pairs of hosts can be partitioned — the paper's adversary "prevents
network connection to the original repository and arbitrary mirrors".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.simnet.clock import SimClock
from repro.simnet.latency import (
    Continent,
    DEFAULT_BANDWIDTH_BYTES_PER_S,
    LatencyModel,
)
from repro.util.errors import NetworkError

DEFAULT_TIMEOUT_S = 5.0


@dataclass
class Request:
    """A request addressed to a host; ``payload`` is handler-defined."""

    target: str
    operation: str
    payload: object = None
    size_bytes: int = 256  # small control message by default


@dataclass
class Response:
    """Handler result plus transport accounting."""

    payload: object
    size_bytes: int
    elapsed: float  # seconds from issue to completion (simulated)


@dataclass
class TransferProbe:
    """A resolved request with raw transfer parameters, clock untouched.

    ``setup`` covers RTT, request upload, server processing and throttling;
    the payload phase is *not* pre-computed — callers schedule it against
    ``size_bytes`` and ``bandwidth`` so concurrent streams can share links.
    """

    payload: object
    size_bytes: int
    setup: float
    bandwidth: float

    @property
    def solo_duration(self) -> float:
        """Completion time when the stream runs with no contention."""
        return self.setup + self.size_bytes / self.bandwidth


@dataclass
class TransferTiming:
    """When one scheduled transfer started and finished (clock offsets)."""

    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class _StreamItem:
    key: object
    setup: float
    size_bytes: int
    bandwidth: float


def max_min_rates(caps: dict, capacity: float | None) -> dict:
    """Max-min fair allocation of a shared capacity among capped streams.

    Each stream receives at most its own cap (the peer's serving
    bandwidth); slack left by streams capped below the fair share is
    redistributed to the rest (progressive filling).  ``capacity=None``
    means the shared link is not the bottleneck.
    """
    if capacity is None or capacity >= sum(caps.values()):
        return dict(caps)
    rates: dict = {}
    remaining = capacity
    pending = sorted(caps.items(), key=lambda item: (item[1], str(item[0])))
    while pending:
        share = remaining / len(pending)
        key, cap = pending[0]
        if cap <= share:
            rates[key] = cap
            remaining -= cap
            pending.pop(0)
            continue
        for key, cap in pending:
            rates[key] = share
        break
    return rates


class ParallelTransferSchedule:
    """Fluid-flow accounting for concurrent downloads over serial channels.

    Each *channel* (one mirror connection) processes its queue in order: a
    per-item setup phase (RTT + upload + processing, no downlink use)
    followed by a payload phase at up to the peer's bandwidth.  All payload
    phases active at the same instant share ``downlink_bandwidth`` max-min
    fairly — the NIC bottleneck that makes many parallel streams saturate.

    ``solve`` runs the event simulation and returns per-item
    :class:`TransferTiming` offsets; it does not advance any clock, so the
    caller decides how the makespan maps onto simulated time.
    """

    def __init__(self, downlink_bandwidth: float | None = None):
        self._downlink = downlink_bandwidth
        self._queues: dict[object, list[_StreamItem]] = {}

    def enqueue(self, channel: object, key: object, setup: float,
                size_bytes: int, bandwidth: float):
        if setup < 0 or size_bytes < 0:
            raise ValueError("negative transfer parameters")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self._queues.setdefault(channel, []).append(
            _StreamItem(key=key, setup=setup, size_bytes=size_bytes,
                        bandwidth=bandwidth)
        )

    def solve(self, start_time: float = 0.0) -> dict[object, TransferTiming]:
        timings: dict[object, TransferTiming] = {}
        # Per-channel cursor state: (queue index, phase, phase datum).
        # phase "setup" -> datum is the absolute end of the setup phase;
        # phase "transfer" -> datum is the remaining payload bytes.
        state: dict[object, list] = {}
        started: dict[object, float] = {}
        for channel, queue in self._queues.items():
            if queue:
                state[channel] = [0, "setup", start_time + queue[0].setup]
                started[(channel, 0)] = start_time
        now = start_time
        while state:
            active = {
                channel: self._queues[channel][cursor[0]].bandwidth
                for channel, cursor in state.items()
                if cursor[1] == "transfer"
            }
            rates = max_min_rates(active, self._downlink)
            horizon = []
            for channel, cursor in state.items():
                if cursor[1] == "setup":
                    horizon.append(cursor[2])
                else:
                    rate = rates[channel]
                    horizon.append(now + cursor[2] / rate if rate > 0
                                   else float("inf"))
            step_end = min(horizon)
            for channel, cursor in list(state.items()):
                if cursor[1] == "transfer":
                    cursor[2] -= rates[channel] * (step_end - now)
            now = step_end
            for channel, cursor in list(state.items()):
                index, phase, datum = cursor
                item = self._queues[channel][index]
                if phase == "setup" and datum <= now + 1e-15:
                    state[channel] = [index, "transfer", float(item.size_bytes)]
                elif phase == "transfer" and datum <= 1e-9:
                    timings[item.key] = TransferTiming(
                        start=started[(channel, index)], finish=now
                    )
                    if index + 1 < len(self._queues[channel]):
                        nxt = self._queues[channel][index + 1]
                        state[channel] = [index + 1, "setup", now + nxt.setup]
                        started[(channel, index + 1)] = now
                    else:
                        del state[channel]
        return timings


@dataclass
class Host:
    """A network endpoint with a handler and failure state."""

    name: str
    continent: Continent
    handler: Callable[[str, object], tuple[object, int]] | None = None
    processing_time: float = 0.0005
    bandwidth: float = DEFAULT_BANDWIDTH_BYTES_PER_S
    up: bool = True
    # Extra one-way delay, used to model overloaded or throttled mirrors.
    extra_delay: float = 0.0
    #: When set, concurrent ``gather`` responses share this sustained
    #: download bandwidth at the *receiving* host (the NIC bottleneck that
    #: makes quorum latency grow with mirror count, Fig. 13).
    downlink_bandwidth: float | None = None

    def handle(self, operation: str, payload: object) -> tuple[object, int]:
        if self.handler is None:
            raise NetworkError(f"host {self.name} has no handler registered")
        return self.handler(operation, payload)


class Network:
    """Host registry and transport; owns the latency model."""

    def __init__(self, clock: SimClock | None = None,
                 latency: LatencyModel | None = None,
                 timeout: float = DEFAULT_TIMEOUT_S):
        self.clock = clock or SimClock()
        self.latency = latency or LatencyModel()
        self.timeout = timeout
        self._hosts: dict[str, Host] = {}
        self._partitions: set[frozenset[str]] = set()

    def add_host(self, host: Host) -> Host:
        if host.name in self._hosts:
            raise NetworkError(f"host already registered: {host.name}")
        self._hosts[host.name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host: {name}") from None

    def hosts(self) -> list[Host]:
        return list(self._hosts.values())

    def set_down(self, name: str, down: bool = True):
        self.host(name).up = not down

    def partition(self, a: str, b: str):
        """Block traffic between two hosts (adversarial network control)."""
        self._partitions.add(frozenset([a, b]))

    def heal(self, a: str, b: str):
        self._partitions.discard(frozenset([a, b]))

    def _reachable(self, src: str, dst: str) -> bool:
        return frozenset([src, dst]) not in self._partitions

    def probe(self, src_name: str, request: Request) -> TransferProbe:
        """Resolve a request without advancing the clock.

        Executes the target's handler and returns the payload plus the raw
        transfer parameters (setup latency, response size, peer bandwidth)
        so schedulers can account the payload phase under contention.
        """
        src = self.host(src_name)
        dst = self.host(request.target)
        if not dst.up or not self._reachable(src.name, dst.name):
            # A dead or partitioned peer manifests as a timeout.
            raise NetworkError(
                f"request from {src.name} to {request.target} timed out "
                f"after {self.timeout}s"
            )
        rtt = self.latency.rtt(src.continent, dst.continent)
        payload_up = self.latency.transfer_time(request.size_bytes, dst.bandwidth)
        result, response_size = dst.handle(request.operation, request.payload)
        setup = rtt + payload_up + dst.processing_time + dst.extra_delay
        payload_down = self.latency.transfer_time(response_size, dst.bandwidth)
        if setup + payload_down > self.timeout:
            raise NetworkError(
                f"request from {src.name} to {request.target} exceeded "
                f"timeout ({setup + payload_down:.3f}s > {self.timeout}s)"
            )
        return TransferProbe(payload=result, size_bytes=response_size,
                             setup=setup, bandwidth=dst.bandwidth)

    def _completion_parts(self, src: Host,
                          request: Request) -> tuple[object, int, float, float]:
        """Compute (payload, response size, pre-download offset, download).

        The pre-download offset covers RTT, request upload, server
        processing and throttling; the download part is reported separately
        so ``gather`` can model a shared receiver downlink.
        """
        probe = self.probe(src.name, request)
        download = self.latency.transfer_time(probe.size_bytes, probe.bandwidth)
        return probe.payload, probe.size_bytes, probe.setup, download

    def _completion_offset(self, src: Host, request: Request) -> tuple[object, int, float]:
        """Compute (response payload, response size, completion offset)."""
        payload, size, pre, download = self._completion_parts(src, request)
        return payload, size, pre + download

    def call(self, src_name: str, request: Request) -> Response:
        """Issue a single request; advances the clock by its full latency."""
        src = self.host(src_name)
        payload, size, offset = self._completion_offset(src, request)
        self.clock.advance(offset)
        return Response(payload=payload, size_bytes=size, elapsed=offset)

    def gather(self, src_name: str, requests: list[Request],
               advance: str = "max") -> list[Response | NetworkError]:
        """Issue requests concurrently.

        Returns one entry per request: a :class:`Response` or the
        :class:`NetworkError` the request failed with.  The clock advances by
        the slowest *successful* completion (``advance="max"``) — timeouts do
        not stall the caller because the quorum logic proceeds as soon as it
        has enough answers — or by the timeout if every request failed.
        """
        if advance not in ("max", "none"):
            raise ValueError(f"unsupported advance mode: {advance}")
        src = self.host(src_name)
        results: list[Response | NetworkError] = []
        pres: list[float] = []
        downloads: list[float] = []
        sizes: list[int] = []
        for request in requests:
            try:
                payload, size, pre, download = self._completion_parts(src, request)
            except NetworkError as exc:
                results.append(exc)
            else:
                results.append(Response(payload=payload, size_bytes=size,
                                        elapsed=pre + download))
                pres.append(pre)
                downloads.append(download)
                sizes.append(size)
        if not pres:
            if advance == "max":
                self.clock.advance(self.timeout)
            return results
        if src.downlink_bandwidth is not None and len(sizes) > 1:
            # Concurrent responses contend for the receiver's NIC: total
            # transfer time is bounded by the shared downlink.
            shared = self.latency.transfer_time(sum(sizes),
                                                src.downlink_bandwidth)
            total = max(pres) + max(shared, max(downloads))
        else:
            total = max(pre + down for pre, down in zip(pres, downloads))
        if advance == "max":
            self.clock.advance(total)
        return results
