"""Repository-wide account catalog (paper section 4.2, "Script sanitization").

TSR's determinism trick: *scan the entire repository* to learn every user
and group any package might create, fix one global creation order, and make
every sanitized script create all of them.  Any package subset installed in
any order then converges to the same /etc/passwd, /etc/group, /etc/shadow
contents — which TSR can sign ahead of time.

Scanning is split into two halves so a multi-tenant TSR can dedupe it:

* :func:`extract_scan_delta` — the expensive, *content-determined* half:
  parse every script and record the account operations in script order.
  The result depends only on the package bytes, so it can be memoized
  under the blob's hash and shared across tenant repositories.
* :meth:`RepositoryCatalog.apply_delta` — the cheap, *stateful* half:
  replay the recorded operations against one repository's catalog.
  Resolution that reads catalog state (membership gid reuse, the
  deleted-password insecurity check against users other packages
  created) happens here, so replaying a memoized delta is byte-for-byte
  equivalent to scanning the package directly.

:meth:`RepositoryCatalog.scan_package` composes the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive.apk import ApkPackage
from repro.scripts.accounts import (
    GroupSpec,
    UserSpec,
    add_group,
    add_user,
    parse_adduser_args,
    parse_addgroup_args,
    parse_group,
)
from repro.scripts.parser import parse_script
from repro.util.errors import ScriptError


@dataclass
class PackageScanDelta:
    """The account operations one package's scripts perform, in order.

    Pure function of the package bytes: operations are recorded, not
    resolved, so replaying a delta against a catalog (``apply_delta``)
    reproduces a direct scan exactly — including resolution that depends
    on what *other* packages already put in the catalog.

    Ops (tag, *args):

    * ``("group", GroupSpec)`` — declare a group.
    * ``("primary", user, group)`` — record a requested primary group.
    * ``("user", UserSpec)`` — declare a user.
    * ``("member", group, gid, user)`` — add a user to a group.
    * ``("passwd_deleted", user)`` — a script deleted this user's
      password (checked for the CVE-2019-5021 pattern at apply time).
    """

    package: str
    ops: list[tuple] = field(default_factory=list)


def extract_scan_delta(package: ApkPackage) -> PackageScanDelta:
    """Parse a package's scripts into an ordered account-operation delta."""
    delta = PackageScanDelta(package=package.name)
    for source in package.scripts.values():
        try:
            script = parse_script(source)
        except ScriptError:
            continue  # unparseable scripts are rejected later anyway
        deleted_passwords: dict[str, None] = {}
        for command in script.iter_commands():
            if command.name == "adduser":
                kwargs, primary_group = parse_adduser_args(command.args)
                if primary_group is not None:
                    delta.ops.append(("group", GroupSpec(name=primary_group)))
                    delta.ops.append(("primary", kwargs["name"],
                                      primary_group))
                delta.ops.append(("user", UserSpec(**kwargs)))
            elif command.name == "addgroup":
                gid, positional = parse_addgroup_args(command.args)
                if len(positional) == 1:
                    delta.ops.append(
                        ("group", GroupSpec(name=positional[0], gid=gid))
                    )
                else:
                    user, group_name = positional
                    delta.ops.append(("member", group_name, gid, user))
            elif command.name == "passwd" and "-d" in command.args:
                target = [a for a in command.args if not a.startswith("-")]
                if target:
                    deleted_passwords.setdefault(target[0])
        for user_name in deleted_passwords:
            delta.ops.append(("passwd_deleted", user_name))
    return delta


@dataclass
class RepositoryCatalog:
    """All users/groups any package in the repository may create, in the
    fixed global creation order (sorted by name)."""

    users: dict[str, UserSpec] = field(default_factory=dict)
    groups: dict[str, GroupSpec] = field(default_factory=dict)
    #: user -> primary group name requested via ``adduser -G``.
    user_primary_group: dict[str, str] = field(default_factory=dict)
    #: (package, user) pairs that tried to create an insecure account —
    #: the CVE-2019-5021 pattern TSR detects and defuses.
    insecure_findings: list[tuple[str, str]] = field(default_factory=list)

    # -- building ---------------------------------------------------------------

    def scan_package(self, package: ApkPackage):
        """Extract account-creation commands from a package's scripts."""
        self.apply_delta(extract_scan_delta(package))

    def apply_delta(self, delta: PackageScanDelta):
        """Replay one package's recorded account operations."""
        for op in delta.ops:
            tag = op[0]
            if tag == "group":
                self._add_group(op[1])
            elif tag == "primary":
                self.user_primary_group.setdefault(op[1], op[2])
            elif tag == "user":
                self._add_user(op[1])
            elif tag == "member":
                _, group_name, gid, user = op
                existing = self.groups.get(
                    group_name, GroupSpec(name=group_name, gid=gid)
                )
                members = tuple(dict.fromkeys([*existing.members, user]))
                self.groups[group_name] = GroupSpec(
                    name=group_name, gid=existing.gid, members=members
                )
            elif tag == "passwd_deleted":
                user_name = op[1]
                spec = self.users.get(user_name)
                shell = spec.shell if spec else "/bin/ash"
                if not shell.endswith("nologin"):
                    self.insecure_findings.append((delta.package, user_name))

    def _add_user(self, spec: UserSpec):
        if spec.name not in self.users:
            self.users[spec.name] = spec
        if spec.is_insecure():
            self.insecure_findings.append(("<direct>", spec.name))

    def _add_group(self, spec: GroupSpec):
        if spec.name not in self.groups:
            self.groups[spec.name] = spec

    # -- deterministic order -------------------------------------------------------

    def creation_order(self) -> tuple[list[GroupSpec], list[UserSpec]]:
        """The fixed global order: groups then users, each sorted by name."""
        groups = [self.groups[name] for name in sorted(self.groups)]
        users = [self.users[name] for name in sorted(self.users)]
        return groups, users

    # -- prediction ------------------------------------------------------------------

    def predict_config(self, init_config: dict[str, str]) -> dict[str, str]:
        """Apply the full creation order to the policy's initial files.

        Returns the predicted final contents of /etc/passwd, /etc/shadow,
        and /etc/group.  Because creation is idempotent and totally
        ordered, this is the state *every* node converges to no matter
        which packages it installs, or in which order.  The logic below
        must mirror :meth:`prelude_script_lines` exactly — the property
        tests in the suite enforce that equivalence.
        """
        passwd = init_config["/etc/passwd"]
        shadow = init_config["/etc/shadow"]
        group = init_config["/etc/group"]
        groups, users = self.creation_order()
        for group_spec in groups:
            # Membership lines are appended separately, as the prelude does.
            group = add_group(group, GroupSpec(name=group_spec.name,
                                               gid=group_spec.gid))
        for user_spec in users:
            gid = None
            primary = self.user_primary_group.get(user_spec.name)
            if primary is not None:
                gid = int(parse_group(group)[primary][2])
            resolved = UserSpec(
                name=user_spec.name,
                uid=user_spec.uid,
                gid=gid,
                home=user_spec.home,
                shell=user_spec.shell,
                gecos=user_spec.gecos,
            )
            passwd, shadow, group = add_user(passwd, shadow, group, resolved)
        for group_spec in groups:
            for member in group_spec.members:
                fields = parse_group(group)[group_spec.name]
                members = [m for m in fields[3].split(",") if m]
                if member not in members:
                    members.append(member)
                    fields[3] = ",".join(members)
                    lines = []
                    for line in group.splitlines():
                        if line.split(":", 1)[0] == group_spec.name:
                            lines.append(":".join(fields))
                        else:
                            lines.append(line)
                    group = "\n".join(lines) + "\n"
        return {
            "/etc/passwd": passwd,
            "/etc/shadow": shadow,
            "/etc/group": group,
        }

    def prelude_script_lines(self) -> list[str]:
        """Shell lines recreating the full account set in global order.

        These lines are spliced into every sanitized script that touches
        accounts; executing them on any node reproduces ``predict_config``
        byte for byte.
        """
        lines: list[str] = []
        groups, users = self.creation_order()
        for group_spec in groups:
            gid = f" -g {group_spec.gid}" if group_spec.gid is not None else ""
            lines.append(f"addgroup -S{gid} {group_spec.name}")
        for user_spec in users:
            parts = ["adduser", "-S", "-D", "-H"]
            if user_spec.uid is not None:
                parts += ["-u", str(user_spec.uid)]
            if user_spec.home != "/dev/null":
                parts += ["-h", user_spec.home]
            parts += ["-s", user_spec.shell]
            if user_spec.gecos:
                parts += ["-g", user_spec.gecos]
            primary = self.user_primary_group.get(user_spec.name)
            if primary is not None:
                parts += ["-G", primary]
            parts.append(user_spec.name)
            lines.append(" ".join(parts))
        for group_spec in groups:
            for member in group_spec.members:
                lines.append(f"addgroup {member} {group_spec.name}")
        return lines
