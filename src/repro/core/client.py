"""Repository clients used by package managers (over the simulated network).

``TsrRepositoryClient`` talks to a TSR instance; ``MirrorRepositoryClient``
talks directly to a mirror (the baseline setup) — package managers cannot
tell them apart, which is the paper's transparency claim (section 4.3).
"""

from __future__ import annotations

from repro.crypto.rsa import RsaPublicKey
from repro.sgx.enclave import EnclaveQuote
from repro.sgx.platform import AttestationService
from repro.simnet.network import Network, Request
from repro.util.errors import AttestationError


class TsrRepositoryClient:
    """A package manager's view of one TSR tenant repository."""

    def __init__(self, network: Network, src_host: str, tsr_host: str,
                 repo_id: str):
        self._network = network
        self._src = src_host
        self._tsr = tsr_host
        self.repo_id = repo_id

    def fetch_index(self) -> bytes:
        response = self._network.call(
            self._src, Request(self._tsr, "get_index", payload=self.repo_id)
        )
        return response.payload

    def fetch_package(self, name: str) -> bytes:
        response = self._network.call(
            self._src,
            Request(self._tsr, "get_package",
                    payload={"repo": self.repo_id, "name": name}),
        )
        return response.payload


class MirrorRepositoryClient:
    """Direct-to-mirror client: the conventional (baseline) configuration."""

    def __init__(self, network: Network, src_host: str, mirror_host: str):
        self._network = network
        self._src = src_host
        self._mirror = mirror_host

    def fetch_index(self) -> bytes:
        return self._network.call(
            self._src, Request(self._mirror, "get_index")
        ).payload

    def fetch_package(self, name: str) -> bytes:
        return self._network.call(
            self._src, Request(self._mirror, "get_package", payload=name)
        ).payload


def deploy_policy_with_attestation(network: Network, src_host: str,
                                   tsr_host: str, policy_yaml: str,
                                   attestation_service: AttestationService,
                                   expected_mrenclave: bytes | None = None,
                                   ) -> tuple[str, RsaPublicKey]:
    """The OS-owner onboarding flow (paper Figure 7).

    Deploys a policy and verifies, via SGX remote attestation, that the
    public signing key returned really comes from the expected enclave on a
    genuine CPU.  Returns ``(repo_id, trusted_public_key)``.
    """
    response = network.call(
        src_host, Request(tsr_host, "deploy_policy", payload=policy_yaml,
                          size_bytes=len(policy_yaml))
    ).payload
    quote: EnclaveQuote = response["quote"]
    quote.verify(attestation_service, expected_mrenclave=expected_mrenclave)
    public_key = RsaPublicKey.from_pem(response["public_key_pem"])
    if quote.report_data.decode() != public_key.fingerprint():
        raise AttestationError(
            "attestation quote does not bind the returned public key"
        )
    return response["repo_id"], public_key
