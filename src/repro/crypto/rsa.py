"""RSA signatures: keygen, PKCS#1 v1.5 sign/verify, serialization.

This mirrors what Alpine Linux's ``abuild-sign`` produces: RSA keys whose
SHA-256 PKCS#1 v1.5 signatures are ``modulus_size`` bytes long (256 bytes for
RSA-2048).  Signing uses the CRT optimization; verification is a single
public-exponent exponentiation.

Keys serialize to a PEM-like container (see :mod:`repro.crypto.pem`) so that
security policies can embed them exactly as the paper's Listing 1 shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter

from repro.crypto.hashes import SHA256_DIGEST_SIZE, sha256_bytes
from repro.crypto.pem import pem_decode, pem_encode
from repro.crypto.primes import generate_prime
from repro.util.errors import SignatureError

PUBLIC_EXPONENT = 65537

# DER prefix for a SHA-256 DigestInfo, per RFC 8017 section 9.2.
_SHA256_DIGEST_INFO_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

# PKCS#1 v1.5 signatures are deterministic, so both halves memoize cleanly:
# a (key, digest, signature) triple always verifies the same way, and a
# (key, digest) pair always signs to the same bytes.  Entries carry the
# measured host cost of the original computation so callers that model
# enclave time (core.sanitizer) can charge a memo hit as if it were fresh.
_VERIFY_MEMO: dict[tuple, tuple[bool, float]] = {}
_SIGN_MEMO: dict[tuple, tuple[bytes, float]] = {}
_MEMO_LIMIT = 1 << 15

# EMSA-PKCS1-v1_5 encoding is digest || fixed padding: everything except
# the trailing SHA-256 digest depends only on the modulus size.
_EMSA_PREFIX_CACHE: dict[int, bytes] = {}


def _i2osp(value: int, length: int) -> bytes:
    """Integer-to-octet-string (big endian, fixed length)."""
    return value.to_bytes(length, "big")


def _os2ip(data: bytes) -> int:
    """Octet-string-to-integer (big endian)."""
    return int.from_bytes(data, "big")


def _emsa_prefix(em_len: int) -> bytes:
    prefix = _EMSA_PREFIX_CACHE.get(em_len)
    if prefix is None:
        t_len = len(_SHA256_DIGEST_INFO_PREFIX) + SHA256_DIGEST_SIZE
        if em_len < t_len + 11:
            raise SignatureError("intended encoded message length too short")
        prefix = (b"\x00\x01" + b"\xff" * (em_len - t_len - 3) + b"\x00"
                  + _SHA256_DIGEST_INFO_PREFIX)
        _EMSA_PREFIX_CACHE[em_len] = prefix
    return prefix


def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 digest (RFC 8017 section 9.2)."""
    return _emsa_prefix(em_len) + sha256_bytes(message)


def _memo_put(memo: dict, key: tuple, value: tuple) -> None:
    if len(memo) >= _MEMO_LIMIT:
        memo.clear()
    memo[key] = value


@dataclass(frozen=True)
class RsaPublicKey:
    """Public portion of an RSA key; verifies PKCS#1 v1.5 signatures."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        """Length of the modulus (and of every signature) in bytes."""
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` is valid for ``message``."""
        return self.verify_with_cost(message, signature)[0]

    def verify_with_cost(self, message: bytes,
                         signature: bytes) -> tuple[bool, float]:
        """Memoized verify plus the host seconds the verdict originally
        cost, so enclave-time models can charge memo hits as fresh work."""
        if len(signature) != self.size_bytes:
            return False, 0.0
        memo_key = (self.n, self.e, sha256_bytes(message), signature)
        hit = _VERIFY_MEMO.get(memo_key)
        if hit is not None:
            return hit
        started = perf_counter()
        ok = self._verify_uncached(message, signature)
        entry = (ok, perf_counter() - started)
        _memo_put(_VERIFY_MEMO, memo_key, entry)
        return entry

    def _verify_uncached(self, message: bytes, signature: bytes) -> bool:
        s = _os2ip(signature)
        if s >= self.n:
            return False
        em = _i2osp(pow(s, self.e, self.n), self.size_bytes)
        try:
            expected = _emsa_pkcs1_v15(message, self.size_bytes)
        except SignatureError:
            return False
        return em == expected

    def fingerprint(self) -> str:
        """Short stable identifier used in policies and IMA key rings."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            material = (self.n.to_bytes(self.size_bytes, "big")
                        + self.e.to_bytes(4, "big"))
            cached = sha256_bytes(material)[:8].hex()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def to_pem(self) -> str:
        body = _encode_integers([self.n, self.e])
        return pem_encode("PUBLIC KEY", body)

    @classmethod
    def from_pem(cls, pem: str) -> "RsaPublicKey":
        label, body = pem_decode(pem)
        if label != "PUBLIC KEY":
            raise SignatureError(f"expected PUBLIC KEY PEM, got {label}")
        n, e = _decode_integers(body, 2)
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def sign(self, message: bytes) -> bytes:
        """PKCS#1 v1.5 SHA-256 signature, ``size_bytes`` long."""
        return self.sign_with_cost(message)[0]

    def sign_with_cost(self, message: bytes) -> tuple[bytes, float]:
        """Memoized sign plus the host seconds the signature originally
        cost (PKCS#1 v1.5 is deterministic, so re-signing the same digest
        always reproduces the same bytes)."""
        digest = sha256_bytes(message)
        memo_key = (self.n, digest)
        hit = _SIGN_MEMO.get(memo_key)
        if hit is not None:
            return hit
        started = perf_counter()
        em = _emsa_prefix(self.size_bytes) + digest
        m = _os2ip(em)
        # CRT: two half-size exponentiations instead of one full-size.
        dp, dq, q_inv = self._crt_params()
        m1 = pow(m, dp, self.p)
        m2 = pow(m, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        s = m2 + h * self.q
        signature = _i2osp(s, self.size_bytes)
        # Sanity check guards against fault attacks corrupting the CRT path
        # (and seeds the verify memo with this key/message/signature).
        ok, _ = self.public_key.verify_with_cost(message, signature)
        if not ok:
            raise SignatureError("self-check of freshly produced signature failed")
        entry = (signature, perf_counter() - started)
        _memo_put(_SIGN_MEMO, memo_key, entry)
        return entry

    def _crt_params(self) -> tuple[int, int, int]:
        cached = self.__dict__.get("_crt")
        if cached is None:
            cached = (self.d % (self.p - 1), self.d % (self.q - 1),
                      pow(self.q, -1, self.p))
            object.__setattr__(self, "_crt", cached)
        return cached

    def to_pem(self) -> str:
        body = _encode_integers([self.n, self.e, self.d, self.p, self.q])
        return pem_encode("RSA PRIVATE KEY", body)

    @classmethod
    def from_pem(cls, pem: str) -> "RsaPrivateKey":
        label, body = pem_decode(pem)
        if label != "RSA PRIVATE KEY":
            raise SignatureError(f"expected RSA PRIVATE KEY PEM, got {label}")
        n, e, d, p, q = _decode_integers(body, 5)
        return cls(n=n, e=e, d=d, p=p, q=q)


def generate_keypair(bits: int = 2048, seed: int | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair.

    ``bits`` is the modulus size; 2048 yields the paper's 256-byte
    signatures.  ``seed`` makes generation deterministic, which the test
    suite and the workload generator use for reproducibility.  Production
    deployments (the real TSR) would of course use an entropy-backed RNG —
    inside the enclave simulator the seed is derived from the enclave
    identity, preserving the "key never leaves the enclave" property.
    """
    if bits < 512:
        raise ValueError(f"RSA modulus below 512 bits is not supported: {bits}")
    if bits % 2:
        raise ValueError("RSA modulus size must be even")
    if seed is not None:
        # Seeded generation is a pure function of (bits, seed): twin
        # scenarios rebuilding the same deployment reuse the keypair
        # instead of re-running Miller-Rabin from scratch.
        cached = _KEYPAIR_MEMO.get((bits, seed))
        if cached is None:
            cached = _generate_keypair(bits, random.Random(seed))
            if len(_KEYPAIR_MEMO) >= 1024:
                _KEYPAIR_MEMO.clear()
            _KEYPAIR_MEMO[(bits, seed)] = cached
        return cached
    return _generate_keypair(bits, random.SystemRandom())


_KEYPAIR_MEMO: dict[tuple[int, int], RsaPrivateKey] = {}


def _generate_keypair(bits: int, rng: random.Random) -> RsaPrivateKey:
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; re-draw primes
        n = p * q
        if n.bit_length() != bits:
            continue
        return RsaPrivateKey(n=n, e=PUBLIC_EXPONENT, d=d, p=p, q=q)


# -- host-pool batch entry points ---------------------------------------------
#
# The worker pool (repro.util.hostpool) precomputes signatures, verify
# verdicts, and keypairs off the critical path and installs them here, in
# the main process, in deterministic order.  Installers never overwrite
# an existing entry: whichever computation landed first (inline or
# worker) keeps its recorded cost, so the memo contents are reproducible.


def seed_sign_entry(n: int, digest: bytes, signature: bytes,
                    cost: float) -> None:
    key = (n, digest)
    if key not in _SIGN_MEMO:
        _memo_put(_SIGN_MEMO, key, (signature, cost))


def seed_verify_entry(n: int, e: int, digest: bytes, signature: bytes,
                      ok: bool, cost: float) -> None:
    key = (n, e, digest, signature)
    if key not in _VERIFY_MEMO:
        _memo_put(_VERIFY_MEMO, key, (ok, cost))


def seed_keypair(bits: int, seed: int, key: "RsaPrivateKey") -> None:
    if (bits, seed) not in _KEYPAIR_MEMO:
        if len(_KEYPAIR_MEMO) >= 1024:
            _KEYPAIR_MEMO.clear()
        _KEYPAIR_MEMO[(bits, seed)] = key


def clear_crypto_memos() -> None:
    """Drop the sign/verify/keypair memos (differential suites start each
    sweep cold)."""
    _VERIFY_MEMO.clear()
    _SIGN_MEMO.clear()
    _KEYPAIR_MEMO.clear()


def keypair_batch(specs: list[tuple[int, int]], pool=None) -> None:
    """Warm the seeded-keypair memo for every ``(bits, seed)`` in
    ``specs``, generating cache misses on the worker pool."""
    misses = [spec for spec in dict.fromkeys(specs)
              if spec not in _KEYPAIR_MEMO]
    if not misses or pool is None:
        return
    for spec, key in pool.run_batch("keypair", misses):
        seed_keypair(spec[0], spec[1], key)


def sign_batch(items: list[tuple["RsaPrivateKey", bytes]], pool=None) -> None:
    """Warm the sign (and self-check verify) memos for ``(key, message)``
    pairs.  Each installed entry carries the worker-measured host cost of
    the actual CRT exponentiation, preserving cost-honesty."""
    misses = []
    pending = set()
    for key, message in items:
        memo_key = (key.n, sha256_bytes(message))
        if memo_key in _SIGN_MEMO or memo_key in pending:
            continue
        pending.add(memo_key)
        misses.append((key, message))
    if not misses or pool is None:
        return
    for n, e, digest, signature, cost, vcost in pool.run_batch("sign", misses):
        seed_sign_entry(n, digest, signature, cost)
        seed_verify_entry(n, e, digest, signature, True, vcost)


def verify_batch(items: list[tuple["RsaPublicKey", bytes, bytes]],
                 pool=None) -> None:
    """Warm the verify memo for ``(public_key, message, signature)``
    triples (mirror blobs ahead of a quorum round, client-side package
    checks ahead of a pull wave)."""
    misses = []
    pending = set()
    for pub, message, signature in items:
        if len(signature) != pub.size_bytes:
            continue
        memo_key = (pub.n, pub.e, sha256_bytes(message), signature)
        if memo_key in _VERIFY_MEMO or memo_key in pending:
            continue
        pending.add(memo_key)
        misses.append((pub, message, signature))
    if not misses or pool is None:
        return
    for n, e, digest, signature, ok, cost in pool.run_batch("verify", misses):
        seed_verify_entry(n, e, digest, signature, ok, cost)


def _encode_integers(values: list[int]) -> bytes:
    """Length-prefixed big-endian integer list (a DER-lite container)."""
    chunks = []
    for value in values:
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        chunks.append(len(raw).to_bytes(4, "big"))
        chunks.append(raw)
    return b"".join(chunks)


def _decode_integers(body: bytes, expected: int) -> list[int]:
    values = []
    offset = 0
    while offset < len(body):
        if offset + 4 > len(body):
            raise SignatureError("truncated key body")
        length = int.from_bytes(body[offset:offset + 4], "big")
        offset += 4
        if offset + length > len(body):
            raise SignatureError("truncated key body")
        values.append(int.from_bytes(body[offset:offset + length], "big"))
        offset += length
    if len(values) != expected:
        raise SignatureError(f"expected {expected} integers in key, got {len(values)}")
    return values
