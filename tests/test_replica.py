"""Edge-replica serving tier: differential identity, the freshness
quorum, adversarial sync/serving, and the serve-induced re-sanitize
queue.

The tier's contract is the CDN bargain with none of the trust: replicas
absorb every routine pull, yet replication must move *time only, never
content* — a replicated replay's discrete outcomes (installs, per-client
serial transitions, pulled wire bytes, published bytes) are
byte-identical to the primary-only replay, in both replay modes.  The
adversarial half pins the escape hatches: a frozen replica is refused by
the pull-side freshness quorum, a tampering replica is rejected by the
client's envelope verification and recovered around via a primary
(origin) full pull, and a tampered or rolled-back sync envelope never
makes it into a replica's adopted log.
"""

import dataclasses
import random

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.core.delta import build_index_delta, parse_package_delta_envelope
from repro.core.replica import ReplicaTSR, check_replica_freshness
from repro.util.errors import RollbackError
from repro.workload.generator import Trace, TraceEvent, evolve_packages
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    build_scenario,
    multi_tenant_refresh,
)

ROUNDS = 4
WAVE = 8
FLEET = ROUNDS * WAVE


def _population(count=8, reps=400, files=6):
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * reps)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 64)
                      for j in range(files - 1)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   scripts=scripts, files=pkg_files))
    return packages


def _fleet_trace():
    """Publish/sync/refresh every 3s; each pull wave rotates in fresh
    clients and lands at the refresh start instant, so its pinned
    publication trails the refresh in flight — the stale-serve coupling
    the re-sanitize queue models (and the replicas absorb)."""
    events = []
    for r in range(ROUNDS):
        at = r * 3.0
        events.append(TraceEvent(at=at, kind="publish", fraction=0.4, seed=r))
        events.append(TraceEvent(at=at + 0.2, kind="mirror_sync"))
        events.append(TraceEvent(at=at + 0.4, kind="refresh"))
        events.append(TraceEvent(at=at + 0.4, kind="fleet_pull",
                                 clients=tuple(range(r * WAVE,
                                                     (r + 1) * WAVE)),
                                 installs_per_client=2, seed=1000 + r))
    return Trace(events=events, horizon=ROUNDS * 3.0, seed=5)


def _run_replay(replica_count, mode="interleaved", frozen=0):
    scenario = build_multi_tenant_scenario(tenants=2, overlap=0.6,
                                           packages=_population())
    multi_tenant_refresh(scenario)
    replicas = [ReplicaTSR(f"edge-{i:02d}.example", scenario.tsr,
                           sync_cadence=1.0)
                for i in range(replica_count)]
    for replica in replicas[:frozen]:
        replica.frozen = True
    report = replay_trace(scenario, _fleet_trace(), clients=FLEET,
                          mode=mode, delta_updates=True, replicas=replicas,
                          shared_tpm_seed=2020)
    return scenario, replicas, report


def _serials(report):
    return {client: tuple(serial for _, serial in timeline.transitions)
            for client, timeline in report.timelines.items()}


def _published(scenario):
    return [
        (repo_id, publication.serial, publication.index_bytes,
         sorted(publication.blobs.items()))
        for repo_id in scenario.tenants
        for publication in scenario.tsr.publications(repo_id)
    ]


# -- differential identity -----------------------------------------------------


class TestDifferentialIdentity:
    def test_replicated_replay_matches_primary_only(self):
        sc0, _, rep0 = _run_replay(0)
        sc3, replicas, rep3 = _run_replay(3)

        assert rep0.failed_installs == 0 and rep3.failed_installs == 0
        assert rep3.installs == rep0.installs
        assert sum(rep3.pull_wire_bytes) == sum(rep0.pull_wire_bytes)
        assert _serials(rep3) == _serials(rep0)
        assert _published(sc3) == _published(sc0)

        # The replicas genuinely carried the traffic: every routine pull
        # left the primary, whose serve path (and re-sanitize debt) went
        # quiet — while without replicas the stale-serve coupling bites.
        assert sum(replica.serve_count for replica in replicas) > 0
        assert sc0.tsr.serve_fallbacks > 0
        assert sc3.tsr.serve_fallbacks == 0
        assert rep3.replica_sync_bytes > 0
        assert rep3.replica_refusals == 0

    def test_streaming_replay_matches_materialized(self):
        _, _, materialized = _run_replay(3, mode="interleaved")
        _, _, streaming = _run_replay(3, mode="streaming")

        assert streaming.installs == materialized.installs
        assert streaming.failed_installs == 0
        assert sum(streaming.pull_wire_bytes) == \
            sum(materialized.pull_wire_bytes)
        # Streaming retires clients (and their timelines) as waves drain
        # — that's its O(active) memory contract — so identity is pinned
        # on the aggregates it does keep: counts, wire, and timing.
        assert streaming.replica_sync_bytes == materialized.replica_sync_bytes
        assert streaming.downloaded_bytes == materialized.downloaded_bytes
        for q in (50, 99):
            assert streaming.pull_latency_quantile(q) == pytest.approx(
                materialized.pull_latency_quantile(q), rel=1e-9)


# -- freshness quorum ----------------------------------------------------------


class TestFreshnessQuorum:
    def test_frozen_replica_is_refused_and_outcomes_unchanged(self):
        _, _, baseline = _run_replay(0)
        _, replicas, report = _run_replay(2, frozen=1)
        frozen, healthy = replicas

        # The frozen replica stalls past its staleness bound and the
        # wave-side quorum refuses it; its clients fail over without a
        # single divergent outcome.
        assert frozen.refusals > 0
        assert healthy.refusals == 0
        assert report.replica_refusals == frozen.refusals
        assert report.failed_installs == 0
        assert report.installs == baseline.installs
        assert _serials(report) == _serials(baseline)

    def _synced_replica(self):
        scenario = build_scenario(packages=_population(count=4),
                                  with_monitor=False)
        scenario.tsr.record_publication(scenario.repo_id, 0.0)
        replica = ReplicaTSR("edge-00.example", scenario.tsr,
                             sync_cadence=1.0)
        replica.sync_from_primary(at=scenario.clock.now() + 0.1)
        return scenario, replica

    def _keys(self, scenario):
        return [scenario.tsr_public_key]

    def test_fresh_replica_passes_and_returns_serial(self):
        scenario, replica = self._synced_replica()
        as_of = replica.synced_through
        serial = check_replica_freshness(replica, scenario.repo_id, as_of,
                                         self._keys(scenario))
        expected = scenario.tsr.publication_at(scenario.repo_id, as_of)
        assert serial == expected.serial

    def test_staleness_bound_refuses_a_lagging_replica(self):
        scenario, replica = self._synced_replica()
        as_of = replica.synced_through + replica.staleness_bound + 0.5
        with pytest.raises(RollbackError, match="lags"):
            check_replica_freshness(replica, scenario.repo_id, as_of,
                                    self._keys(scenario))

    def test_unverifiable_served_index_is_refused(self):
        scenario, replica = self._synced_replica()
        log = replica._publications[scenario.repo_id]
        corrupt = bytearray(log[-1].index_bytes)
        corrupt[len(corrupt) // 2] ^= 0x01
        log[-1] = dataclasses.replace(log[-1], index_bytes=bytes(corrupt))
        with pytest.raises(RollbackError, match="unverifiable"):
            check_replica_freshness(replica, scenario.repo_id,
                                    replica.synced_through,
                                    self._keys(scenario))

    def test_old_serial_replay_is_refused(self):
        scenario, replica = self._synced_replica()
        _publish_round(scenario, seed=1)
        now = scenario.clock.now()
        # The replica claims a fresh heartbeat but still serves the old
        # publication — the serial comparison against the primary's view
        # catches the replay.
        replica.synced_through = now
        with pytest.raises(RollbackError, match="replays serial"):
            check_replica_freshness(replica, scenario.repo_id, now,
                                    self._keys(scenario))


# -- adversarial: sync path ----------------------------------------------------


def _publish_round(scenario, seed, fraction=0.5):
    rng = random.Random(f"replica-round:{seed}")
    batch = evolve_packages(scenario.population, fraction, rng)
    scenario.origin.publish_many([(package, None) for package in batch])
    for package in batch:
        scenario.population[package.name] = package
    scenario.sync_mirrors()
    scenario.refresh()
    scenario.tsr.record_publication(scenario.repo_id, scenario.clock.now())
    return [package.name for package in batch]


def _tamper(scenario, hostname, operation, mutate):
    """Wrap a host handler, mutating one operation's responses."""
    host = scenario.network.host(hostname)
    original = host.handler

    def tampering(op, payload):
        blob, size = original(op, payload)
        if op == operation:
            blob = mutate(blob)
            size = len(blob)
        return blob, size

    host.handler = tampering
    return original


class TestAdversarialSync:
    def _scenario_and_replica(self):
        scenario = build_scenario(packages=_population(count=4),
                                  with_monitor=False)
        scenario.tsr.record_publication(scenario.repo_id, 0.0)
        replica = ReplicaTSR("edge-00.example", scenario.tsr,
                             sync_cadence=1.0)
        replica.sync_from_primary(at=scenario.clock.now() + 0.1)
        return scenario, replica

    def test_tampered_sync_envelope_never_adopted(self):
        scenario, replica = self._scenario_and_replica()
        synced_through = replica.synced_through
        adopted = list(replica._publications[scenario.repo_id])
        _publish_round(scenario, seed=1)

        def corrupt(blob: bytes) -> bytes:
            at = blob.index(b"\nU:") + 10
            return blob[:at] + bytes([blob[at] ^ 0x01]) + blob[at + 1:]

        original = _tamper(scenario, scenario.tsr.hostname,
                           "get_index_delta", corrupt)
        replica.sync_from_primary(at=scenario.clock.now())
        scenario.network.host(scenario.tsr.hostname).handler = original

        # Nothing adopted, freshness stalled: the replica stays on its
        # last verified state rather than serving unauthenticated bytes.
        assert replica.sync_failures == 1
        assert replica.synced_through == synced_through
        assert replica._publications[scenario.repo_id] == adopted

        # A clean retry catches up.
        replica.sync_from_primary(at=scenario.clock.now())
        assert replica.synced_through > synced_through
        assert len(replica._publications[scenario.repo_id]) > len(adopted)

    def test_rolled_back_sync_envelope_is_refused(self):
        scenario, replica = self._scenario_and_replica()
        _publish_round(scenario, seed=2)
        replica.sync_from_primary(at=scenario.clock.now())
        log = scenario.tsr.publications(scenario.repo_id)
        old = RepositoryIndex.from_bytes(log[0].index_bytes)
        current = RepositoryIndex.from_bytes(log[-1].index_bytes)
        assert old.serial < current.serial
        stale = build_index_delta(current, old)  # validly signed, older

        original = _tamper(scenario, scenario.tsr.hostname,
                           "get_index_delta", lambda blob: stale)
        replica.sync_from_primary(at=scenario.clock.now() + 5.0)
        scenario.network.host(scenario.tsr.hostname).handler = original

        assert replica.sync_failures == 1
        served = RepositoryIndex.from_bytes(
            replica._newest_publication(scenario.repo_id).index_bytes)
        assert served.serial == current.serial  # never went backwards


# -- adversarial: a tampering replica, recovered via origin pulls --------------


def _rand_packages(count=4, payload=12 * 1024):
    """Incompressible payloads, so package deltas genuinely engage
    instead of degenerating to not-smaller full envelopes."""
    return [
        ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                   files=[PackageFile(
                       f"/usr/bin/pkg{i}",
                       random.Random(4000 + i).randbytes(payload))])
        for i in range(count)
    ]


class TestAdversarialServing:
    def _client_on_replica(self):
        scenario = build_scenario(packages=_rand_packages(count=4),
                                  with_monitor=False)
        scenario.tsr.record_publication(scenario.repo_id, 0.0)
        replica = ReplicaTSR("edge-00.example", scenario.tsr,
                             sync_cadence=1.0)
        replica.sync_from_primary(at=scenario.clock.now() + 0.1)
        _, manager = scenario.new_node("victim", delta_updates=True)
        manager._client.replica_host = replica.hostname
        return scenario, replica, manager

    def test_routine_traffic_never_touches_the_primary(self):
        scenario, replica, manager = self._client_on_replica()
        primary_serves = []
        original = _tamper(
            scenario, scenario.tsr.hostname, "get_index",
            lambda blob: primary_serves.append(1) or blob)
        manager.update()
        name = sorted(scenario.population)[0]
        manager.install(name)
        scenario.network.host(scenario.tsr.hostname).handler = original
        assert replica.serve_count > 0
        assert primary_serves == []

    def test_tampered_replica_index_delta_recovered_from_origin(self):
        scenario, replica, manager = self._client_on_replica()
        manager.update()
        _publish_round(scenario, seed=3)
        replica.sync_from_primary(at=scenario.clock.now())

        def corrupt(blob: bytes) -> bytes:
            at = blob.index(b"\nU:") + 10
            return blob[:at] + bytes([blob[at] ^ 0x01]) + blob[at + 1:]

        serves_before = replica.serve_count
        original = _tamper(scenario, replica.hostname,
                           "get_index_delta", corrupt)
        index = manager.update()
        scenario.network.host(replica.hostname).handler = original

        # Rejected, then recovered through a full pull that bypassed the
        # tampering replica entirely: only the poisoned delta itself was
        # served from the edge.
        assert manager.delta_stats.index_rejected == 1
        assert manager.delta_stats.index_full.get("rejected") == 1
        assert replica.serve_count == serves_before + 1
        assert index.to_bytes() == scenario.tsr.get_index_bytes(
            scenario.repo_id)

    def test_tampered_replica_package_delta_recovered_from_origin(self):
        scenario, replica, manager = self._client_on_replica()
        manager.update()
        name = sorted(scenario.population)[0]
        manager.install(name)
        _publish_round(scenario, seed=4, fraction=1.0)
        replica.sync_from_primary(at=scenario.clock.now())
        manager.update()

        def corrupt(blob: bytes) -> bytes:
            kind, _, _ = parse_package_delta_envelope(blob)
            assert kind == "delta"  # the attack targets the delta path
            return blob[:-3] + bytes([blob[-3] ^ 0xFF]) + blob[-2:]

        serves_before = replica.serve_count
        original = _tamper(scenario, replica.hostname, "get_package_delta",
                           corrupt)
        manager.install(name)  # upgrade through the tampered edge
        scenario.network.host(replica.hostname).handler = original

        assert manager.delta_stats.package_rejected == 1
        assert manager.delta_stats.package_full.get("rejected") == 1
        assert replica.serve_count == serves_before + 1
        entry = manager.index.get(name)
        record = manager._node.pkgdb.get(name)
        assert record.content_hash == entry.sha256  # origin bytes won


# -- the serve-induced re-sanitize queue and publication retention -------------


class TestResanitizeQueue:
    def _scenario(self):
        scenario = build_scenario(packages=_population(count=4),
                                  with_monitor=False)
        scenario.tsr.record_publication(scenario.repo_id, 0.0)
        return scenario

    def _changed_name(self, scenario, changed):
        old = scenario.tsr.publications(scenario.repo_id)[0]
        for name in changed:
            if name in old.entries:
                return name
        raise AssertionError("publish round changed nothing servable")

    def test_stale_serve_queues_one_deduped_job(self):
        scenario = self._scenario()
        tsr = scenario.tsr
        name = self._changed_name(scenario, _publish_round(scenario, seed=5))
        old = tsr.publications(scenario.repo_id)[0]

        # The live cache now holds the new round's blob; a time-stamped
        # serve of the old publication falls back to the captured copy —
        # bytes still verify against the *old* signed index — and queues
        # exactly one re-sanitize job, deduped across repeat serves.
        blob = tsr.serve_package_at(scenario.repo_id, name, as_of=0.0)
        tsr.serve_package_at(scenario.repo_id, name, as_of=0.0)
        assert blob == old.blobs[name]
        assert tsr.serve_fallbacks == 1  # counts queued jobs: deduped
        jobs = tsr.take_resanitize_jobs()
        assert [job.name for job in jobs] == [name]

        # Completing the job restores the served artifact: the next
        # time-stamped serve finds its blob cached and queues nothing.
        tsr.complete_resanitize(jobs[0])
        tsr.serve_package_at(scenario.repo_id, name, as_of=0.0)
        assert tsr.take_resanitize_jobs() == []

    def test_retention_prunes_the_log_and_counts_full_pulls(self):
        scenario = self._scenario()
        tsr = scenario.tsr
        tsr.publication_retention = 1
        for seed in (6, 7, 8):
            _publish_round(scenario, seed)
        log = tsr.publications(scenario.repo_id)
        assert len(log) <= 2  # newest + the floor the pruner keeps
        pruned_serial = tsr._pruned_through[scenario.repo_id]

        before = tsr.retention_full_pulls
        tsr.index_delta_at(scenario.repo_id, base_serial=pruned_serial)
        assert tsr.retention_full_pulls == before + 1
