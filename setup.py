"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs cannot build wheels. This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
