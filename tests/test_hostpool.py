"""Tests for the deterministic host worker pool: REPRO_WORKERS parsing,
kernel byte-identity and cost-honesty, worker-crash inline fallback, the
0-vs-N discrete-outcome differential over full trace replays (interleaved
and streaming), the warm-twin timestamp identity, and cross-replay pool
determinism inside one process."""

import hashlib
import multiprocessing
import os

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.gz import (
    clear_compress_memo,
    gzip_compress,
    gzip_compress_cached_with_cost,
    seed_compress_entry,
)
from repro.crypto.rsa import generate_keypair
from repro.util.hostpool import (
    HostPool,
    autodetect_workers,
    clear_content_memos,
    configured_workers,
    get_pool,
    register_kernel,
    reset_pool,
    set_workers,
)
from repro.workload.generator import generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def _clean_pool_state():
    """Every test starts serial with cold content memos and leaves the
    process-wide singleton unset for whoever runs next."""
    reset_pool()
    clear_content_memos()
    yield
    reset_pool()
    clear_content_memos()


# -- configuration -------------------------------------------------------------


class TestConfiguredWorkers:
    @pytest.mark.parametrize("raw", ["", "0", "off", "none", "serial",
                                     "OFF", " 0 "])
    def test_serial_spellings(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        assert configured_workers() == 0

    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert configured_workers() == 0

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert configured_workers() == 3

    def test_negative_clamps_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        assert configured_workers() == 0

    def test_auto_matches_affinity(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert configured_workers() == autodetect_workers() >= 1

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            configured_workers()

    def test_serial_singleton_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        reset_pool()
        assert get_pool() is None


# -- kernels: byte identity + cost honesty -------------------------------------


class TestKernels:
    def test_gzip_kernel_matches_serial_and_records_real_cost(self):
        pool = HostPool(1)
        try:
            data = bytes(range(256)) * 400
            [(key, compressed, cost)] = pool.run_batch("gzip", [(data, 6)])
        finally:
            pool.shutdown()
        # Byte identity with the serial deflate.
        assert compressed == gzip_compress(data, 6)
        # Cost honesty: the installed cost is the worker's measured
        # deflate time, not a placeholder.
        assert cost > 0.0
        clear_compress_memo()
        seed_compress_entry(key, compressed, cost)
        hit, hit_cost = gzip_compress_cached_with_cost(data, 6)
        assert hit == compressed
        assert hit_cost == cost

    def test_keypair_kernel_matches_serial(self):
        pool = HostPool(1)
        try:
            [(key, pair)] = pool.run_batch("keypair", [(512, 42)])
        finally:
            pool.shutdown()
        assert key == (512, 42)
        twin = generate_keypair(512, 42)
        assert (pair.n, pair.d) == (twin.n, twin.d)

    def test_empty_batch_is_free(self):
        pool = HostPool(1)
        try:
            assert pool.run_batch("gzip", []) == []
            assert pool.stats()["tasks"] == 0
        finally:
            pool.shutdown()


# -- crash fallback ------------------------------------------------------------


def _crashy_kernel(payload):
    parent, value = payload
    if os.getpid() != parent:     # in a worker: die without cleanup
        os._exit(13)
    return value * 2              # inline fallback in the main process


@pytest.mark.skipif(not HAVE_FORK, reason="crash kernel needs fork "
                    "workers to inherit the test-registered registry")
class TestCrashFallback:
    def test_worker_death_degrades_to_inline(self):
        register_kernel("crashy", _crashy_kernel)
        pool = HostPool(2)
        try:
            payloads = [(os.getpid(), i) for i in range(4)]
            results = pool.run_batch("crashy", payloads)
            # Correct answers despite every worker dying mid-batch.
            assert results == [0, 2, 4, 6]
            assert pool.broken
            assert pool.stats()["fallbacks"] >= 1
            # A broken pool keeps serving batches inline...
            assert pool.run_batch("crashy", payloads) == [0, 2, 4, 6]
            # ...and refuses new prefetches rather than wedging consumers.
            pool.prefetch("crashy", "k", (os.getpid(), 5))
            assert not pool.pending("crashy", "k")
            assert pool.collect("crashy", "k") is None
        finally:
            pool.shutdown()


# -- prefetch / collect --------------------------------------------------------


class TestPrefetch:
    def test_collect_returns_prefetched_result_once(self):
        pool = HostPool(1)
        try:
            data = b"prefetched segment" * 100
            pool.prefetch("gzip", "seg", (data, 6))
            assert pool.pending("gzip", "seg")
            key, compressed, cost = pool.collect("gzip", "seg")
            assert compressed == gzip_compress(data, 6)
            assert cost > 0.0
            # Consumed: a second collect reports "never prefetched".
            assert pool.collect("gzip", "seg") is None
        finally:
            pool.shutdown()

    def test_duplicate_prefetch_is_single_flight(self):
        pool = HostPool(1)
        try:
            data = b"only once" * 50
            pool.prefetch("gzip", "k", (data, 6))
            pool.prefetch("gzip", "k", (data, 6))
            assert pool.stats()["tasks"] == 1
        finally:
            pool.shutdown()


# -- full-replay differentials -------------------------------------------------


def _packages(count=6, reps=600, files=3, accounts=True):
    packages = []
    for i in range(count):
        scripts = {}
        if accounts and i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * reps)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}", bytes([i, j]) * 64)
                      for j in range(files - 1)]
        packages.append(ApkPackage(name=f"pkg-{i:02d}", version="1.0-r0",
                                   scripts=scripts, files=pkg_files))
    return packages


def _replay(mode="interleaved", accounts=True, clients=6, **trace_kwargs):
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.5, packages=_packages(accounts=accounts))
    multi_tenant_refresh(scenario)
    # Wide simulated margins (simulated seconds are free): charged costs
    # are wall-measured, so events too close to an availability boundary
    # could land on different serials across runs regardless of the pool.
    trace = generate_trace(rounds=3, interval=30.0, publish_fraction=0.3,
                           sync_lag=2.0, refresh_lag=6.0, pull_lag=20.0,
                           seed=11, **trace_kwargs)
    report = replay_trace(scenario, trace, clients=clients, mode=mode)
    return scenario, report


def _fingerprint(scenario, report):
    """SHA-256 over the discrete outcomes: signed indexes, publication
    blobs, install/wire counters, and per-client serial sequences."""
    h = hashlib.sha256()
    for repo_id in scenario.tenants:
        h.update(scenario.tsr.get_index_bytes(repo_id))
        for publication in scenario.tsr.publications(repo_id):
            h.update(str(publication.serial).encode())
            h.update(publication.index_bytes)
            for name in sorted(publication.blobs):
                h.update(name.encode())
                h.update(publication.blobs[name])
    h.update(str((report.installs, report.failed_installs,
                  report.client_wire_bytes, report.publishes)).encode())
    for name in sorted(report.timelines):
        serials = [s for _, s in report.timelines[name].transitions]
        h.update(f"{name}:{serials}".encode())
    return h.hexdigest()


class TestDifferential:
    def test_serial_vs_pooled_interleaved(self):
        set_workers(0)
        serial = _fingerprint(*_replay())
        clear_content_memos()
        pool = set_workers(2)
        pooled = _fingerprint(*_replay())
        assert pool.stats()["tasks"] > 0, "pool never exercised"
        assert not pool.broken
        assert pooled == serial

    def test_serial_vs_pooled_streaming(self):
        kwargs = dict(mode="streaming", clients=12, fleet_size=12,
                      clients_per_wave=4, streaming=True)
        set_workers(0)
        serial_scenario, serial_report = _replay(**kwargs)
        serial = _fingerprint(serial_scenario, serial_report)
        clear_content_memos()
        pool = set_workers(2)
        pooled_scenario, pooled_report = _replay(**kwargs)
        pooled = _fingerprint(pooled_scenario, pooled_report)
        assert pool.stats()["tasks"] > 0, "pool never exercised"
        assert not pool.broken
        assert pooled == serial
        assert (pooled_report.streaming.clients_booted
                == serial_report.streaming.clients_booted)
        assert (pooled_report.streaming.peak_live_channels
                == serial_report.streaming.peak_live_channels)

    def test_pooled_replay_is_deterministic_across_runs(self):
        """Two pooled replays in one process (cold memos each) agree on
        every discrete outcome — worker scheduling never leaks in."""
        set_workers(2)
        first = _fingerprint(*_replay())
        clear_content_memos()
        second = _fingerprint(*_replay())
        assert first == second

    def test_warm_twin_timestamps_match_serial(self):
        """A serial replay over pool-warmed memos reproduces the pooled
        replay's *simulated timestamps* exactly: every charge either
        records its measured cost or replays a recorded one, so the twin
        sees the same numbers.  (Account-creating packages are excluded:
        their render is raw-measured by design, see the sanitizer.)"""
        pool = set_workers(2)
        _, pooled = _replay(accounts=False)
        assert pool.stats()["tasks"] > 0
        set_workers(0)       # keep the warm memos, drop the pool
        _, twin = _replay(accounts=False)
        assert twin.installs == pooled.installs
        assert twin.client_wire_bytes == pooled.client_wire_bytes
        for name in pooled.timelines:
            assert (twin.timelines[name].transitions
                    == pooled.timelines[name].transitions)
