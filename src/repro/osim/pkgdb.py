"""The installed-package database.

Alpine keeps it as a plain file (``/lib/apk/db/installed``); the paper's
Fig. 11 experiment *tampers* with this file (rewriting version numbers and
hashes) to make installed packages look outdated, so the database here is
likewise a text file inside the simulated filesystem rather than opaque
Python state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.osim.fs import SimFileSystem
from repro.util.errors import PackageManagerError

DB_PATH = "/lib/apk/db/installed"


@dataclass(frozen=True)
class InstalledPackage:
    """One installed package record."""

    name: str
    version: str
    content_hash: str
    files: tuple[str, ...]


class PackageDatabase:
    """File-backed database of installed packages."""

    def __init__(self, fs: SimFileSystem, path: str = DB_PATH):
        self._fs = fs
        self._path = path
        if not fs.exists(path):
            fs.write_file(path, b"")

    # -- persistence -----------------------------------------------------------

    def _load(self) -> dict[str, InstalledPackage]:
        packages: dict[str, InstalledPackage] = {}
        text = self._fs.read_file(self._path).decode()
        for block in text.split("\n\n"):
            if not block.strip():
                continue
            fields: dict[str, str] = {}
            for line in block.splitlines():
                key, _, value = line.partition(":")
                fields[key] = value
            try:
                package = InstalledPackage(
                    name=fields["P"],
                    version=fields["V"],
                    content_hash=fields["C"],
                    files=tuple(f for f in fields.get("F", "").split("|") if f),
                )
            except KeyError as exc:
                raise PackageManagerError(
                    f"corrupt package database block: missing {exc}"
                ) from exc
            packages[package.name] = package
        return packages

    def _store(self, packages: dict[str, InstalledPackage]):
        blocks = []
        for name in sorted(packages):
            package = packages[name]
            blocks.append(
                f"P:{package.name}\nV:{package.version}\n"
                f"C:{package.content_hash}\nF:{'|'.join(package.files)}"
            )
        self._fs.write_file(self._path, "\n\n".join(blocks).encode())

    # -- operations ---------------------------------------------------------------

    def add(self, package: InstalledPackage):
        packages = self._load()
        packages[package.name] = package
        self._store(packages)

    def remove(self, name: str):
        packages = self._load()
        if name not in packages:
            raise PackageManagerError(f"package not installed: {name}")
        del packages[name]
        self._store(packages)

    def get(self, name: str) -> InstalledPackage | None:
        return self._load().get(name)

    def all(self) -> list[InstalledPackage]:
        return sorted(self._load().values(), key=lambda p: p.name)

    def installed_names(self) -> set[str]:
        return set(self._load())

    def mark_outdated(self, name: str, fake_version: str = "0.0.0-r0"):
        """Tamper helper used by the Fig. 11 experiment: rewrite the version
        and hash so the package manager believes an update is pending."""
        packages = self._load()
        if name not in packages:
            raise PackageManagerError(f"package not installed: {name}")
        current = packages[name]
        packages[name] = InstalledPackage(
            name=current.name,
            version=fake_version,
            content_hash="0" * 64,
            files=current.files,
        )
        self._store(packages)
