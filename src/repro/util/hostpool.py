"""Deterministic multi-process execution layer for content-determined work.

The simulator's host-time hotspots — RSA sign/verify, gzip repack, CDC
chunk manifests, apk parses, sanitize analyses — are pure functions of
their inputs, already memoized behind content-keyed caches that record
the measured host cost of the original computation (the PR-7 cost-honesty
contract).  That makes them embarrassingly parallel to *pre-compute*: a
worker pool evaluates pending items while the serial, deterministic
simulation timeline runs, and the results (value + measured cost) are
installed into the existing memo tables before the timeline consumes
them.  The timeline itself never changes; it just finds warm caches.

Control knob (read once, lazily):

    REPRO_WORKERS=0      serial — the literal pre-pool code path (default)
    REPRO_WORKERS=N      pool of N worker processes
    REPRO_WORKERS=auto   one worker per *available* CPU (sched_getaffinity)

Determinism rules the integration layers follow:

1. Workers only compute pure functions; all memo installation happens in
   the main process, in deterministic order, and never overwrites an
   existing entry (first install wins).
2. Consumers that prefetched a key *wait* for the worker result instead
   of computing inline, so which process computed a value never races.
3. With the pool disabled nothing here is imported by the hot paths and
   the new pool-fed memos stay permanently empty, so every lookup misses
   and the serial code path is bit-for-bit the pre-pool one.
"""

from __future__ import annotations

import os
from time import perf_counter

_ENV_VAR = "REPRO_WORKERS"


def autodetect_workers() -> int:
    """Worker count for ``REPRO_WORKERS=auto``: the CPUs this process may
    actually run on (containers and CI runners often restrict affinity
    well below ``os.cpu_count()``)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def configured_workers() -> int:
    """Resolve ``REPRO_WORKERS`` to a worker count (0 = serial)."""
    raw = os.environ.get(_ENV_VAR, "0").strip().lower()
    if raw in ("", "0", "off", "none", "serial"):
        return 0
    if raw == "auto":
        return autodetect_workers()
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{_ENV_VAR} must be an integer, 'auto', or 0; got {raw!r}")
    return max(0, value)


# -- kernels ------------------------------------------------------------------
#
# A kernel is a pure function payload -> result, executed in a worker
# process (or inline, as the crash fallback).  Imports happen inside each
# kernel so that merely defining the registry pulls in nothing.

def _kernel_keypair(payload):
    bits, seed = payload
    from repro.crypto.rsa import generate_keypair
    return (bits, seed), generate_keypair(bits, seed)


def _kernel_sign(payload):
    key, message = payload
    from repro.crypto.hashes import sha256_bytes
    from repro.crypto.rsa import _VERIFY_MEMO
    signature, cost = key.sign_with_cost(message)
    digest = sha256_bytes(message)
    verify_hit = _VERIFY_MEMO.get((key.n, key.e, digest, signature))
    if verify_hit is None:
        verify_hit = key.public_key.verify_with_cost(message, signature)
    return key.n, key.e, digest, signature, cost, verify_hit[1]


def _kernel_verify(payload):
    pub, message, signature = payload
    from repro.crypto.hashes import sha256_bytes
    ok, cost = pub.verify_with_cost(message, signature)
    return pub.n, pub.e, sha256_bytes(message), signature, ok, cost


def _kernel_sha256hex(payload):
    from repro.crypto.hashes import sha256_hex
    return sha256_hex(payload)


def _kernel_gzip(payload):
    import hashlib
    data, level = payload
    from repro.archive.gz import gzip_compress_cached_with_cost
    compressed, cost = gzip_compress_cached_with_cost(data, level)
    return (hashlib.sha256(data).digest(), len(data), level), compressed, cost


def _kernel_chunks(payload):
    data, min_size, max_size, mask = payload
    from repro.archive.chunks import chunk_offsets
    from repro.crypto.hashes import sha256_bytes
    offsets = chunk_offsets(data, min_size, max_size, mask)
    return (sha256_bytes(data), len(data), min_size, max_size, mask), offsets


def _kernel_parse_verify(payload):
    from repro.archive.apk import parse_kernel
    return parse_kernel(*payload)


def _kernel_publish_build(payload):
    package, signing_key, key_name = payload
    blob, entries = package.build_prewarm(signing_key, key_name)
    return entries


def _kernel_sanitize_prewarm(payload):
    from repro.core.sanitizer import prewarm_kernel
    return prewarm_kernel(*payload)


_KERNELS = {
    "keypair": _kernel_keypair,
    "sign": _kernel_sign,
    "verify": _kernel_verify,
    "sha256hex": _kernel_sha256hex,
    "gzip": _kernel_gzip,
    "chunks": _kernel_chunks,
    "parse_verify": _kernel_parse_verify,
    "publish_build": _kernel_publish_build,
    "sanitize_prewarm": _kernel_sanitize_prewarm,
}


def register_kernel(name: str, fn) -> None:
    """Register an extra kernel (tests use this to inject faulty ones).

    With the default fork start method workers inherit the registry as it
    stood at pool start, so register before the first submit.
    """
    _KERNELS[name] = fn


def _pool_worker(kind: str, payloads: list) -> tuple[int, float, list]:
    """Worker-side entry: run a chunk of kernel calls, report busy time."""
    fn = _KERNELS[kind]
    started = perf_counter()
    results = [fn(payload) for payload in payloads]
    return os.getpid(), perf_counter() - started, results


# -- the pool -----------------------------------------------------------------


class HostPool:
    """A keyed batch frontend over ``ProcessPoolExecutor``.

    Work is submitted either as ordered batches (:meth:`run_batch`) or as
    keyed prefetches (:meth:`prefetch` / :meth:`collect`) that lookahead
    collectors fire early and consumers harvest later.  Any worker-side
    failure falls back to inline execution in the main process, so a
    crashed worker degrades throughput, never correctness.
    """

    def __init__(self, workers: int):
        self.workers = max(1, int(workers))
        self.broken = False
        self._executor = None
        self._prefetched: dict[tuple, tuple] = {}
        self._worker_seconds: dict[int, float] = {}
        self._tasks = 0
        self._fallbacks = 0
        self._outstanding = 0
        self._started_at: float | None = None
        self._overlap_seconds = 0.0
        self._nonempty_since: float | None = None

    # -- lifecycle --

    def _ensure_executor(self):
        if self._executor is None and not self.broken:
            import atexit
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=ctx)
            self._started_at = perf_counter()
            # Reap workers before the interpreter tears itself down — an
            # executor alive at exit races module teardown and spews
            # harmless-but-noisy weakref tracebacks.
            atexit.register(self.shutdown)
        return self._executor

    def shutdown(self) -> None:
        self._mark_idle()
        self._prefetched.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # -- bookkeeping --

    def _mark_busy(self) -> None:
        if self._outstanding == 0:
            self._nonempty_since = perf_counter()
        self._outstanding += 1

    def _mark_idle(self) -> None:
        if self._outstanding > 0:
            self._outstanding -= 1
            if self._outstanding == 0 and self._nonempty_since is not None:
                self._overlap_seconds += perf_counter() - self._nonempty_since
                self._nonempty_since = None

    def _account(self, pid: int, busy: float) -> None:
        self._worker_seconds[pid] = self._worker_seconds.get(pid, 0.0) + busy

    def _submit(self, kind: str, payloads: list):
        executor = self._ensure_executor()
        if executor is None:
            return None
        try:
            future = executor.submit(_pool_worker, kind, payloads)
        except Exception:
            self.broken = True
            self._executor = None
            return None
        self._mark_busy()
        self._tasks += 1
        return future

    def _resolve(self, kind: str, future, payloads: list) -> list:
        """Wait for one worker task; inline fallback on any failure."""
        try:
            pid, busy, results = future.result()
        except Exception:
            self._mark_idle()
            self.broken = True
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            self._fallbacks += len(payloads)
            fn = _KERNELS[kind]
            return [fn(payload) for payload in payloads]
        self._mark_idle()
        self._account(pid, busy)
        return results

    # -- batch interface --

    def run_batch(self, kind: str, payloads: list) -> list:
        """Evaluate ``payloads`` across the workers; results in input
        order.  Falls back to inline execution if the pool is broken."""
        if not payloads:
            return []
        if self.broken:
            self._fallbacks += len(payloads)
            fn = _KERNELS[kind]
            return [fn(payload) for payload in payloads]
        chunk = max(1, -(-len(payloads) // (self.workers * 4)))
        groups = [payloads[i:i + chunk]
                  for i in range(0, len(payloads), chunk)]
        submitted = [(group, self._submit(kind, group)) for group in groups]
        results: list = []
        for group, future in submitted:
            if future is None:
                self._fallbacks += len(group)
                fn = _KERNELS[kind]
                results.extend(fn(payload) for payload in group)
            else:
                results.extend(self._resolve(kind, future, group))
        return results

    # -- keyed prefetch interface --

    def prefetch(self, kind: str, key, payload) -> None:
        """Fire-and-forget: start computing ``payload`` under ``key`` if
        it is not already in flight.  Consumers MUST later either
        :meth:`collect` the key or let :meth:`shutdown` discard it."""
        if self.broken or (kind, key) in self._prefetched:
            return
        future = self._submit(kind, [payload])
        if future is not None:
            self._prefetched[(kind, key)] = (future, payload)

    def pending(self, kind: str, key) -> bool:
        return (kind, key) in self._prefetched

    def collect(self, kind: str, key):
        """Harvest a prefetched result (blocking), or None if the key was
        never prefetched.  Consumers wait here rather than computing a
        prefetched key inline, so results never race the timeline."""
        entry = self._prefetched.pop((kind, key), None)
        if entry is None:
            return None
        future, payload = entry
        return self._resolve(kind, future, [payload])[0]

    # -- introspection --

    def stats(self) -> dict:
        now = perf_counter()
        overlap = self._overlap_seconds
        if self._nonempty_since is not None:
            overlap += now - self._nonempty_since
        window = (now - self._started_at) if self._started_at else 0.0
        return {
            "workers": self.workers,
            "broken": self.broken,
            "tasks": self._tasks,
            "fallbacks": self._fallbacks,
            "worker_busy_seconds": dict(self._worker_seconds),
            "overlap_seconds": overlap,
            "window_seconds": window,
            "serial_residue_fraction": (
                max(0.0, 1.0 - overlap / window) if window > 0 else 1.0),
        }


# -- process-wide pool singleton ----------------------------------------------

_POOL: HostPool | None = None
_RESOLVED: int | None = None


def get_pool() -> HostPool | None:
    """The process-wide pool, or None when ``REPRO_WORKERS`` resolves to
    0.  At 0 workers nothing multiprocessing-related is ever imported:
    the serial path is the literal pre-pool code path."""
    global _POOL, _RESOLVED
    if _RESOLVED is None:
        _RESOLVED = configured_workers()
        if _RESOLVED > 0:
            _POOL = HostPool(_RESOLVED)
    return _POOL


def set_workers(count: int) -> HostPool | None:
    """Rebind the process-wide pool (tests and benches sweep this)."""
    global _POOL, _RESOLVED
    if _POOL is not None:
        _POOL.shutdown()
    _RESOLVED = max(0, int(count))
    _POOL = HostPool(_RESOLVED) if _RESOLVED else None
    return _POOL


def reset_pool() -> None:
    """Forget the pool and re-read ``REPRO_WORKERS`` on next use."""
    global _POOL, _RESOLVED
    if _POOL is not None:
        _POOL.shutdown()
    _POOL = None
    _RESOLVED = None


def clear_content_memos() -> None:
    """Drop every content-keyed memo the pool can warm.  Differential
    suites call this between sweeps so each worker count starts cold."""
    from repro.archive.apk import clear_parse_memo
    from repro.archive.chunks import clear_chunk_memo
    from repro.archive.gz import clear_compress_memo
    from repro.core.sanitizer import clear_sanitize_memos
    from repro.crypto.rsa import clear_crypto_memos
    clear_crypto_memos()
    clear_compress_memo()
    clear_chunk_memo()
    clear_parse_memo()
    clear_sanitize_memos()
