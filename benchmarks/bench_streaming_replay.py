"""Streaming-scale smoke: a 10^4-client / 100-round replay in one piece.

The tentpole claim behind the streaming replay mode is that memory
tracks the *active* window — the in-flight wave plus mirror channels —
not the trace length.  This smoke drives a fleet two orders of magnitude
past what the materialized path keeps resident (10^4 clients rotating
through 100-client waves over 100 rounds, every client pulling exactly
once) and asserts hard resource caps: process peak RSS and host time.
CI runs it emitting ``BENCH_streaming_replay.json``.

The full 10^5-client / 10^3-round demonstration (same shape, 10x in
both axes) is recorded in EXPERIMENTS.md §10; this smoke is the
CI-budget version of that run.

Scale knobs: ``REPRO_SMOKE_CLIENTS`` / ``REPRO_SMOKE_WAVE`` /
``REPRO_SMOKE_ROUNDS``.
"""

import os
import time

from conftest import peak_rss_bytes
from bench_trace_replay import MIRROR_SPECS, FROZEN, _population
from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_bytes, human_duration
from repro.workload.generator import generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

SMOKE_CLIENTS = int(os.environ.get("REPRO_SMOKE_CLIENTS", "10000"))
SMOKE_WAVE = int(os.environ.get("REPRO_SMOKE_WAVE", "100"))
SMOKE_ROUNDS = int(os.environ.get("REPRO_SMOKE_ROUNDS", "100"))

#: Resource caps (asserted).  Peak RSS covers the whole pytest process —
#: interpreter, imports, workload — so the cap is a coarse fleet-scale
#: bound, not a per-client budget; the scaling bench's tracemalloc row
#: is the precise O(active) measurement.  Host-time cap is calibrated
#: ~3x above the measured single-core time so only a real slowdown (or
#: an accidental return to O(trace) solver state) trips it.
SMOKE_RSS_CAP_BYTES = int(os.environ.get("REPRO_SMOKE_RSS_CAP", str(900 * 1024 * 1024)))
SMOKE_HOST_CAP_S = float(os.environ.get("REPRO_SMOKE_HOST_CAP", "420"))


def _smoke_scenario():
    scenario = build_multi_tenant_scenario(
        tenants=2, overlap=0.6,
        packages=_population(count=8, files=8, reps=200),
        mirror_specs=MIRROR_SPECS)
    multi_tenant_refresh(scenario)
    return scenario


def _smoke_trace():
    return generate_trace(
        rounds=SMOKE_ROUNDS, interval=3.0, pull_lag=2.5,
        publish_fraction=0.25, seed=5,
        mirror_names=[spec.name for spec in MIRROR_SPECS],
        frozen_mirrors=FROZEN,
        fleet_size=SMOKE_CLIENTS, clients_per_wave=SMOKE_WAVE,
        streaming=True,
    )


def test_streaming_scale_smoke(benchmark, maybe_profile):
    scenario = _smoke_scenario()
    trace = _smoke_trace()

    def run():
        return replay_trace(scenario, trace, clients=SMOKE_CLIENTS,
                            mode="streaming", shared_tpm_seed=2020)

    begin = time.perf_counter()
    report = benchmark.pedantic(
        maybe_profile("streaming scale smoke", run), rounds=1, iterations=1)
    host = time.perf_counter() - begin
    rss = peak_rss_bytes()
    summary = report.streaming

    benchmark.extra_info["host_time_s"] = round(host, 3)
    benchmark.extra_info["clients"] = SMOKE_CLIENTS
    benchmark.extra_info["rounds"] = SMOKE_ROUNDS
    benchmark.extra_info["peak_live_channels"] = summary.peak_live_channels
    if rss is not None:
        benchmark.extra_info["rss_cap_bytes"] = SMOKE_RSS_CAP_BYTES

    table = PaperTable(
        experiment="Streaming scale smoke",
        title=f"{SMOKE_CLIENTS}-client / {SMOKE_ROUNDS}-round streaming "
              f"replay ({SMOKE_WAVE} clients per wave)",
        columns=["clients", "rounds", "installs", "peak RSS", "host time",
                 "live channels (peak)", "staleness p50", "staleness p95"],
    )
    table.add_row(
        SMOKE_CLIENTS, SMOKE_ROUNDS, report.installs,
        human_bytes(rss) if rss is not None else "n/a",
        human_duration(host),
        summary.peak_live_channels,
        human_duration(report.staleness_quantile(50)),
        human_duration(report.staleness_quantile(95)),
    )
    table.note("every client pulls exactly once; retired after its final "
               "wave drains, so the live window stays at one wave + "
               "mirror channels while the trace streams past")
    record_table(table)

    assert report.rounds == SMOKE_ROUNDS
    assert report.installs == min(SMOKE_CLIENTS, SMOKE_ROUNDS * SMOKE_WAVE)
    assert summary.clients_booted == min(SMOKE_CLIENTS,
                                         SMOKE_ROUNDS * SMOKE_WAVE)
    # O(active): the solver's live state never exceeds one wave + mirror
    # channels + slack, no matter the trace length.
    assert summary.peak_live_channels <= SMOKE_WAVE + len(MIRROR_SPECS) + 2
    # Hard resource caps (the point of the smoke).
    if rss is not None:
        assert rss < SMOKE_RSS_CAP_BYTES, (
            f"peak RSS {rss} bytes over cap {SMOKE_RSS_CAP_BYTES}")
    if not maybe_profile.enabled:
        assert host < SMOKE_HOST_CAP_S, (
            f"host time {host:.1f}s over cap {SMOKE_HOST_CAP_S}s")
