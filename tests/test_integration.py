"""End-to-end stories reproducing the paper's central claims.

Each test tells one complete story across the whole stack: OS + TPM + IMA
+ mirrors + TSR + monitoring system.
"""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.baselines.berger import BergerBuilder
from repro.ima.subsystem import AppraisalMode
from repro.mirrors.builder import MirrorSpec
from repro.mirrors.mirror import MirrorBehavior
from repro.simnet.latency import Continent
from repro.util.errors import FileSystemError, RollbackError
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario


def _packages():
    return [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")]),
        ApkPackage(
            name="postgres", version="12.2-r0", depends=["musl"],
            scripts={".pre-install": (
                "addgroup -S postgres\n"
                "adduser -S -D -H -s /sbin/nologin -G postgres postgres\n"
                "mkdir -p /var/lib/postgresql\n"
            )},
            files=[PackageFile("/usr/bin/postgres", b"\x7fELF postgres")],
        ),
    ]


class TestFigure1FalsePositiveProblem:
    """The headline problem: updates without TSR break attestation; with
    TSR they verify cleanly."""

    def test_plain_mirror_update_flags_node(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024,
                                  refresh=False)
        node, pm = scenario.new_node(use_tsr=False)
        pm.update()
        pm.install("postgres")
        pm.exercise("postgres")
        node.load_file("/etc/passwd")
        report = scenario.monitor.verify_node(node)
        assert not report.trusted
        flagged = {v.path for v in report.violations}
        assert "/usr/bin/postgres" in flagged  # true content, false alarm

    def test_tsr_update_keeps_node_trusted(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024)
        node, pm = scenario.new_node(use_tsr=True)
        pm.update()
        pm.install("postgres")
        pm.exercise("postgres")
        node.load_file("/etc/passwd")
        node.load_file("/etc/group")
        node.load_file("/etc/shadow")
        report = scenario.monitor.verify_node(node)
        assert report.trusted, report.violations

    def test_actual_attack_still_detected_with_tsr(self):
        """TSR must not mask real compromises."""
        scenario = build_scenario(packages=_packages(), key_bits=1024)
        node, pm = scenario.new_node(use_tsr=True)
        pm.update()
        pm.install("musl")
        node.fs.write_file("/usr/bin/backdoor", b"\x7fELF evil")
        node.load_file("/usr/bin/backdoor")
        report = scenario.monitor.verify_node(node)
        assert not report.trusted
        assert any(v.path == "/usr/bin/backdoor" for v in report.violations)


class TestInstallOrderDeterminism:
    """Section 4.2: any package subset in any order converges to identical
    account files, so one signature covers every node."""

    def test_different_install_orders_same_etc(self):
        extra = ApkPackage(
            name="redis", version="5.0-r0",
            scripts={".pre-install": "adduser -S -s /sbin/nologin redis\n"},
            files=[PackageFile("/usr/bin/redis", b"\x7fELF redis")],
        )
        scenario = build_scenario(packages=_packages() + [extra],
                                  key_bits=1024)

        def install_all(order):
            node, pm = scenario.new_node()
            pm.update()
            for name in order:
                pm.install(name)
            return (node.fs.read_file("/etc/passwd"),
                    node.fs.read_file("/etc/group"),
                    node.fs.read_file("/etc/shadow"))

        assert install_all(["postgres", "redis"]) == install_all(
            ["redis", "postgres"]
        )

    def test_subset_install_matches_prediction_too(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024)
        node_a, pm_a = scenario.new_node()
        pm_a.update()
        pm_a.install("postgres")
        node_b, pm_b = scenario.new_node()
        pm_b.update()
        pm_b.install("postgres")
        assert node_a.fs.read_file("/etc/passwd") == node_b.fs.read_file(
            "/etc/passwd"
        )


class TestLocalEnforcement:
    """IMA-appraisal in enforce mode: only signed code runs."""

    def test_sanitized_binary_loads_unsigned_denied(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024)
        node, pm = scenario.new_node(appraisal=AppraisalMode.ENFORCE)
        pm.update()
        pm.install("postgres")
        # TSR-signed package binary loads fine.
        assert node.load_file("/usr/bin/postgres")
        # A dropped-in unsigned binary is denied.
        node.fs.write_file("/usr/bin/rogue", b"\x7fELF rogue")
        with pytest.raises(FileSystemError):
            node.load_file("/usr/bin/rogue")


class TestByzantineMirrors:
    def test_replay_minority_defeated(self):
        specs = (
            MirrorSpec("honest-1", Continent.EUROPE),
            MirrorSpec("honest-2", Continent.EUROPE),
            MirrorSpec("stale", Continent.EUROPE,
                       behavior=MirrorBehavior.FREEZE),
        )
        scenario = build_scenario(packages=_packages(), mirror_specs=specs,
                                  key_bits=1024)
        # Upstream publishes a security fix; the frozen mirror hides it.
        scenario.origin.publish(ApkPackage(
            name="musl", version="1.1.24-r3",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl patched")],
        ))
        scenario.sync_mirrors()
        report = scenario.refresh()
        assert "musl" in report.changed_packages
        node, pm = scenario.new_node()
        index = pm.update()
        assert index.get("musl").version == "1.1.24-r3"

    def test_single_mirror_client_freezes(self):
        """Baseline vulnerability: a direct-mirror client never sees the
        update the frozen mirror hides."""
        specs = (MirrorSpec("stale", Continent.EUROPE,
                            behavior=MirrorBehavior.FREEZE),)
        scenario = build_scenario(packages=_packages(), mirror_specs=specs,
                                  key_bits=1024, refresh=False)
        scenario.origin.publish(ApkPackage(
            name="musl", version="1.1.24-r9",
            files=[PackageFile("/lib/ld-musl.so", b"\x7fELF fixed")],
        ))
        scenario.sync_mirrors()
        node, pm = scenario.new_node(use_tsr=False)
        index = pm.update()  # valid signature, stale content: accepted
        assert index.get("musl").version == "1.1.24-r2"

    def test_corrupt_mirror_download_retried(self):
        specs = (
            MirrorSpec("corrupt", Continent.EUROPE,
                       behavior=MirrorBehavior.CORRUPT),
            MirrorSpec("honest-1", Continent.EUROPE),
            MirrorSpec("honest-2", Continent.NORTH_AMERICA),
        )
        # Refresh succeeds because blobs failing the index hash are
        # rejected in-enclave and re-fetched from the next mirror.
        scenario = build_scenario(packages=_packages(), mirror_specs=specs,
                                  key_bits=1024)
        assert scenario.refresh_report.sanitized == 2


class TestMultiTenancy:
    def test_tenants_have_isolated_keys_and_policies(self):
        scenario = build_scenario(packages=_packages(), key_bits=1024)
        second = scenario.tsr.deploy_policy(scenario.policy.to_yaml())
        assert second["repo_id"] != scenario.repo_id
        assert second["public_key_pem"] != scenario.tsr_public_key.to_pem()


class TestBergerBaseline:
    def test_berger_covers_files_not_scripts(self, rsa_key):
        builder = BergerBuilder(rsa_key)
        report = builder.build(_packages()[1])  # postgres, has scripts
        assert report.signed_files == 1
        assert report.package.files[0].ima_signature is not None
        assert report.scripts_still_unsafe  # the gap TSR closes

    def test_berger_scriptless_package_fully_covered(self, rsa_key):
        builder = BergerBuilder(rsa_key)
        report = builder.build(_packages()[0])
        assert not report.scripts_still_unsafe


class TestCveDetection:
    def test_insecure_account_package_defused(self):
        workload = generate_workload(scale=0.004, seed=11)
        scenario = build_scenario(workload=workload, key_bits=1024)
        report = scenario.refresh_report
        assert report.insecure_findings  # TSR reported the CVE pattern
        # Install the offending package through TSR on a node; the account
        # must exist but with a locked password.
        pkg_name = report.insecure_findings[0][0]
        node, pm = scenario.new_node()
        pm.update()
        if pm.index.get(pkg_name) is not None:
            pm.install(pkg_name)
            from repro.scripts.accounts import insecure_accounts
            risky = insecure_accounts(
                node.fs.read_file("/etc/passwd").decode(),
                node.fs.read_file("/etc/shadow").decode(),
            )
            assert risky == []
