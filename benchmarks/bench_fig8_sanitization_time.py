"""Figure 8 — per-package sanitization time vs file count and size.

Paper: sanitization time is heavily skewed — 11 ms (p50), 36 ms (p75),
422 ms (p95), up to 30 s (p100) — and grows with both the number of files
(signing) and the package size (archive processing).

Our absolute numbers differ by a constant factor (CPython vs the paper's
Rust prototype); the skew and the growth directions are the reproduced
shape.  Timings are *native* (outside the simulated enclave), like the
paper's instrumentation.
"""

from repro.bench.report import PaperTable, record_table
from repro.util.stats import human_duration, percentile

_PAPER_PERCENTILES = {"p50": 0.011, "p75": 0.036, "p95": 0.422, "p100": 30.0}


def test_fig8_sanitization_time_distribution(content_scenario, benchmark):
    results = content_scenario.refresh_report.results
    times = [r.timings.total for r in results]

    table = PaperTable(
        experiment="Figure 8",
        title="Sanitization time distribution (native, real CPU time)",
        columns=["percentile", "paper", "measured", "paper/p50 ratio",
                 "measured/p50 ratio"],
    )
    measured = {
        "p50": percentile(times, 50),
        "p75": percentile(times, 75),
        "p95": percentile(times, 95),
        "p100": max(times),
    }
    for name, paper_value in _PAPER_PERCENTILES.items():
        table.add_row(
            name,
            human_duration(paper_value),
            human_duration(measured[name]),
            f"{paper_value / _PAPER_PERCENTILES['p50']:.0f}x",
            f"{measured[name] / measured['p50']:.0f}x",
        )

    # Growth with file count: bucket packages by file count.
    buckets = [(1, 4), (5, 16), (17, 64), (65, 10_000)]
    for low, high in buckets:
        bucket_times = [r.timings.total for r in results
                        if low <= r.file_count <= high]
        if bucket_times:
            table.note(
                f"files {low}-{high}: median "
                f"{human_duration(percentile(bucket_times, 50))} "
                f"over {len(bucket_times)} packages"
            )
    record_table(table)

    # Benchmark the hot path itself: re-sanitize a median-sized package.
    by_size = sorted(results, key=lambda r: r.original_size)
    median_pkg = by_size[len(by_size) // 2]
    blob = content_scenario.origin.package_blob(median_pkg.package.name)
    program = content_scenario.tsr._enclave._program
    state = program._repos[content_scenario.repo_id]
    benchmark(state.sanitizer.sanitize_blob, blob)

    # Shape assertions: the skew (p95 >> p50) and monotone growth.
    assert measured["p95"] > 5 * measured["p50"]
    assert measured["p100"] > 20 * measured["p50"]
    small = [r.timings.total for r in results if r.file_count <= 4]
    large = [r.timings.total for r in results if r.file_count >= 65]
    if small and large:
        assert percentile(large, 50) > percentile(small, 50)
