"""Differential suites pinning the host-time fast paths byte-identical.

The raw-speed pass (memoized crypto, incremental repack, vectorized
chunker and solver) is only admissible if every fast path is
*indistinguishable* from the cold path it replaces.  These tests are the
pin:

* **Incremental repack** — 50 seeded catalog mutations, each built twice:
  once against warm compress/chunk memos and once fully cold (memos
  cleared).  Signed apk blobs and signed index bytes must match exactly.
* **Memoized verify** — a signature that verified once must keep
  verifying via the memo, and a signature tampered *after* that first
  success must still fail: the memo key covers the signature bytes, so
  tampering can never alias a cached success.
* **Solver engines** — the numpy vectorized core vs the pure-Python
  incremental solver vs the dense reference, across fleet shapes.
* **Chunker engines** — the vectorized steady-state gear scan vs the
  scalar rolling loop, on random, adversarial, and odd-parameter inputs.
"""

import os
import random

import pytest

from repro.archive import chunks
from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.gz import clear_compress_memo
from repro.archive.index import IndexEntry, RepositoryIndex
from repro.crypto.hashes import sha256_hex
from repro.crypto.rsa import generate_keypair
from repro.simnet.schedule import ParallelTransferSchedule
from repro.simnet.schedule import _np as solver_np

KEY = generate_keypair(bits=1024, seed=71)
MUTATIONS = 50


def _base_catalog(rng: random.Random) -> list[ApkPackage]:
    packages = []
    for i in range(6):
        files = [PackageFile(f"/usr/bin/tool{i}",
                             rng.randbytes(rng.randint(800, 6000)))]
        files += [PackageFile(f"/usr/lib/tool{i}/lib{j}.so",
                              bytes([i, j]) * rng.randint(50, 400))
                  for j in range(3)]
        scripts = {}
        if i % 2 == 0:
            scripts = {".post-install": f"adduser -S svc{i}\n"}
        packages.append(ApkPackage(name=f"tool-{i}", version="1.0-r0",
                                   scripts=scripts, files=files))
    return packages


def _mutate(packages: list[ApkPackage], rng: random.Random,
            serial: int) -> list[ApkPackage]:
    """One publication step: bump a version, rewrite a payload, or add a
    package — the shapes the refresh rounds actually produce."""
    packages = list(packages)
    kind = rng.randrange(3)
    if kind == 0:  # version bump, identical payload (pure-memo repack)
        i = rng.randrange(len(packages))
        old = packages[i]
        packages[i] = ApkPackage(
            name=old.name, version=f"1.0-r{serial}", scripts=old.scripts,
            files=old.files)
    elif kind == 1:  # payload edit (partial memo reuse)
        i = rng.randrange(len(packages))
        old = packages[i]
        files = list(old.files)
        j = rng.randrange(len(files))
        files[j] = PackageFile(files[j].path,
                               files[j].content + rng.randbytes(64))
        packages[i] = ApkPackage(
            name=old.name, version=f"1.1-r{serial}", scripts=old.scripts,
            files=files)
    else:  # new package
        packages.append(ApkPackage(
            name=f"extra-{serial}", version="0.1-r0",
            files=[PackageFile(f"/opt/extra{serial}",
                               rng.randbytes(rng.randint(700, 3000)))]))
    return packages


def _publish(packages: list[ApkPackage], serial: int) -> tuple[list, bytes]:
    """Build every apk and the signed index over them, as the TSR does."""
    blobs = [pkg.build(KEY, key_name="tsr") for pkg in packages]
    index = RepositoryIndex(serial=serial)
    for pkg, blob in zip(packages, blobs):
        index.add(IndexEntry(name=pkg.name, version=pkg.version,
                             size=len(blob), sha256=sha256_hex(blob)))
    index.sign(KEY)
    return blobs, index.to_bytes()


class TestIncrementalRepackDifferential:
    def test_fifty_mutations_byte_identical_to_cold(self):
        """Warm-memo publication of 50 mutated catalogs == cold rebuild."""
        rng = random.Random(2020)
        packages = _base_catalog(rng)
        catalogs = [packages]
        for serial in range(1, MUTATIONS):
            catalogs.append(_mutate(catalogs[-1], rng, serial))

        # Warm pass: memos accumulate across publications, exactly as the
        # refresh orchestrator reuses them across rounds.
        warm = [_publish(cat, serial) for serial, cat in enumerate(catalogs)]

        # Cold pass: every publication rebuilt from scratch.
        cold = []
        for serial, cat in enumerate(catalogs):
            clear_compress_memo()
            chunks.clear_chunk_memo()
            cold.append(_publish(cat, serial))

        for (warm_blobs, warm_index), (cold_blobs, cold_index) in zip(
                warm, cold):
            assert warm_blobs == cold_blobs
            assert warm_index == cold_index

    def test_warm_blobs_still_verify_and_parse(self):
        rng = random.Random(7)
        packages = _mutate(_base_catalog(rng), rng, serial=1)
        blobs, index_bytes = _publish(packages, serial=1)
        public = KEY.public_key
        for pkg, blob in zip(packages, blobs):
            parsed = ApkPackage.parse(blob)
            signer, _ = parsed.verify_with_cost([public])
            assert signer is public
        restored = RepositoryIndex.from_bytes(index_bytes)
        assert restored.verify(public)


class TestMemoizedVerifyEquivalence:
    def test_memo_hit_matches_fresh_verdict(self):
        public = KEY.public_key
        message = b"signed index body"
        signature = KEY.sign(message)
        fresh, cost = public.verify_with_cost(message, signature)
        hit, hit_cost = public.verify_with_cost(message, signature)
        assert fresh is True and hit is True
        # Memo hits replay the measured cost of the original verdict so
        # enclave-time charging stays faithful.
        assert hit_cost == cost

    def test_tamper_after_prior_success_still_fails(self):
        """The attack the memo must not enable: verify a good signature
        (priming the cache), then flip bits in it — the tampered bytes
        must be re-verified, and must fail."""
        public = KEY.public_key
        message = b"index body under attack"
        signature = KEY.sign(message)
        assert public.verify(message, signature)
        for pos in (0, len(signature) // 2, len(signature) - 1):
            tampered = bytearray(signature)
            tampered[pos] ^= 0x41
            assert not public.verify(message, bytes(tampered))

    def test_cross_message_aliasing_rejected(self):
        public = KEY.public_key
        sig_a = KEY.sign(b"message a")
        assert public.verify(b"message a", sig_a)
        assert not public.verify(b"message b", sig_a)

    def test_sign_memo_reproduces_bytes(self):
        first, _ = KEY.sign_with_cost(b"deterministic pkcs1 v1.5")
        second, _ = KEY.sign_with_cost(b"deterministic pkcs1 v1.5")
        assert first == second
        assert KEY.public_key.verify(b"deterministic pkcs1 v1.5", first)


def _fleet(channels: int, items: int, seed: int) -> ParallelTransferSchedule:
    rng = random.Random(seed)
    schedule = ParallelTransferSchedule(
        downlink_bandwidth=100 * 1024 * 1024)
    for c in range(channels):
        channel = f"c{c:04d}"
        if rng.random() < 0.7:
            schedule.limit_channel(channel,
                                   rng.choice((1, 2, 4, 8)) * 1024 * 1024)
        for i in range(items):
            schedule.enqueue(channel, (channel, i),
                             setup=rng.random() * 0.05,
                             size_bytes=rng.randint(5_000, 400_000),
                             bandwidth=3 * 1024 * 1024)
    return schedule


@pytest.mark.skipif(solver_np is None, reason="numpy unavailable")
class TestSolverEngineDifferential:
    SHAPES = [(1, 500, 1), (2, 200, 3), (3, 64, 5), (4, 1000, 1)]

    def _solve_with_engine(self, schedule, engine, monkeypatch):
        if engine is None:
            monkeypatch.delenv("REPRO_SOLVER", raising=False)
        else:
            monkeypatch.setenv("REPRO_SOLVER", engine)
        return schedule.solve()

    @pytest.mark.parametrize("seed,channels,items", SHAPES)
    def test_numpy_matches_pure(self, seed, channels, items, monkeypatch):
        pure = self._solve_with_engine(
            _fleet(channels, items, seed), None, monkeypatch)
        fast = self._solve_with_engine(
            _fleet(channels, items, seed), "numpy", monkeypatch)
        assert pure.keys() == fast.keys()
        worst = max(max(abs(pure[k].start - fast[k].start),
                        abs(pure[k].finish - fast[k].finish))
                    for k in pure)
        assert worst < 1e-9

    def test_numpy_matches_reference(self, monkeypatch):
        schedule = _fleet(300, 2, seed=9)
        reference = schedule.solve_reference()
        monkeypatch.setenv("REPRO_SOLVER", "numpy")
        fast = _fleet(300, 2, seed=9).solve()
        worst = max(max(abs(reference[k].start - fast[k].start),
                        abs(reference[k].finish - fast[k].finish))
                    for k in reference)
        assert worst < 1e-6


class TestChunkerEngineDifferential:
    def _cases(self):
        rng = random.Random(41)
        cases = [
            rng.randbytes(40_000),                    # generic random blob
            bytes(64_000),                            # zero run (no cuts)
            b"\x00\xff" * 32_000,                     # two-byte period
            rng.randbytes(1_000) * 48,                # long repeated period
            rng.randbytes(chunks._NUMPY_THRESHOLD),   # exactly at threshold
            rng.randbytes(chunks._NUMPY_THRESHOLD + 1),
        ]
        # Blobs stitched so boundary candidates crowd the warm window.
        probe = rng.randbytes(30_000)
        cases.append(probe + probe[:500] + probe)
        return cases

    @pytest.mark.skipif(chunks._np is None, reason="numpy unavailable")
    def test_vector_matches_scalar(self):
        for data in self._cases():
            scalar = chunks._chunk_offsets_scalar(
                data, chunks.MIN_CHUNK, chunks.MAX_CHUNK, chunks._MASK)
            vector = chunks._chunk_offsets_vector(
                data, chunks.MIN_CHUNK, chunks.MAX_CHUNK, chunks._MASK)
            assert vector == scalar

    @pytest.mark.skipif(chunks._np is None, reason="numpy unavailable")
    def test_vector_matches_scalar_odd_params(self):
        rng = random.Random(43)
        data = rng.randbytes(50_000)
        for min_size, max_size, mask in (
                (1, 17, 0x3),          # tiny windows, dense cuts
                (64, 65, 0xff),        # max barely above min
                (100, 10_000, 0x1),    # near-every-byte boundary fire
                (512, 4096, (1 << 13) - 1),  # sparse cuts, long chunks
                (2000, 3000, 0x7ff)):
            scalar = chunks._chunk_offsets_scalar(
                data, min_size, max_size, mask)
            vector = chunks._chunk_offsets_vector(
                data, min_size, max_size, mask)
            assert vector == scalar, (min_size, max_size, mask)

    def test_offsets_memo_transparent(self):
        rng = random.Random(47)
        data = rng.randbytes(20_000)
        chunks.clear_chunk_memo()
        cold = chunks.chunk_offsets(data)
        warm = chunks.chunk_offsets(data)
        assert warm == cold
        warm.append((0, 0))  # callers get a copy, not the memo entry
        assert chunks.chunk_offsets(data) == cold
