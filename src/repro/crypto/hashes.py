"""Digest helpers: SHA-256 and HMAC-SHA-256.

``hashlib`` provides the compression function; everything above it
(IMA measurement formats, apk datahashes, sealing MACs) is built here.
"""

from __future__ import annotations

import hashlib

SHA256_DIGEST_SIZE = 32


def sha256_bytes(data: bytes) -> bytes:
    """Raw 32-byte SHA-256 digest."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest, the format IMA logs and APKINDEX use."""
    return sha256_bytes(data).hex()


#: Below this many total bytes a digest batch is cheaper inline than the
#: pickle round-trip to a worker.
_BATCH_POOL_THRESHOLD = 1 << 20


def sha256_hex_batch(blobs: list[bytes], pool=None) -> list[str]:
    """Hex digests for a batch of blobs, in input order.

    Large batches fan out to the host pool (repro.util.hostpool); the
    result is the same pure function of the input either way.
    """
    if pool is None or sum(map(len, blobs)) < _BATCH_POOL_THRESHOLD:
        return [sha256_hex(blob) for blob in blobs]
    return pool.run_batch("sha256hex", list(blobs))


# Keystream generation (sgx.sealing) calls HMAC once per 32-byte block
# with the same key, so the padded-key hash states are precomputed once
# per key and ``.copy()``-ed per message.  Output is bit-identical to the
# textbook construction below.
_HMAC_PAD_CACHE: dict[bytes, tuple["hashlib._Hash", "hashlib._Hash"]] = {}


def _hmac_pads(key: bytes) -> tuple["hashlib._Hash", "hashlib._Hash"]:
    cached = _HMAC_PAD_CACHE.get(key)
    if cached is None:
        block_size = 64
        padded = sha256_bytes(key) if len(key) > block_size else key
        padded = padded.ljust(block_size, b"\x00")
        inner = hashlib.sha256(bytes(b ^ 0x36 for b in padded))
        outer = hashlib.sha256(bytes(b ^ 0x5C for b in padded))
        if len(_HMAC_PAD_CACHE) >= 256:
            _HMAC_PAD_CACHE.clear()
        _HMAC_PAD_CACHE[key] = cached = (inner, outer)
    return cached


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256, used by SGX sealing to authenticate sealed blobs.

    Equivalent to ``sha256(opad || sha256(ipad || data))`` with the
    RFC 2104 padded key; the padded-key prefixes are cached per key.
    """
    inner_proto, outer_proto = _hmac_pads(bytes(key))
    inner = inner_proto.copy()
    inner.update(data)
    outer = outer_proto.copy()
    outer.update(inner.digest())
    return outer.digest()
