"""The host-side TSR service (paper Figure 6, component D).

Runs on an untrusted cloud machine: performs network and disk I/O, hosts
the enclave, and exposes the repository API on the simulated network.
Trust-relevant decisions all happen inside the enclave program; the service
moves bytes.

Time accounting: network and disk operations advance the simulated clock;
sanitization is *really executed* (real CPU work) and its measured duration
is injected into the simulated clock, scaled by the EPC cost model when SGX
is enabled.  EXPERIMENTS.md documents this split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache import PackageCache
from repro.core.freshness import FreshnessManager
from repro.core.policy import SecurityPolicy
from repro.core.program import TsrProgram
from repro.core.sanitizer import SanitizationRejected, SanitizationResult
from repro.crypto.hashes import sha256_hex
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EpcModel
from repro.sgx.platform import SgxCpu
from repro.simnet.latency import (
    LOCAL_DISK_BANDWIDTH_BYTES_PER_S,
    LOCAL_DISK_SEEK_S,
)
from repro.simnet.network import Host, Network, Request
from repro.tpm.device import Tpm
from repro.util.errors import NetworkError, PolicyError, QuorumError, RollbackError

SEALED_STATE_PATH = "/var/lib/tsr/state.sealed"


def matches_expected(blob: bytes, expected: dict) -> bool:
    """Does a blob match its quorum-validated index entry (size + hash)?"""
    return len(blob) == expected["size"] \
        and sha256_hex(blob) == expected["sha256"]


@dataclass
class RefreshReport:
    """What one repository refresh did (drives Table 3 and Fig. 10)."""

    serial: int
    changed_packages: list[str]
    sanitized: int
    rejected: list[tuple[str, str]]
    downloaded_bytes: int
    quorum_elapsed: float
    download_elapsed: float
    sanitize_elapsed: float
    insecure_findings: list[tuple[str, str]] = field(default_factory=list)
    results: list[SanitizationResult] = field(default_factory=list)
    #: Simulated wall-clock of the whole refresh.  In sequential mode the
    #: phases simply add up; the pipelined engine overlaps them, so its
    #: wall-clock is recorded explicitly and is less than the phase sum.
    wall_elapsed: float | None = None
    pipelined: bool = False
    #: Package name -> serving mirror (pipelined downloads only).
    mirror_assignments: dict[str, str] = field(default_factory=dict)
    #: Packages sanitized before the catalog barrier (pipelined only).
    sanitized_early: int = 0
    #: This refresh ran as part of a multi-tenant orchestrated plan.
    orchestrated: bool = False
    #: Packages whose download was satisfied by another tenant's transfer
    #: or the content-addressed cache (orchestrated plans only), and the
    #: bytes that did not have to move again because of it.
    deduped_downloads: int = 0
    deduped_download_bytes: int = 0
    #: Packages whose catalog scan replayed a memoized delta.
    deduped_scans: int = 0
    #: Packages whose sanitization reused a shared content analysis.
    shared_sanitize: int = 0
    #: Downloads that started on first-wave entry agreement, while quorum
    #: extension reads were still in flight.
    interleaved_downloads: int = 0
    #: Re-downloads forced because the cached blob had been evicted.
    evicted_redownloads: int = 0
    #: Cached blobs whose content analysis was pre-scanned on the enclave
    #: while this repository's quorum was still widening (zero network).
    prescanned: int = 0
    #: Simulated seconds this repository's serving-induced re-sanitize
    #: jobs spent between being queued (an evicted-blob serve) and
    #: leaving the enclave channel this round — the measurable coupling
    #: of serving load back into refresh wall-clock (orchestrated plans).
    resanitize_wait_s: float = 0.0

    @property
    def phase_sum(self) -> float:
        """Resource-seconds across phases (ignores any overlap)."""
        return self.quorum_elapsed + self.download_elapsed + self.sanitize_elapsed

    @property
    def total_elapsed(self) -> float:
        """Simulated wall-clock this refresh took end to end."""
        if self.wall_elapsed is not None:
            return self.wall_elapsed
        return self.phase_sum

    @property
    def overlap_saved(self) -> float:
        """Seconds the pipeline saved versus running the phases back to back."""
        return max(0.0, self.phase_sum - self.total_elapsed)


@dataclass(eq=False)
class ResanitizeJob:
    """One serving-induced enclave job.

    A time-stamped serve found the sanitized blob evicted from the disk
    cache: the simulation serves the publication's captured copy (bytes
    are identical either way), but a real TSR would have to re-run
    sanitization to restore its cached artifact — so the serve queues
    this job, and the next orchestrated refresh round drains the queue
    FIFO on the serial enclave channel *ahead of* that round's own
    sanitize work.  Serving load thereby couples back into refresh
    wall-clock, which is exactly the number the replica tier wins back.
    """

    repo_id: str
    name: str
    #: Plan instant of the serve that queued the job.
    queued_at: float
    #: Simulated enclave seconds the job occupies (the last measured
    #: sanitize duration for this package, or a bytes-rate estimate when
    #: this deployment never sanitized it).
    duration: float
    size_bytes: int
    #: The verified published blob to restore into the cache.
    blob: bytes


@dataclass
class Publication:
    """One tenant repository's served state, frozen at a plan instant.

    The multi-round trace replay (:mod:`repro.workload.replay`) measures
    *staleness*: clients pulling at plan time T must see the newest signed
    index whose refresh had **finished** by T — not whatever the enclave
    happens to hold while a later round is still in flight.  Refresh
    rounds therefore :meth:`~TrustedSoftwareRepository.record_publication`
    their outputs with the round's completion offset, and time-stamped
    client requests (``as_of``) are served from the publication log.
    Blob maps share unchanged entries with the previous publication, so a
    20-round log does not copy the repository 20 times.
    """

    available_at: float
    serial: int
    index_bytes: bytes
    #: package name -> (size, sha256) pinned by the signed index.
    entries: dict[str, tuple[int, str]]
    #: package name -> sanitized blob (entries absent when the blob was
    #: already evicted at capture time — those fail closed when served).
    blobs: dict[str, bytes]


@dataclass(frozen=True)
class RepoConfig:
    """Resolved per-repository refresh configuration.

    Hoisted out of :meth:`TrustedSoftwareRepository.refresh`, which used
    to re-export the enclave state, re-parse the policy YAML, and re-sort
    the mirror set on *every* call.  Policies are immutable after
    deployment, so this is resolved once per repository and shared by the
    phased, pipelined, and orchestrated refresh paths (the cache is
    dropped on :meth:`TrustedSoftwareRepository.restart`).
    """

    repo_id: str
    #: The parsed policy (host-deployed, nothing secret in it): the
    #: orchestrator needs the signer keys to validate index responses
    #: host-side before counting optimistic entry votes, and the package
    #: filter to skip downloads the enclave would discard anyway.
    policy: SecurityPolicy
    #: Policy mirrors in policy order ({"hostname", "continent"} dicts).
    mirrors: tuple[dict, ...]
    #: The same mirrors, fastest-first from the TSR host.
    ordered_mirrors: tuple[dict, ...]
    fault_tolerance: int
    quorum_needed: int


class TrustedSoftwareRepository:
    """A TSR deployment: enclave + cache + network endpoint."""

    def __init__(self, hostname: str, network: Network, cpu: SgxCpu, tpm: Tpm,
                 continent=None, key_bits: int = 1024,
                 sgx_enabled: bool = True, epc_model: EpcModel | None = None,
                 cache: PackageCache | None = None,
                 delta_log_depth: int = 8):
        from repro.simnet.latency import Continent

        self.hostname = hostname
        self._network = network
        self._cpu = cpu
        self._tpm = tpm
        self._key_bits = key_bits
        self.sgx_enabled = sgx_enabled
        self.epc_model = epc_model or EpcModel()
        self.cache = cache or PackageCache()
        self._repo_configs: dict[str, RepoConfig] = {}
        #: repo_id -> publications ordered by ``available_at`` (replay).
        self._publications: dict[str, list[Publication]] = {}
        #: Time-stamped serving: cache hits vs publication-copy fallbacks
        #: (a fallback is a serve the cache could not satisfy — evicted or
        #: already overwritten by a newer round).  Every fallback queues a
        #: re-sanitize job, so ``serve_fallbacks`` counts *queued*
        #: re-sanitizes: a second fallback serve of an already-queued
        #: package rides the pending job and is not recounted.
        self.serve_cache_hits = 0
        self.serve_fallbacks = 0
        #: Serving-debt policy: when True (default), every fallback serve
        #: queues a re-sanitize job that the next orchestrated refresh
        #: drains on the serial enclave channel — serving load couples
        #: into refresh wall-clock.  False serves the captured copy
        #: without restoring the cached artifact (fallbacks still count);
        #: benches that compare refresh *scheduling* disable it so both
        #: arms carry identical enclave work.
        self.resanitize_serves = True
        #: FIFO re-sanitize queue plus the (repo, package) keys currently
        #: in it; drained by :meth:`take_resanitize_jobs`.
        self._resanitize_jobs: list[ResanitizeJob] = []
        self._resanitize_queued: set[tuple[str, str]] = set()
        #: (repo_id, package) -> last measured simulated sanitize
        #: duration, plus an aggregate seconds-per-byte rate for packages
        #: this process has not sanitized yet.
        self._sanitize_cost: dict[tuple[str, str], float] = {}
        self._sanitize_rate_s = 0.0
        self._sanitize_rate_bytes = 0
        #: How many publications :meth:`record_publication` retains per
        #: repository.  ``None`` resolves to ``delta_log_depth + 1`` at
        #: prune time (so post-construction depth changes are honoured);
        #: the newest publication is always kept.
        self.publication_retention: int | None = None
        #: Full index pulls forced because the client's base publication
        #: had been pruned from the bounded log (plus package full pulls
        #: whose delta base manifest was pruned with its publication).
        self.retention_full_pulls = 0
        #: repo_id -> newest pruned publication serial.
        self._pruned_through: dict[str, int] = {}
        #: Chunk-manifest shas dropped by retention pruning (distinguishes
        #: a pruned base from one this TSR never published).
        self._pruned_manifest_shas: set[str] = set()
        #: How many publications back the delta endpoints will diff
        #: against (the publication-log depth bound: clients further
        #: behind get a full pull).  ``0`` disables delta serving.
        self.delta_log_depth = delta_log_depth
        #: Delta-serving accounting: envelopes served by kind, fallback
        #: reasons, and the wire bytes deltas saved vs full responses.
        self.delta_index_serves = 0
        self.delta_index_unchanged = 0
        self.delta_index_fallbacks: dict[str, int] = {}
        self.delta_package_serves = 0
        self.delta_package_fallbacks: dict[str, int] = {}
        self.delta_bytes_saved = 0
        #: (repo_id, base_serial, target_serial) -> index delta envelope;
        #: (base_sha, target_sha) -> package delta envelope.  N clients at
        #: the same base cost one diff computation per round, not N.
        self._index_delta_memo: dict[tuple[str, int, int], bytes] = {}
        self._package_delta_memo: dict[tuple[str, str], bytes | None] = {}
        #: (repo_id, serial) -> parsed publication index (diffing needs
        #: entries; same-serial publications carry byte-identical index
        #: bytes, and serial keys survive retention pruning's position
        #: shifts where log positions would not).
        self._publication_indexes: dict[tuple[str, int], object] = {}
        self._freshness = FreshnessManager(tpm)
        self._enclave = Enclave(cpu, TsrProgram, key_bits=key_bits)
        network.add_host(Host(
            name=hostname,
            continent=continent or Continent.EUROPE,
            handler=self._handle_request,
        ))

    # -- client-facing API (network handler) ---------------------------------------

    def _handle_request(self, operation: str, payload: object) -> tuple[object, int]:
        if operation == "deploy_policy":
            response = self.deploy_policy(str(payload))
            return response, 2048
        if operation == "get_index":
            if isinstance(payload, dict) and payload.get("as_of") is not None:
                blob = self.index_bytes_at(payload["repo"], payload["as_of"])
            else:
                repo_id = (payload["repo"] if isinstance(payload, dict)
                           else str(payload))
                blob = self._enclave.ecall("sanitized_index_bytes", repo_id)
            return blob, len(blob)
        if operation == "get_package":
            repo_id = payload["repo"]
            name = payload["name"]
            if payload.get("as_of") is not None:
                blob = self.serve_package_at(repo_id, name, payload["as_of"])
            else:
                blob = self.serve_package(repo_id, name)
            return blob, len(blob)
        if operation == "get_index_delta":
            blob = self.index_delta_at(payload["repo"], payload["base_serial"],
                                       payload.get("as_of"))
            return blob, len(blob)
        if operation == "get_package_delta":
            blob = self.package_delta_at(payload["repo"], payload["name"],
                                         payload["base_sha256"],
                                         payload.get("as_of"))
            return blob, len(blob)
        if operation == "attest":
            return self._enclave.ecall("quote_for_repo", str(payload)), 2048
        raise NetworkError(f"TSR {self.hostname}: unknown operation {operation!r}")

    # -- policy deployment -------------------------------------------------------------

    def deploy_policy(self, policy_yaml: str) -> dict:
        """Tenant onboarding: returns repo id, public key, and the quote."""
        deployed = self._enclave.ecall("deploy_policy", policy_yaml)
        attestation = self._enclave.ecall("quote_for_repo", deployed["repo_id"])
        deployed["quote"] = attestation["quote"]
        return deployed

    def repository_ids(self) -> list[str]:
        return self._enclave.ecall("repository_ids")

    def public_key_pem(self, repo_id: str) -> str:
        return self._enclave.ecall("public_key_pem", repo_id)

    # -- refresh (batch sanitization) ------------------------------------------------------

    def refresh(self, repo_id: str, parallel_downloads: int = 1,
                pipelined: bool = False,
                max_streams: int | None = None) -> RefreshReport:
        """Quorum-read the upstream index, sanitize changed packages,
        publish a new sanitized index, and seal state.

        ``parallel_downloads`` spreads package fetches over that many
        concurrent mirror connections — the optimization the paper leaves
        as future work (Table 3 discussion); 1 reproduces the paper's
        sequential behaviour.

        ``pipelined`` switches to the overlapped refresh engine
        (:mod:`repro.core.pipeline`): downloads fan out over every policy
        mirror concurrently (capped by ``max_streams``) and sanitization
        starts while later packages are still in flight.  Verdicts are
        identical to sequential mode; only the schedule differs.
        """
        if parallel_downloads < 1:
            raise ValueError("parallel_downloads must be >= 1")
        config = self.repo_config(repo_id)
        policy_mirrors = list(config.mirrors)
        quorum_start = self._network.clock.now()
        quorum = self._read_quorum(repo_id, policy_mirrors)
        quorum_elapsed = self._network.clock.now() - quorum_start

        if pipelined:
            return self._refresh_pipelined(repo_id, policy_mirrors, quorum,
                                           quorum_elapsed, max_streams)

        download_elapsed = 0.0
        sanitize_elapsed = 0.0
        downloaded = 0
        evicted_redownloads = 0
        deduped_downloads = 0
        deduped_download_bytes = 0
        rejected: list[tuple[str, str]] = []
        results: list[SanitizationResult] = []

        # Pass 1: make sure every changed package blob is available locally
        # (cache hit, content-store hit, or mirror download), verified
        # against the quorum index.  Content-store hits are blobs another
        # tenant's orchestrated refresh already landed (cross-tenant
        # dedupe reaching the single-repo path).
        blobs: dict[str, bytes] = {}
        to_download: list[str] = []
        for name in quorum["changed"]:
            expected = quorum["expected"][name]
            blob, source, evicted = self.cache.lookup_blob(repo_id, name,
                                                           expected)
            if blob is not None:
                self._advance_disk_read(len(blob))
                blobs[name] = blob
                if source == "content":
                    deduped_downloads += 1
                    deduped_download_bytes += len(blob)
                continue
            if evicted:
                evicted_redownloads += 1
            to_download.append(name)

        if parallel_downloads == 1:
            for name in to_download:
                start = self._network.clock.now()
                blob = self._download_package(policy_mirrors, name,
                                              quorum["expected"][name])
                download_elapsed += self._network.clock.now() - start
                downloaded += len(blob)
                self.cache.put_original(repo_id, name, blob)
                blobs[name] = blob
        elif to_download:
            start = self._network.clock.now()
            fetched = self._download_parallel(policy_mirrors, to_download,
                                              quorum["expected"],
                                              parallel_downloads)
            download_elapsed += self._network.clock.now() - start
            for name, blob in fetched.items():
                downloaded += len(blob)
                self.cache.put_original(repo_id, name, blob)
                blobs[name] = blob

        # Pass 2: account catalog over the whole upstream set (first refresh)
        # or just the changed set (incremental refreshes keep the catalog).
        for name, blob in blobs.items():
            self._enclave.ecall("scan_for_accounts", repo_id, blob)
        catalog_info = self._enclave.ecall("finish_catalog", repo_id)

        # Pass 3: sanitize.
        for name, blob in blobs.items():
            try:
                result = self._enclave.ecall("sanitize_package", repo_id, blob)
            except SanitizationRejected as exc:
                rejected.append((name, exc.reason))
                continue
            duration = self._simulated_sanitize_time(result)
            sanitize_elapsed += duration
            self.note_sanitize_cost(repo_id, name, len(blob), duration)
            self.cache.put_sanitized(repo_id, name, result.blob)
            results.append(result)

        index_bytes = self._enclave.ecall("finalize_index", repo_id)
        del index_bytes  # published on demand via get_index
        self._seal_state()
        return RefreshReport(
            serial=quorum["serial"],
            changed_packages=list(quorum["changed"]),
            sanitized=len(results),
            rejected=rejected,
            downloaded_bytes=downloaded,
            quorum_elapsed=quorum_elapsed,
            download_elapsed=download_elapsed,
            sanitize_elapsed=sanitize_elapsed,
            insecure_findings=catalog_info["insecure_findings"],
            results=results,
            evicted_redownloads=evicted_redownloads,
            deduped_downloads=deduped_downloads,
            deduped_download_bytes=deduped_download_bytes,
        )

    def _refresh_pipelined(self, repo_id: str, policy_mirrors: list[dict],
                           quorum: dict, quorum_elapsed: float,
                           max_streams: int | None) -> RefreshReport:
        """The overlapped refresh path (see :mod:`repro.core.pipeline`)."""
        from repro.core.pipeline import RefreshPipeline

        pipeline = RefreshPipeline(self, repo_id, policy_mirrors,
                                   quorum["expected"],
                                   max_streams=max_streams)
        outcome = pipeline.run(list(quorum["changed"]))
        self._network.clock.advance(outcome.makespan)
        index_bytes = self._enclave.ecall("finalize_index", repo_id)
        del index_bytes  # published on demand via get_index
        self._seal_state()
        return RefreshReport(
            serial=quorum["serial"],
            changed_packages=list(quorum["changed"]),
            sanitized=len(outcome.results),
            rejected=outcome.rejected,
            downloaded_bytes=outcome.downloaded_bytes,
            quorum_elapsed=quorum_elapsed,
            download_elapsed=outcome.download_elapsed,
            sanitize_elapsed=outcome.sanitize_elapsed,
            insecure_findings=outcome.catalog_info["insecure_findings"],
            results=outcome.results,
            wall_elapsed=quorum_elapsed + outcome.makespan,
            pipelined=True,
            mirror_assignments=outcome.mirror_assignments,
            sanitized_early=outcome.sanitized_early,
            evicted_redownloads=outcome.evicted_redownloads,
            deduped_downloads=outcome.deduped_downloads,
            deduped_download_bytes=outcome.deduped_download_bytes,
        )

    def repo_config(self, repo_id: str) -> RepoConfig:
        """Resolved refresh configuration for one repository, cached.

        One enclave state export + policy parse + RTT sort per repository
        instead of per refresh; the orchestrator and the single-repo
        paths share the same resolution.
        """
        config = self._repo_configs.get(repo_id)
        if config is None:
            deployed = self._enclave.ecall("export_state")
            policy = SecurityPolicy.from_yaml(deployed[repo_id]["policy_yaml"])
            mirrors = [
                {"hostname": m.hostname, "continent": m.continent}
                for m in policy.mirrors
            ]
            ordered = self.mirrors_by_rtt(mirrors)
            config = RepoConfig(
                repo_id=repo_id,
                policy=policy,
                mirrors=tuple(mirrors),
                ordered_mirrors=tuple(ordered),
                fault_tolerance=policy.fault_tolerance,
                quorum_needed=policy.fault_tolerance + 1,
            )
            self._repo_configs[repo_id] = config
        return config

    def _policy_mirrors(self, repo_id: str) -> list[dict]:
        return list(self.repo_config(repo_id).mirrors)

    def mirrors_by_rtt(self, mirrors: list[dict]) -> list[dict]:
        """Policy mirrors sorted fastest-first from this host."""
        src_continent = self._network.host(self.hostname).continent
        return sorted(
            mirrors,
            key=lambda m: self._network.latency.base_rtt(src_continent,
                                                         m["continent"]),
        )

    def _read_quorum(self, repo_id: str, mirrors: list[dict]) -> dict:
        """Contact the fastest f+1 mirrors, widening until the enclave
        accepts a quorum (section 4.5)."""
        config = self.repo_config(repo_id)
        if list(mirrors) == list(config.mirrors):
            ordered = list(config.ordered_mirrors)
        else:  # caller supplied a custom mirror set (tests)
            ordered = self.mirrors_by_rtt(mirrors)
        needed = (len(ordered) - 1) // 2 + 1
        responses: list[tuple[str, bytes]] = []
        cursor = needed
        batch = ordered[:needed]
        responses.extend(self._gather_indexes(batch))
        while True:
            try:
                return self._enclave.ecall("evaluate_quorum", repo_id,
                                           responses)
            except QuorumError:
                if cursor >= len(ordered):
                    raise
                responses.extend(self._gather_indexes([ordered[cursor]]))
                cursor += 1

    def _gather_indexes(self, mirrors: list[dict]) -> list[tuple[str, bytes]]:
        requests = [Request(m["hostname"], "get_index") for m in mirrors]
        responses = self._network.gather(self.hostname, requests)
        collected = []
        for mirror, response in zip(mirrors, responses):
            if isinstance(response, NetworkError):
                continue
            collected.append((mirror["hostname"], response.payload))
        return collected

    def _download_package(self, mirrors: list[dict], name: str,
                          expected: dict) -> bytes:
        """Packages come from any single mirror; the quorum-validated index
        pins their hash, so corrupt downloads are detected immediately and
        retried on the next-fastest mirror."""
        ordered = self.mirrors_by_rtt(mirrors)
        last_error: Exception | str | None = None
        for mirror in ordered:
            try:
                response = self._network.call(
                    self.hostname, Request(mirror["hostname"], "get_package",
                                           payload=name)
                )
            except NetworkError as exc:
                last_error = exc
                continue
            blob = response.payload
            if not matches_expected(blob, expected):
                last_error = (
                    f"mirror {mirror['hostname']} served a blob that does "
                    "not match the quorum-validated index"
                )
                continue
            return blob
        raise NetworkError(
            f"package {name!r} unavailable from every policy mirror: {last_error}"
        )

    def _download_parallel(self, mirrors: list[dict], names: list[str],
                           expected: dict, width: int) -> dict[str, bytes]:
        """Fetch packages in concurrent waves, round-robining mirrors.

        Each wave issues up to ``width`` requests at once via the
        transport's schedule-backed gather (the clock advances by the
        slowest transfer of the wave, not the sum; concurrent payloads
        share the host's downlink with exact max-min accounting).  Failed
        or corrupt responses fall back to the verified sequential path.
        """
        ordered = self.mirrors_by_rtt(mirrors)
        fetched: dict[str, bytes] = {}
        pending = list(names)
        while pending:
            wave, pending = pending[:width], pending[width:]
            requests = [
                Request(ordered[i % len(ordered)]["hostname"], "get_package",
                        payload=name)
                for i, name in enumerate(wave)
            ]
            responses = self._network.gather(self.hostname, requests)
            for name, response in zip(wave, responses):
                want = expected[name]
                if (not isinstance(response, NetworkError)
                        and matches_expected(response.payload, want)):
                    fetched[name] = response.payload
                else:
                    fetched[name] = self._download_package(mirrors, name, want)
        return fetched

    # -- serving -----------------------------------------------------------------------------

    def serve_package(self, repo_id: str, name: str) -> bytes:
        """Serve a sanitized package from cache, re-verified in-enclave."""
        blob = self.cache.get_sanitized(repo_id, name)
        if blob is None:
            raise NetworkError(f"package {name!r} not available (not sanitized)")
        self._advance_disk_read(len(blob))
        self._enclave.ecall("check_cached_blob", repo_id, name, blob)
        return blob

    def get_index_bytes(self, repo_id: str) -> bytes:
        return self._enclave.ecall("sanitized_index_bytes", repo_id)

    # -- serving-induced re-sanitization --------------------------------------

    def note_sanitize_cost(self, repo_id: str, name: str, size_bytes: int,
                           duration: float):
        """Record one measured sanitize duration (the refresh paths call
        this) so a later re-sanitize of the same package is charged its
        real cost rather than a rate estimate."""
        self._sanitize_cost[(repo_id, name)] = duration
        self._sanitize_rate_s += duration
        self._sanitize_rate_bytes += size_bytes

    def _estimate_sanitize_cost(self, repo_id: str, name: str,
                                size_bytes: int) -> float:
        known = self._sanitize_cost.get((repo_id, name))
        if known is not None:
            return known
        if self._sanitize_rate_bytes > 0:
            return size_bytes * (self._sanitize_rate_s
                                 / self._sanitize_rate_bytes)
        return 0.0

    def _queue_resanitize(self, repo_id: str, name: str, blob: bytes,
                          at: float) -> bool:
        key = (repo_id, name)
        if key in self._resanitize_queued:
            return False
        self._resanitize_queued.add(key)
        self._resanitize_jobs.append(ResanitizeJob(
            repo_id=repo_id,
            name=name,
            queued_at=at,
            duration=self._estimate_sanitize_cost(repo_id, name, len(blob)),
            size_bytes=len(blob),
            blob=blob,
        ))
        return True

    def take_resanitize_jobs(self) -> list[ResanitizeJob]:
        """Drain the pending re-sanitize queue (FIFO by serve time).

        The orchestrated refresh calls this at round start and places the
        jobs on the serial enclave channel ahead of the round's own
        sanitize work; once drained, a package may queue again."""
        jobs = self._resanitize_jobs
        self._resanitize_jobs = []
        for job in jobs:
            self._resanitize_queued.discard((job.repo_id, job.name))
        return jobs

    def complete_resanitize(self, job: ResanitizeJob):
        """Restore a re-sanitized blob into the disk cache."""
        self.cache.put_sanitized(job.repo_id, job.name, job.blob)

    # -- versioned publications (multi-round replay) -------------------------

    def record_publication(self, repo_id: str,
                           available_at: float) -> Publication:
        """Freeze the repository's current served state at a plan instant.

        Captures the signed sanitized index plus the sanitized blobs it
        pins (sharing unchanged blob objects with the previous
        publication; reads bypass recency so snapshotting does not skew
        eviction).  ``available_at`` is clamped monotonic: a round that
        finished out of order can never publish *before* its predecessor.

        The log is bounded: once it exceeds ``publication_retention``
        (default ``delta_log_depth + 1`` — every base within the delta
        depth bound stays diffable), the oldest publications are pruned
        together with the chunk manifests only they pinned, and clients
        based that far back are answered with counted full pulls.
        """
        from repro.archive.index import parse_index_cached

        log = self._publications.setdefault(repo_id, [])
        index_bytes = self._enclave.ecall("sanitized_index_bytes", repo_id)
        index = parse_index_cached(index_bytes)
        previous = log[-1] if log else None
        blobs: dict[str, bytes] = {}
        for name, entry in index.entries.items():
            if previous is not None:
                kept = previous.blobs.get(name)
                if kept is not None and previous.entries.get(name) == \
                        (entry.size, entry.sha256):
                    blobs[name] = kept
                    continue
            blob = self.cache.peek_sanitized(repo_id, name)
            if blob is not None and len(blob) == entry.size \
                    and sha256_hex(blob) == entry.sha256:
                blobs[name] = blob
        if self.delta_log_depth > 0:
            # Retain chunk manifests of everything this publication pins:
            # the next round's delta serving diffs against these even
            # after the blobs themselves age out of the cache.
            for name, blob in blobs.items():
                self._ensure_manifest(index.entries[name].sha256, blob)
        if previous is not None:
            available_at = max(available_at, previous.available_at)
        publication = Publication(
            available_at=available_at,
            serial=index.serial,
            index_bytes=index_bytes,
            entries={name: (e.size, e.sha256)
                     for name, e in index.entries.items()},
            blobs=blobs,
        )
        log.append(publication)
        self._prune_publications(repo_id, log)
        return publication

    def _prune_publications(self, repo_id: str, log: list[Publication]):
        """Enforce the retention bound on one repository's log."""
        retention = self.publication_retention
        if retention is None:
            retention = self.delta_log_depth + 1
        if retention < 1:
            retention = 1
        while len(log) > retention:
            dropped = log.pop(0)
            if dropped.serial > self._pruned_through.get(repo_id, -1):
                self._pruned_through[repo_id] = dropped.serial
            self._publication_indexes.pop((repo_id, dropped.serial), None)
            retained = {sha for publication in log
                        for _, sha in publication.entries.values()}
            for _, sha in dropped.entries.values():
                if sha not in retained:
                    self.cache.drop_chunk_manifest(sha)
                    self._pruned_manifest_shas.add(sha)

    def publication_at(self, repo_id: str,
                       as_of: float) -> Publication | None:
        """Newest recorded publication available at plan time ``as_of``."""
        log = self._publications.get(repo_id, [])
        best = None
        for publication in log:
            if publication.available_at <= as_of:
                best = publication
            else:
                break
        if best is None and log and repo_id in self._pruned_through:
            # Every publication as old as ``as_of`` has been pruned: a
            # real repository deleted those bytes, so laggards get the
            # oldest copy that still exists.
            return log[0]
        return best

    def publications(self, repo_id: str) -> list[Publication]:
        return list(self._publications.get(repo_id, []))

    def index_bytes_at(self, repo_id: str, as_of: float) -> bytes:
        publication = self.publication_at(repo_id, as_of)
        if publication is None:
            raise NetworkError(
                f"repository {repo_id!r} has no published index at "
                f"t={as_of:.3f}"
            )
        return publication.index_bytes

    def serve_package_at(self, repo_id: str, name: str,
                         as_of: float) -> bytes:
        """Serve a sanitized package as of a plan instant.

        Reads *through the disk cache* first — serving is the cache's hot
        traffic, and its hit pattern under concurrent refresh churn is
        what the LRU/LRU-2 ablation measures — and only falls back to the
        publication's captured copy when the cached blob was evicted or
        replaced by a later round (``serve_fallbacks`` counts these, and
        each one queues a re-sanitize job the next refresh round pays for
        on the enclave channel).  Either path is verified against the
        publication's signed index, so the served bytes are identical
        regardless of cache state.
        """
        publication = self.publication_at(repo_id, as_of)
        if publication is None:
            raise NetworkError(
                f"repository {repo_id!r} has no publication at t={as_of:.3f}"
            )
        expected = publication.entries.get(name)
        if expected is None:
            raise NetworkError(
                f"package {name!r} not in the t="
                f"{publication.available_at:.3f} publication"
            )
        return self._publication_blob(repo_id, name, publication, expected,
                                      at=as_of)

    def _publication_blob(self, repo_id: str, name: str,
                          publication: Publication,
                          expected: tuple[int, str],
                          at: float | None = None) -> bytes:
        """Cache-first publication serve (no clock advance: as_of-stamped
        serves belong to a replay plan whose driver advances the scenario
        clock exactly once, at the end — the transfer itself is accounted
        on the plan schedule).  A fallback serve queues a re-sanitize job
        stamped with the serve instant ``at`` (live serves use the clock).
        """
        cached = self.cache.get_sanitized(repo_id, name)
        if cached is not None and len(cached) == expected[0] \
                and sha256_hex(cached) == expected[1]:
            self.serve_cache_hits += 1
            return cached
        blob = publication.blobs.get(name)
        if blob is None:
            raise NetworkError(
                f"package {name!r} not available from the t="
                f"{publication.available_at:.3f} publication"
            )
        if len(blob) != expected[0] or sha256_hex(blob) != expected[1]:
            raise NetworkError(
                f"published package {name!r} does not match its signed index"
            )
        if at is None:
            at = self._network.clock.now()
        if not self.resanitize_serves:
            self.serve_fallbacks += 1
        elif self._queue_resanitize(repo_id, name, blob, at):
            self.serve_fallbacks += 1
        return blob

    # -- delta serving (publication-log diffs) --------------------------------

    def _ensure_manifest(self, sha256: str, blob: bytes):
        """Retain the chunk manifest of a served/published blob so it can
        act as a delta base next round (idempotent, fails open)."""
        if self.cache.has_chunk_manifest(sha256):
            return
        from repro.core.delta import blob_manifest
        from repro.util.errors import DeltaError, PackagingError
        try:
            self.cache.put_chunk_manifest(sha256, blob_manifest(blob))
        except (DeltaError, PackagingError):
            pass  # unmanifestable blob: delta requests fall back to full

    def _delta_target(self, repo_id: str,
                      as_of: float | None) -> Publication | None:
        """The publication a delta request resolves against.

        Time-stamped requests see the newest publication at ``as_of``
        (raising like the full path when none exists yet); live requests
        see the newest publication overall, or ``None`` when the
        repository has never recorded one (delta serving is publication-
        backed — callers then fall back to the live enclave state).
        """
        if as_of is not None:
            publication = self.publication_at(repo_id, as_of)
            if publication is None:
                raise NetworkError(
                    f"repository {repo_id!r} has no publication at "
                    f"t={as_of:.3f}"
                )
            return publication
        log = self._publications.get(repo_id, [])
        return log[-1] if log else None

    def _publication_index(self, repo_id: str, position: int):
        """Parsed index of one publication (cached by serial — stable
        under retention pruning, unlike log positions; same-serial
        publications carry byte-identical index bytes)."""
        from repro.archive.index import parse_index_cached

        publication = self._publications[repo_id][position]
        key = (repo_id, publication.serial)
        cached = self._publication_indexes.get(key)
        if cached is None:
            cached = parse_index_cached(publication.index_bytes)
            self._publication_indexes[key] = cached
        return cached

    def _count_fallback(self, counters: dict[str, int], reason: str):
        counters[reason] = counters.get(reason, 0) + 1

    def index_delta_at(self, repo_id: str, base_serial: int,
                       as_of: float | None = None) -> bytes:
        """Serve a signed index diff from ``base_serial`` to the newest
        publication at ``as_of`` (see :mod:`repro.core.delta` for the
        envelope kinds and fallback rules)."""
        from repro.core.delta import (
            build_index_delta,
            index_body_sha256,
            index_full_envelope,
            index_unchanged_envelope,
        )

        target = self._delta_target(repo_id, as_of)
        if target is None:
            blob = self._enclave.ecall("sanitized_index_bytes", repo_id)
            self._count_fallback(self.delta_index_fallbacks, "no-publication")
            return index_full_envelope("no-publication", blob)
        if self.delta_log_depth <= 0:
            self._count_fallback(self.delta_index_fallbacks, "disabled")
            return index_full_envelope("disabled", target.index_bytes)
        if target.serial == base_serial:
            self.delta_index_unchanged += 1
            envelope = index_unchanged_envelope(
                base_serial, index_body_sha256(target.index_bytes))
            self.delta_bytes_saved += max(
                0, len(target.index_bytes) - len(envelope))
            return envelope
        log = self._publications[repo_id]
        target_pos = next(i for i in range(len(log) - 1, -1, -1)
                          if log[i] is target)
        base_pos = next((i for i in range(target_pos, -1, -1)
                         if log[i].serial == base_serial), None)
        if base_pos is None:
            pruned = self._pruned_through.get(repo_id)
            if pruned is not None and base_serial <= pruned:
                # The base aged out of the bounded publication log.  When
                # even an unbounded log would have answered with a full
                # pull (the hypothetical gap exceeds the depth bound),
                # keep the historical "depth" reason; otherwise the
                # retention knob itself forced the full pull.
                self.retention_full_pulls += 1
                reason = ("depth" if target_pos + 1 > self.delta_log_depth
                          else "retention")
            else:
                reason = "unknown-base"
            self._count_fallback(self.delta_index_fallbacks, reason)
            return index_full_envelope(reason, target.index_bytes)
        if target_pos - base_pos > self.delta_log_depth:
            self._count_fallback(self.delta_index_fallbacks, "depth")
            return index_full_envelope("depth", target.index_bytes)
        memo_key = (repo_id, base_serial, target.serial)
        envelope = self._index_delta_memo.get(memo_key)
        if envelope is None:
            envelope = build_index_delta(
                self._publication_index(repo_id, base_pos),
                self._publication_index(repo_id, target_pos),
            )
            self._index_delta_memo[memo_key] = envelope
        if len(envelope) >= len(target.index_bytes):
            self._count_fallback(self.delta_index_fallbacks, "not-smaller")
            return index_full_envelope("not-smaller", target.index_bytes)
        self.delta_index_serves += 1
        self.delta_bytes_saved += len(target.index_bytes) - len(envelope)
        return envelope

    def package_delta_at(self, repo_id: str, name: str, base_sha256: str,
                         as_of: float | None = None) -> bytes:
        """Serve one package as a chunk delta against the client's cached
        base (identified by its SHA-256), or as a tagged full blob when no
        usable delta exists."""
        from repro.core.delta import build_package_delta, package_full_envelope
        from repro.util.errors import DeltaError

        target = self._delta_target(repo_id, as_of)
        if target is None:
            blob = self.serve_package(repo_id, name)
            self._count_fallback(self.delta_package_fallbacks,
                                 "no-publication")
            return package_full_envelope("no-publication", blob)
        expected = target.entries.get(name)
        if expected is None:
            raise NetworkError(
                f"package {name!r} not in the t="
                f"{target.available_at:.3f} publication"
            )
        blob = self._publication_blob(repo_id, name, target, expected,
                                      at=as_of)
        new_sha = expected[1]
        if self.delta_log_depth <= 0:
            self._count_fallback(self.delta_package_fallbacks, "disabled")
            return package_full_envelope("disabled", blob)
        # This serve's target is the fleet's next-round base: retain its
        # manifest now, whatever this request ends up being served as.
        self._ensure_manifest(new_sha, blob)
        if base_sha256 == new_sha:
            self._count_fallback(self.delta_package_fallbacks, "same")
            return package_full_envelope("same", blob)
        manifest = self.cache.get_chunk_manifest(base_sha256)
        if manifest is None:
            if base_sha256 in self._pruned_manifest_shas:
                self.retention_full_pulls += 1
            self._count_fallback(self.delta_package_fallbacks, "unknown-base")
            return package_full_envelope("unknown-base", blob)
        memo_key = (base_sha256, new_sha)
        if memo_key in self._package_delta_memo:
            envelope = self._package_delta_memo[memo_key]
        else:
            try:
                envelope = build_package_delta(manifest, blob)
            except DeltaError:
                envelope = None
            self._package_delta_memo[memo_key] = envelope
        if envelope is None:
            self._count_fallback(self.delta_package_fallbacks, "not-smaller")
            return package_full_envelope("not-smaller", blob)
        self.delta_package_serves += 1
        self.delta_bytes_saved += len(blob) - len(envelope)
        return envelope

    # -- restart & freshness ---------------------------------------------------------------------

    def _seal_state(self):
        state = self._enclave.ecall("export_state")
        sealed = self._freshness.persist(self._enclave.sealing_key(), state)
        self.cache.disk.write_file(SEALED_STATE_PATH, sealed)

    def restart(self):
        """Stop the enclave and bring up a fresh one from sealed state.

        Raises :class:`RollbackError` if the on-disk sealed state is stale
        or tampered (the adversary rolled the cache back).
        """
        self._repo_configs.clear()
        self._enclave.destroy()
        self._enclave = Enclave(self._cpu, TsrProgram, key_bits=self._key_bits)
        if not self.cache.disk.isfile(SEALED_STATE_PATH):
            raise RollbackError("sealed state missing after restart")
        sealed = self.cache.disk.read_file(SEALED_STATE_PATH)
        state = self._freshness.restore(self._enclave.sealing_key(), sealed)
        self._enclave.ecall("restore_state", state)

    # -- time accounting ---------------------------------------------------------------------------

    def _advance_disk_read(self, size: int):
        self._network.clock.advance(
            LOCAL_DISK_SEEK_S + size / LOCAL_DISK_BANDWIDTH_BYTES_PER_S
        )

    def simulated_sanitize_duration(self, result: SanitizationResult) -> float:
        """Measured native sanitize time mapped onto the simulated clock
        (EPC-scaled when SGX is on); does not advance the clock."""
        native = result.timings.total
        if not self.sgx_enabled:
            return native
        return self.epc_model.simulated_duration(
            native, result.working_set_bytes
        )

    def _simulated_sanitize_time(self, result: SanitizationResult) -> float:
        duration = self.simulated_sanitize_duration(result)
        self._network.clock.advance(duration)
        return duration
