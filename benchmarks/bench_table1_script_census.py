"""Table 1 — package census: how many packages carry (un)safe scripts.

Paper (Alpine main + community, full scale):

    total 11,581 | without scripts 11,303 | safe scripts 53 | unsafe 225

We regenerate the census by running the real classifier over the synthetic
population and compare *proportions* (the population is scaled).
"""

from repro.bench.report import PaperTable, record_table
from repro.scripts.classify import classify_package_scripts
from repro.workload.generator import PAPER_TOTALS


def _census(packages):
    without = safe = unsafe = 0
    for package in packages:
        if not package.scripts:
            without += 1
            continue
        profile = classify_package_scripts(package.scripts)
        if profile.safe:
            safe += 1
        else:
            unsafe += 1
    return without, safe, unsafe


def test_table1_census(census_workload, benchmark):
    packages = census_workload.packages
    without, safe, unsafe = benchmark.pedantic(
        _census, args=(packages,), rounds=1, iterations=1
    )
    total = len(packages)

    table = PaperTable(
        experiment="Table 1",
        title="Packages with and without custom configuration scripts",
        columns=["row", "paper (n / %)", "measured (n / %)"],
    )
    paper_total = PAPER_TOTALS["packages"]

    def fmt(n, whole):
        return f"{n} / {100 * n / whole:.2f}%"

    table.add_row("Total", fmt(paper_total, paper_total), fmt(total, total))
    table.add_row("Without scripts", fmt(11303, paper_total), fmt(without, total))
    table.add_row("With safe scripts", fmt(53, paper_total), fmt(safe, total))
    table.add_row("With unsafe scripts", fmt(225, paper_total), fmt(unsafe, total))
    table.note(f"population scaled to {total} packages; proportions compared")
    record_table(table)

    # Shape assertions: scriptless dominates; unsafe outnumber safe ~4:1.
    assert without / total > 0.9
    assert unsafe > safe
    assert without + safe + unsafe == total
