"""Shared fixtures for the benchmark suite.

Scale knobs:

* ``REPRO_BENCH_SCALE`` — fraction of the paper's 11,581-package Alpine
  repository to generate with real content (default 0.02 ≈ 230 packages).
  Proportions (script census, size distribution) are scale-invariant.
* TSR signing keys are RSA-2048 so per-file signatures are the paper's
  256 bytes; substrate keys are RSA-1024 for speed.

Every bench records a paper-vs-measured table; they are printed in the
terminal summary and written to ``benchmarks/results/``.
"""

from __future__ import annotations

import cProfile
import io
import os
import pathlib
import pstats
import sys

import pytest

from repro.bench.report import recorded_tables
from repro.workload.generator import generate_workload
from repro.workload.scenario import build_scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
CENSUS_SCALE = float(os.environ.get("REPRO_CENSUS_SCALE", "0.25"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: (label, rendered stats) collected by ``maybe_profile``, emitted in the
#: terminal summary after the paper tables.
_PROFILES: list[tuple[str, str]] = []


def pytest_addoption(parser):
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="profile benchmark bodies with cProfile and print the top-20 "
             "functions by cumulative time in the terminal summary",
    )


@pytest.fixture
def maybe_profile(request):
    """Wrapper factory: ``maybe_profile(label, fn)`` returns ``fn``
    unchanged normally, or — when the suite runs with ``--profile`` — a
    wrapper that runs ``fn`` under cProfile and records the top-20
    cumulative table for the terminal summary.  The profiler is enabled
    only *inside* the call so it composes with pytest-benchmark's
    instrumentation pausing (timings are inflated by profiler overhead;
    host-time ceiling asserts are relaxed via ``maybe_profile.enabled``)."""
    enabled = request.config.getoption("--profile")

    def _wrap(label: str, fn):
        if not enabled:
            return fn

        def profiled(*args, **kwargs):
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.disable()
                out = io.StringIO()
                pstats.Stats(profiler, stream=out) \
                    .sort_stats("cumulative").print_stats(20)
                _PROFILES.append((label, out.getvalue()))

        return profiled

    _wrap.enabled = enabled
    return _wrap


def peak_rss_bytes() -> int | None:
    """Peak resident set size, in bytes (None if unavailable).

    ``ru_maxrss`` is the lifetime high-water mark — coarse (it never
    decreases across tests) but exactly the number a memory cap cares
    about.  The parallel-host benches fan work out to ``REPRO_WORKERS``
    child processes, so the max over RUSAGE_SELF and RUSAGE_CHILDREN is
    reported: the biggest single process, which is what an admission
    controller sizing one box would provision for.  Linux reports KiB,
    macOS bytes.
    """
    try:
        import resource
    except ImportError:        # non-POSIX: no RSS source baked in
        return None
    usage = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    if usage <= 0:
        return None
    return int(usage) if sys.platform == "darwin" else int(usage) * 1024


@pytest.fixture(autouse=True)
def record_peak_rss(request):
    """Stamp ``peak_rss_bytes`` into every benchmark's ``extra_info`` so
    each ``BENCH_*.json`` artifact carries the memory high-water mark
    alongside its timings."""
    yield
    benchmark = getattr(request.node, "funcargs", {}).get("benchmark")
    if benchmark is None:
        return
    peak = peak_rss_bytes()
    if peak is not None:
        benchmark.extra_info["peak_rss_bytes"] = peak


@pytest.fixture(scope="session")
def census_workload():
    """Metadata-only workload for script censuses (Tables 1-2): larger
    scale, no file contents."""
    return generate_workload(scale=CENSUS_SCALE, seed=2020, with_content=False)


@pytest.fixture(scope="session")
def content_workload():
    """Content-bearing workload for timing/size experiments."""
    return generate_workload(scale=BENCH_SCALE, seed=2020, with_content=True)


@pytest.fixture(scope="session")
def content_scenario(content_workload):
    """Full deployment over the content workload, first refresh done.

    RSA-2048 TSR key -> 256-byte per-file signatures, as in the paper.
    """
    return build_scenario(workload=content_workload, key_bits=1024,
                          tsr_key_bits=2048)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if _PROFILES:
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 74)
        terminalreporter.write_line("CPROFILE HOTSPOTS (--profile, top 20 by "
                                    "cumulative time)")
        terminalreporter.write_line("=" * 74)
        for label, rendered in _PROFILES:
            terminalreporter.write_line("")
            terminalreporter.write_line(f"-- {label} --")
            for line in rendered.splitlines():
                terminalreporter.write_line(line.rstrip())
    tables = recorded_tables()
    if not tables:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 74)
    terminalreporter.write_line("PAPER-VS-MEASURED TABLES")
    terminalreporter.write_line("=" * 74)
    for table in tables:
        rendered = table.render()
        terminalreporter.write_line("")
        for line in rendered.splitlines():
            terminalreporter.write_line(line)
        slug = table.experiment.lower().replace(" ", "_").replace(".", "")
        (RESULTS_DIR / f"{slug}.txt").write_text(rendered + "\n")
