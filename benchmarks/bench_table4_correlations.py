"""Table 4 — Spearman correlations between package properties and the
proportional time contribution of sanitization phases.

Paper (ρ values):

                        number of files   package size
    archive, compress        .46              .61
    check integrity         -.62             -.93
    generate signatures      .69              .03
    modify scripts          -.27             -.33
"""

from scipy import stats as scipy_stats

from repro.bench.report import PaperTable, record_table

_PAPER_RHO = {
    "archive": (0.46, 0.61),
    "verify": (-0.62, -0.93),
    "sign": (0.69, 0.03),
    "scripts": (-0.27, -0.33),
}


def _correlations(results):
    files = [r.file_count for r in results]
    sizes = [r.original_size for r in results]
    rho = {}
    for phase in ("archive", "verify", "sign", "scripts"):
        proportions = [r.timings.proportions()[phase] for r in results]
        rho_files = scipy_stats.spearmanr(files, proportions).statistic
        rho_sizes = scipy_stats.spearmanr(sizes, proportions).statistic
        rho[phase] = (rho_files, rho_sizes)
    return rho


def test_table4_phase_correlations(content_scenario, benchmark):
    results = content_scenario.refresh_report.results
    rho = benchmark.pedantic(_correlations, args=(results,),
                             rounds=1, iterations=1)

    table = PaperTable(
        experiment="Table 4",
        title="Spearman rho: package properties vs phase time proportion",
        columns=["phase", "paper rho(files)", "measured rho(files)",
                 "paper rho(size)", "measured rho(size)"],
    )
    labels = {
        "archive": "archive, compress",
        "verify": "check integrity",
        "sign": "generate signatures",
        "scripts": "modify scripts",
    }
    for phase, (paper_files, paper_size) in _PAPER_RHO.items():
        measured_files, measured_size = rho[phase]
        table.add_row(labels[phase], f"{paper_files:+.2f}",
                      f"{measured_files:+.2f}", f"{paper_size:+.2f}",
                      f"{measured_size:+.2f}")
    table.note(
        "deviation: in CPython, RSA signing costs a larger share than in "
        "the paper's Rust prototype, so the *archive* share anti-correlates "
        "with file count here; the narrative-carrying signs (signing "
        "dominates many-file packages, integrity checking and script "
        "rewriting fade) reproduce — see EXPERIMENTS.md"
    )
    record_table(table)

    # Shape assertions on the signs that carry the paper's narrative:
    # signature generation dominates as file count grows; the integrity
    # check's and script rewriting's shares shrink as packages grow.
    assert rho["sign"][0] > 0.5
    assert rho["verify"][0] < -0.3
    assert rho["scripts"][0] < -0.2
    assert rho["scripts"][1] < -0.2
