"""Shared utilities: error hierarchy, a mini-YAML parser, and statistics helpers."""

from repro.util.errors import (
    ReproError,
    IntegrityError,
    SignatureError,
    PolicyError,
    QuorumError,
    PackagingError,
    ScriptError,
    SealingError,
    RollbackError,
    AttestationError,
)
from repro.util.miniyaml import parse_yaml, dump_yaml
from repro.util.stats import percentile, trimmed_mean, summarize_latencies

__all__ = [
    "ReproError",
    "IntegrityError",
    "SignatureError",
    "PolicyError",
    "QuorumError",
    "PackagingError",
    "ScriptError",
    "SealingError",
    "RollbackError",
    "AttestationError",
    "parse_yaml",
    "dump_yaml",
    "percentile",
    "trimmed_mean",
    "summarize_latencies",
]
