"""Minimal certificate chains for mirror endpoint authentication.

Policies pin a ``certificate_chain`` per mirror (paper Listing 1).  A
certificate here binds a subject name (hostname) to an RSA public key and is
signed by an issuer key.  Chains are verified leaf-to-root against a pinned
root, which is all TSR needs to authenticate a TLS-like endpoint in the
simulated network.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto.pem import pem_decode, pem_encode
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.util.errors import SignatureError


@dataclass(frozen=True)
class Certificate:
    """A subject-name-to-public-key binding signed by an issuer."""

    subject: str
    issuer: str
    public_key: RsaPublicKey
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding (canonical JSON of the bound fields)."""
        return json.dumps(
            {
                "subject": self.subject,
                "issuer": self.issuer,
                "n": self.public_key.n,
                "e": self.public_key.e,
            },
            sort_keys=True,
        ).encode("ascii")

    def to_pem(self) -> str:
        payload = json.dumps(
            {
                "subject": self.subject,
                "issuer": self.issuer,
                "n": self.public_key.n,
                "e": self.public_key.e,
                "signature": self.signature.hex(),
            },
            sort_keys=True,
        ).encode("ascii")
        return pem_encode("CERTIFICATE", payload)

    @classmethod
    def from_pem(cls, pem: str) -> "Certificate":
        label, body = pem_decode(pem)
        if label != "CERTIFICATE":
            raise SignatureError(f"expected CERTIFICATE PEM, got {label}")
        try:
            fields = json.loads(body)
            return cls(
                subject=fields["subject"],
                issuer=fields["issuer"],
                public_key=RsaPublicKey(n=fields["n"], e=fields["e"]),
                signature=bytes.fromhex(fields["signature"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise SignatureError(f"malformed certificate body: {exc}") from exc


class CertificateAuthority:
    """Issues certificates; the root of a (usually two-level) chain."""

    def __init__(self, name: str, key_bits: int = 1024, seed: int | None = None):
        self.name = name
        self._key = generate_keypair(key_bits, seed=seed)
        self.certificate = self._self_signed()

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public_key

    def _self_signed(self) -> Certificate:
        unsigned = Certificate(
            subject=self.name,
            issuer=self.name,
            public_key=self._key.public_key,
            signature=b"",
        )
        return Certificate(
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            public_key=unsigned.public_key,
            signature=self._key.sign(unsigned.tbs_bytes()),
        )

    def issue(self, subject: str, public_key: RsaPublicKey) -> Certificate:
        """Sign a leaf certificate binding ``subject`` to ``public_key``."""
        unsigned = Certificate(
            subject=subject, issuer=self.name, public_key=public_key, signature=b""
        )
        return Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            signature=self._key.sign(unsigned.tbs_bytes()),
        )

    def issue_endpoint(self, subject: str, key_bits: int = 1024,
                       seed: int | None = None) -> tuple[RsaPrivateKey, Certificate]:
        """Convenience: generate an endpoint key and certify it."""
        key = generate_keypair(key_bits, seed=seed)
        return key, self.issue(subject, key.public_key)


def verify_chain(chain: list[Certificate], trusted_root: RsaPublicKey,
                 expected_subject: str | None = None) -> bool:
    """Verify a leaf-first chain against a pinned root key.

    Each certificate must be signed by the next one's key; the last must be
    signed by ``trusted_root``.  If ``expected_subject`` is given the leaf
    subject must match (hostname pinning).
    """
    if not chain:
        return False
    if expected_subject is not None and chain[0].subject != expected_subject:
        return False
    for cert, issuer in zip(chain, chain[1:]):
        if cert.issuer != issuer.subject:
            return False
        if not issuer.public_key.verify(cert.tbs_bytes(), cert.signature):
            return False
    root = chain[-1]
    return trusted_root.verify(root.tbs_bytes(), root.signature)
