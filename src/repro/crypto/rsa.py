"""RSA signatures: keygen, PKCS#1 v1.5 sign/verify, serialization.

This mirrors what Alpine Linux's ``abuild-sign`` produces: RSA keys whose
SHA-256 PKCS#1 v1.5 signatures are ``modulus_size`` bytes long (256 bytes for
RSA-2048).  Signing uses the CRT optimization; verification is a single
public-exponent exponentiation.

Keys serialize to a PEM-like container (see :mod:`repro.crypto.pem`) so that
security policies can embed them exactly as the paper's Listing 1 shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashes import sha256_bytes
from repro.crypto.pem import pem_decode, pem_encode
from repro.crypto.primes import generate_prime
from repro.util.errors import SignatureError

PUBLIC_EXPONENT = 65537

# DER prefix for a SHA-256 DigestInfo, per RFC 8017 section 9.2.
_SHA256_DIGEST_INFO_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")


def _i2osp(value: int, length: int) -> bytes:
    """Integer-to-octet-string (big endian, fixed length)."""
    return value.to_bytes(length, "big")


def _os2ip(data: bytes) -> int:
    """Octet-string-to-integer (big endian)."""
    return int.from_bytes(data, "big")


def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of a SHA-256 digest (RFC 8017 section 9.2)."""
    t = _SHA256_DIGEST_INFO_PREFIX + sha256_bytes(message)
    if em_len < len(t) + 11:
        raise SignatureError("intended encoded message length too short")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


@dataclass(frozen=True)
class RsaPublicKey:
    """Public portion of an RSA key; verifies PKCS#1 v1.5 signatures."""

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        """Length of the modulus (and of every signature) in bytes."""
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` is valid for ``message``."""
        if len(signature) != self.size_bytes:
            return False
        s = _os2ip(signature)
        if s >= self.n:
            return False
        em = _i2osp(pow(s, self.e, self.n), self.size_bytes)
        try:
            expected = _emsa_pkcs1_v15(message, self.size_bytes)
        except SignatureError:
            return False
        return em == expected

    def fingerprint(self) -> str:
        """Short stable identifier used in policies and IMA key rings."""
        material = self.n.to_bytes(self.size_bytes, "big") + self.e.to_bytes(4, "big")
        return sha256_bytes(material)[:8].hex()

    def to_pem(self) -> str:
        body = _encode_integers([self.n, self.e])
        return pem_encode("PUBLIC KEY", body)

    @classmethod
    def from_pem(cls, pem: str) -> "RsaPublicKey":
        label, body = pem_decode(pem)
        if label != "PUBLIC KEY":
            raise SignatureError(f"expected PUBLIC KEY PEM, got {label}")
        n, e = _decode_integers(body, 2)
        return cls(n=n, e=e)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def sign(self, message: bytes) -> bytes:
        """PKCS#1 v1.5 SHA-256 signature, ``size_bytes`` long."""
        em = _emsa_pkcs1_v15(message, self.size_bytes)
        m = _os2ip(em)
        # CRT: two half-size exponentiations instead of one full-size.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = pow(self.q, -1, self.p)
        m1 = pow(m, dp, self.p)
        m2 = pow(m, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        s = m2 + h * self.q
        signature = _i2osp(s, self.size_bytes)
        # Sanity check guards against fault attacks corrupting the CRT path.
        if not self.public_key.verify(message, signature):
            raise SignatureError("self-check of freshly produced signature failed")
        return signature

    def to_pem(self) -> str:
        body = _encode_integers([self.n, self.e, self.d, self.p, self.q])
        return pem_encode("RSA PRIVATE KEY", body)

    @classmethod
    def from_pem(cls, pem: str) -> "RsaPrivateKey":
        label, body = pem_decode(pem)
        if label != "RSA PRIVATE KEY":
            raise SignatureError(f"expected RSA PRIVATE KEY PEM, got {label}")
        n, e, d, p, q = _decode_integers(body, 5)
        return cls(n=n, e=e, d=d, p=p, q=q)


def generate_keypair(bits: int = 2048, seed: int | None = None) -> RsaPrivateKey:
    """Generate an RSA keypair.

    ``bits`` is the modulus size; 2048 yields the paper's 256-byte
    signatures.  ``seed`` makes generation deterministic, which the test
    suite and the workload generator use for reproducibility.  Production
    deployments (the real TSR) would of course use an entropy-backed RNG —
    inside the enclave simulator the seed is derived from the enclave
    identity, preserving the "key never leaves the enclave" property.
    """
    if bits < 512:
        raise ValueError(f"RSA modulus below 512 bits is not supported: {bits}")
    if bits % 2:
        raise ValueError("RSA modulus size must be even")
    rng = random.Random(seed) if seed is not None else random.SystemRandom()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(PUBLIC_EXPONENT, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; re-draw primes
        n = p * q
        if n.bit_length() != bits:
            continue
        return RsaPrivateKey(n=n, e=PUBLIC_EXPONENT, d=d, p=p, q=q)


def _encode_integers(values: list[int]) -> bytes:
    """Length-prefixed big-endian integer list (a DER-lite container)."""
    chunks = []
    for value in values:
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        chunks.append(len(raw).to_bytes(4, "big"))
        chunks.append(raw)
    return b"".join(chunks)


def _decode_integers(body: bytes, expected: int) -> list[int]:
    values = []
    offset = 0
    while offset < len(body):
        if offset + 4 > len(body):
            raise SignatureError("truncated key body")
        length = int.from_bytes(body[offset:offset + 4], "big")
        offset += 4
        if offset + length > len(body):
            raise SignatureError("truncated key body")
        values.append(int.from_bytes(body[offset:offset + length], "big"))
        offset += length
    if len(values) != expected:
        raise SignatureError(f"expected {expected} integers in key, got {len(values)}")
    return values
