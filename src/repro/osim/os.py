"""The integrity-enforced operating system.

Boots through a measured chain (firmware → bootloader → kernel → IMA boot
aggregate), lays down the baseline Alpine-like filesystem, and exposes the
attestation surface the monitoring system reads (TPM quote + IMA log).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.ima.subsystem import AppraisalMode, ImaMeasurement, ImaSubsystem, ima_signature_for
from repro.osim.fs import SimFileSystem
from repro.osim.pkgdb import PackageDatabase
from repro.tpm.device import IMA_PCR_INDEX, Tpm, TpmQuote
from repro.util.errors import ReproError

#: Baseline files of a freshly installed OS; the initial trusted state the
#: monitoring system knows (and that policies may override via
#: ``init_config_files``, paper Listing 1).
BASELINE_FILES: dict[str, str] = {
    "/etc/passwd": (
        "root:x:0:0:root:/root:/bin/ash\n"
        "daemon:x:2:2:daemon:/sbin:/sbin/nologin\n"
        "nobody:x:65534:65534:nobody:/:/sbin/nologin\n"
    ),
    "/etc/shadow": (
        "root:!:0:0:99999:7:::\n"
        "daemon:!:0:0:99999:7:::\n"
        "nobody:!:0:0:99999:7:::\n"
    ),
    "/etc/group": (
        "root:x:0:\n"
        "daemon:x:2:root,bin,daemon\n"
        "nobody:x:65534:\n"
    ),
    "/etc/shells": "/bin/ash\n",
    "/etc/hostname": "alpine-node\n",
    "/etc/apk/repositories": "https://tsr.example/v3.10/main\n",
}

#: Pseudo-binaries measured at boot (stand-ins for busybox and the libc).
BASELINE_BINARIES: dict[str, bytes] = {
    "/bin/busybox": b"\x7fELF\x02busybox-1.31.1 simulated binary",
    "/lib/ld-musl-x86_64.so.1": b"\x7fELF\x02musl-1.1.24 simulated loader",
}

_BOOT_COMPONENTS = (
    (0, "firmware", b"simulated-uefi-firmware-v1"),
    (0, "firmware-config", b"secure-boot=on"),
    (4, "bootloader", b"simulated-grub-2.04"),
    (4, "kernel", b"simulated-linux-5.4-ima"),
    (5, "initramfs", b"simulated-initramfs"),
)


@dataclass
class AttestationEvidence:
    """What the OS hands to a remote verifier: quote + measurement list."""

    node_name: str
    quote: TpmQuote
    ima_log: list[ImaMeasurement]
    attestation_key: RsaPublicKey


class IntegrityEnforcedOS:
    """A node running Alpine-like Linux with IMA + TPM enabled."""

    def __init__(self, name: str,
                 appraisal: AppraisalMode = AppraisalMode.OFF,
                 vendor_key: RsaPrivateKey | None = None,
                 init_config_files: dict[str, str] | None = None,
                 tpm_attestation_seed: int | None = None):
        self.name = name
        self.fs = SimFileSystem()
        self.tpm = Tpm(serial=f"tpm-{name}",
                       attestation_seed=tpm_attestation_seed)
        self.ima = ImaSubsystem(self.fs, self.tpm, appraisal=appraisal)
        self.pkgdb = PackageDatabase(self.fs)
        self._vendor_key = vendor_key
        self._init_config_files = dict(init_config_files or {})
        self._booted = False
        if vendor_key is not None:
            self.ima.trust_key(vendor_key.public_key)

    # -- boot ------------------------------------------------------------------

    def boot(self):
        """Measured boot: extend the chain of trust, then lay down and
        measure the baseline filesystem."""
        if self._booted:
            raise ReproError(f"node {self.name} is already booted")
        for pcr, description, blob in _BOOT_COMPONENTS:
            self.tpm.measure(pcr, blob, description)
        self.ima.record_boot_aggregate()
        baseline = dict(BASELINE_FILES)
        baseline.update(self._init_config_files)
        for path, content in baseline.items():
            self._write_baseline(path, content.encode())
        for path, content in BASELINE_BINARIES.items():
            self._write_baseline(path, content, mode=0o755)
        # Loading the baseline measures it (services start at boot).
        for path in sorted(baseline) + sorted(BASELINE_BINARIES):
            self.fs.read_file(path)
        self._booted = True

    def _write_baseline(self, path: str, content: bytes, mode: int = 0o644):
        self.fs.write_file(path, content, mode=mode)
        if self._vendor_key is not None:
            self.fs.set_xattr(path, "security.ima",
                              ima_signature_for(content, self._vendor_key))

    @property
    def booted(self) -> bool:
        return self._booted

    def teardown(self):
        """Decommission the node: detach the IMA hooks from the VFS.

        That edge is the node graph's one reference cycle, so after this
        the whole graph (fs tree, IMA log, TPM state, package database)
        frees by refcounting as soon as the last external reference
        drops — retiring clients from a rotating fleet reclaims their
        memory immediately instead of at the next gen-2 GC.
        """
        self.fs.clear_hooks()

    # -- runtime ------------------------------------------------------------------

    def load_file(self, path: str) -> bytes:
        """Open a file as a process would (fires IMA measurement/appraisal)."""
        return self.fs.read_file(path)

    def exercise_paths(self, paths: list[str]):
        """Open many files — models services restarting after an update."""
        for path in paths:
            self.fs.read_file(path)

    # -- attestation -----------------------------------------------------------------

    def attest(self, nonce: bytes) -> AttestationEvidence:
        """Produce the remote-attestation evidence a verifier requests."""
        quote = self.tpm.quote(list(range(8)) + [IMA_PCR_INDEX], nonce)
        return AttestationEvidence(
            node_name=self.name,
            quote=quote,
            ima_log=self.ima.measurement_list(),
            attestation_key=self.tpm.attestation_public_key,
        )
