"""Baselines the paper compares against (explicitly or implicitly).

* **Plain mirror** — the conventional configuration: a package manager
  pointed directly at a mirror (``MirrorRepositoryClient``).  Updates
  install fine but every changed file trips the monitoring system (the
  false-positive problem of Figure 1), and a Byzantine mirror can freeze
  or replay updates unchallenged.
* **Berger-style signed packages** (Berger et al. 2015/2016) — per-file
  signatures injected at package *build* time with the community's key.
  Solves file-integrity verification but requires changing the
  distribution's packaging process and does nothing about installation
  scripts; implemented here for comparison.
"""

from repro.baselines.berger import BergerBuilder
from repro.core.client import MirrorRepositoryClient

__all__ = ["BergerBuilder", "MirrorRepositoryClient"]
