#!/usr/bin/env python3
"""Multi-round trace replay: staleness the paper only sketches.

A two-tenant TSR deployment lives through four upstream release rounds:
each round publishes an update batch, the mirrors sync, the TSR runs an
orchestrated refresh, and a six-client fleet pulls.  The whole trace is
replayed twice — serially (each step completes before the next starts)
and as one plan-wide interleaved schedule — and the replay reports what
neither a single-round bench can show: how long every client kept
running an index older than the newest upstream publish, and how long
each publish took to reach the fleet.

Run:  python examples/trace_replay.py
"""

from repro.archive.apk import ApkPackage, PackageFile
from repro.mirrors.builder import MirrorSpec
from repro.simnet.latency import Continent
from repro.workload.generator import generate_trace
from repro.workload.replay import replay_trace
from repro.workload.scenario import (
    build_multi_tenant_scenario,
    multi_tenant_refresh,
)

# Cross-continent mirrors: quorum reads cost real RTT, and the frozen
# EU mirror forces the quorum to widen (and the orchestrator to
# pre-scan cached blobs) every round.
MIRROR_SPECS = (
    MirrorSpec("mirror-eu-1.example", Continent.EUROPE),
    MirrorSpec("mirror-na-1.example", Continent.NORTH_AMERICA),
    MirrorSpec("mirror-as-1.example", Continent.ASIA),
)


def population(count=10, files=12):
    packages = []
    for i in range(count):
        scripts = {}
        if i % 3 == 0:
            scripts = {".pre-install": f"addgroup -S grp{i}\n"
                                       f"adduser -S -G grp{i} svc{i}\n"}
        pkg_files = [PackageFile(f"/usr/bin/pkg{i}",
                                 (b"\x7fELF" + bytes([i])) * 4000)]
        pkg_files += [PackageFile(f"/usr/lib/pkg{i}/f{j}",
                                  bytes([i, j]) * 300)
                      for j in range(files - 1)]
        packages.append(ApkPackage(
            name=f"pkg-{i:02d}", version="1.0-r0", scripts=scripts,
            files=pkg_files,
        ))
    return packages


def main():
    trace = generate_trace(rounds=4, interval=0.3, publish_fraction=0.3,
                           seed=42,
                           mirror_names=[s.name for s in MIRROR_SPECS],
                           frozen_mirrors=("mirror-eu-1.example",))
    print(f"trace: {trace.rounds()} rounds, {len(trace.events)} events, "
          f"horizon {trace.horizon:.1f}s\n")

    reports = {}
    for mode in ("serial", "interleaved"):
        scenario = build_multi_tenant_scenario(tenants=2, overlap=0.5,
                                               packages=population(),
                                               mirror_specs=MIRROR_SPECS)
        multi_tenant_refresh(scenario)  # bootstrap: publish the catalog
        reports[mode] = replay_trace(scenario, trace, clients=6, mode=mode)

    for mode, report in reports.items():
        print(f"{mode}: wall {report.wall_elapsed:.2f}s, "
              f"{report.installs} installs, "
              f"staleness mean {report.staleness_mean:.2f}s "
              f"(max {report.staleness_max:.2f}s), "
              f"availability mean {report.availability_mean:.2f}s")

    interleaved = reports["interleaved"]
    print("\nper-client staleness (interleaved):")
    for name, timeline in sorted(interleaved.timelines.items()):
        pulls = len(timeline.transitions)
        print(f"  {name} [{timeline.repo_id}]: {timeline.staleness:.2f}s "
              f"stale over {pulls} pulls")

    speedup = (reports["serial"].wall_elapsed
               / interleaved.wall_elapsed)
    print(f"\nplan-wide interleaving: {speedup:.2f}x vs serial composition")
    print("trace replay complete.")


if __name__ == "__main__":
    main()
