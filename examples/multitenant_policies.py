#!/usr/bin/env python3
"""Multi-tenant TSR: one enclave, per-organization security policies.

Two organizations share a single cloud-hosted TSR instance (paper section
5.2).  Each deploys its own policy — different trusted mirrors, a package
whitelist for the stricter org, custom initial accounts — and each gets an
isolated repository with its own enclave-held signing key, verified
through SGX remote attestation before any trust is placed in it.

Run:  python examples/multitenant_policies.py
"""

from repro.archive.apk import ApkPackage, PackageFile
from repro.core.client import TsrRepositoryClient, deploy_policy_with_attestation
from repro.core.policy import MirrorPolicyEntry, SecurityPolicy
from repro.simnet.network import Host
from repro.simnet.latency import Continent
from repro.util.errors import NetworkError
from repro.workload.scenario import build_scenario


def main():
    packages = [
        ApkPackage(name="musl", version="1.1.24-r2",
                   files=[PackageFile("/lib/ld-musl.so", b"\x7fELF musl")]),
        ApkPackage(name="nginx", version="1.16.1-r6", depends=["musl"],
                   scripts={".pre-install": "adduser -S -D -H nginx\n"},
                   files=[PackageFile("/usr/sbin/nginx", b"\x7fELF nginx")]),
        ApkPackage(name="telnetd", version="0.17-r3",
                   files=[PackageFile("/usr/sbin/telnetd", b"\x7fELF telnetd")]),
    ]
    scenario = build_scenario(packages=packages, key_bits=1024)
    print(f"tenant A (default policy): repo={scenario.repo_id}, "
          f"key fp={scenario.tsr_public_key.fingerprint()}")

    # Organization B: stricter policy — package whitelist, custom admin
    # account baked into the initial configuration.
    org_b_policy = SecurityPolicy(
        mirrors=[MirrorPolicyEntry(hostname=spec, continent=Continent.EUROPE)
                 for spec in scenario.mirrors],
        signers_keys=[scenario.distro_key.public_key],
        package_whitelist=frozenset({"musl", "nginx"}),
        init_config_files={
            "/etc/passwd": (
                "root:x:0:0:root:/root:/bin/ash\n"
                "opsadmin:x:50:50:org-b operator:/home/ops:/bin/ash\n"
            ),
            "/etc/shadow": (
                "root:!:0:0:99999:7:::\n"
                "opsadmin:$6$salt$hash:0:0:99999:7:::\n"
            ),
            "/etc/group": "root:x:0:\nopsadmin:x:50:\n",
        },
    )

    scenario.network.add_host(Host("org-b-admin", Continent.EUROPE))
    repo_b, key_b = deploy_policy_with_attestation(
        scenario.network, "org-b-admin", scenario.tsr.hostname,
        org_b_policy.to_yaml(), scenario.attestation_service,
        expected_mrenclave=scenario.tsr._enclave.mrenclave,
    )
    print(f"tenant B (whitelist policy): repo={repo_b}, "
          f"key fp={key_b.fingerprint()} (attested before trusting)")
    assert key_b.fingerprint() != scenario.tsr_public_key.fingerprint()

    report_b = scenario.tsr.refresh(repo_b)
    print(f"tenant B refresh: sanitized={report_b.sanitized} "
          f"changed={report_b.changed_packages}")

    print("\n== tenant isolation in action ==")
    client_b = TsrRepositoryClient(scenario.network, "org-b-admin",
                                   scenario.tsr.hostname, repo_b)
    from repro.archive.index import RepositoryIndex
    index_b = RepositoryIndex.from_bytes(client_b.fetch_index())
    print(f"tenant B index lists: {index_b.package_names()} "
          "(telnetd filtered by the whitelist)")
    assert "telnetd" not in index_b.entries

    try:
        client_b.fetch_package("telnetd")
    except NetworkError as exc:
        print(f"fetching telnetd from tenant B repo fails: {exc}")

    # Tenant A still sees everything.
    node_a, pm_a = scenario.new_node("org-a-node")
    index_a = pm_a.update()
    print(f"tenant A index lists: {index_a.package_names()}")
    assert "telnetd" in index_a.entries

    # Tenant B's predicted /etc/passwd includes the custom admin account.
    state = scenario.tsr._enclave.ecall("export_state")
    del state  # (policies are sealed with the state; nothing secret here)
    print("\nmulti-tenant demo complete: one enclave, two isolated "
          "repositories, per-tenant keys and policies.")


if __name__ == "__main__":
    main()
