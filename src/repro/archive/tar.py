"""A from-scratch ustar reader/writer with PAX extended headers.

Implements the subset of POSIX.1-2001 pax interchange format the paper's
mechanism needs:

* plain ustar entries (regular files, directories, symlinks),
* per-entry ``x`` extended headers carrying ``key=value`` records,
* the ``SCHILY.xattr.*`` convention GNU tar uses to map PAX records to
  filesystem extended attributes — which is exactly how TSR ships
  ``security.ima`` signatures to the target OS (paper section 5.3).

Values in PAX records may be raw bytes (signatures are binary); records are
length-prefixed so parsing stays unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import PackagingError

BLOCK_SIZE = 512

TYPE_REGULAR = b"0"
TYPE_SYMLINK = b"2"
TYPE_DIRECTORY = b"5"
TYPE_PAX_HEADER = b"x"

_USTAR_MAGIC = b"ustar\x0000"


@dataclass
class TarEntry:
    """One archive member, with optional PAX extended headers."""

    name: str
    data: bytes = b""
    mode: int = 0o644
    uid: int = 0
    gid: int = 0
    mtime: int = 0
    typeflag: bytes = TYPE_REGULAR
    linkname: str = ""
    uname: str = "root"
    gname: str = "root"
    pax_headers: dict[str, bytes] = field(default_factory=dict)

    @property
    def is_file(self) -> bool:
        return self.typeflag == TYPE_REGULAR

    @property
    def is_dir(self) -> bool:
        return self.typeflag == TYPE_DIRECTORY

    @property
    def is_symlink(self) -> bool:
        return self.typeflag == TYPE_SYMLINK

    def xattrs(self) -> dict[str, bytes]:
        """Extended attributes carried via SCHILY.xattr.* PAX records."""
        prefix = "SCHILY.xattr."
        return {
            key[len(prefix):]: value
            for key, value in self.pax_headers.items()
            if key.startswith(prefix)
        }

    def set_xattr(self, name: str, value: bytes):
        """Attach an extended attribute (e.g. ``security.ima``)."""
        self.pax_headers[f"SCHILY.xattr.{name}"] = value


def _octal_field(value: int, width: int) -> bytes:
    """NUL-terminated zero-padded octal, the classic tar numeric encoding."""
    if value < 0:
        raise PackagingError(f"tar numeric fields must be non-negative: {value}")
    text = oct(value)[2:]
    if len(text) > width - 1:
        raise PackagingError(f"value {value} does not fit in {width}-byte octal field")
    return text.rjust(width - 1, "0").encode("ascii") + b"\x00"


def _string_field(value: str, width: int, what: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > width:
        raise PackagingError(f"{what} too long for tar header: {value!r}")
    return raw.ljust(width, b"\x00")


def _build_header(name: str, size: int, entry: TarEntry, typeflag: bytes) -> bytes:
    header = bytearray()
    header += _string_field(name, 100, "entry name")
    header += _octal_field(entry.mode & 0o7777, 8)
    header += _octal_field(entry.uid, 8)
    header += _octal_field(entry.gid, 8)
    header += _octal_field(size, 12)
    header += _octal_field(entry.mtime, 12)
    header += b"        "  # checksum placeholder: 8 spaces
    header += typeflag
    header += _string_field(entry.linkname, 100, "link name")
    header += _USTAR_MAGIC
    header += _string_field(entry.uname, 32, "user name")
    header += _string_field(entry.gname, 32, "group name")
    header += _octal_field(0, 8)  # devmajor
    header += _octal_field(0, 8)  # devminor
    header += _string_field("", 155, "prefix")
    header += b"\x00" * 12
    assert len(header) == BLOCK_SIZE
    checksum = sum(header)
    header[148:156] = f"{checksum:06o}".encode("ascii") + b"\x00 "
    return bytes(header)


def _pad_to_block(data: bytes) -> bytes:
    remainder = len(data) % BLOCK_SIZE
    if remainder:
        return data + b"\x00" * (BLOCK_SIZE - remainder)
    return data


def _encode_pax_records(records: dict[str, bytes]) -> bytes:
    """Encode PAX records: ``<len> <key>=<value>\\n`` with len counting itself."""
    out = bytearray()
    for key, value in sorted(records.items()):
        body = key.encode("utf-8") + b"=" + value + b"\n"
        # Total length includes the decimal length field and the space.
        length = len(body) + 3  # minimum guess: 2 digits + space
        while len(str(length)) + 1 + len(body) != length:
            length = len(str(length)) + 1 + len(body)
        out += str(length).encode("ascii") + b" " + body
    return bytes(out)


def _decode_pax_records(data: bytes) -> dict[str, bytes]:
    records: dict[str, bytes] = {}
    offset = 0
    while offset < len(data):
        space = data.index(b" ", offset)
        length = int(data[offset:space].decode("ascii"))
        record = data[offset + len(str(length)) + 1:offset + length]
        if not record.endswith(b"\n"):
            raise PackagingError("PAX record missing trailing newline")
        key_bytes, _, value = record[:-1].partition(b"=")
        records[key_bytes.decode("utf-8")] = value
        offset += length
    return records


def write_tar(entries: list[TarEntry]) -> bytes:
    """Serialize entries to a tar stream (with PAX headers where needed)."""
    out = bytearray()
    for index, entry in enumerate(entries):
        if entry.pax_headers:
            pax_body = _encode_pax_records(entry.pax_headers)
            pax_name = f"./PaxHeaders/{entry.name[:85]}"
            out += _build_header(pax_name, len(pax_body), entry, TYPE_PAX_HEADER)
            out += _pad_to_block(pax_body)
        size = len(entry.data) if entry.is_file else 0
        if not entry.is_file and entry.data:
            raise PackagingError(
                f"non-regular entry {entry.name!r} cannot carry data"
            )
        out += _build_header(entry.name, size, entry, entry.typeflag)
        if entry.is_file:
            out += _pad_to_block(entry.data)
        del index
    out += b"\x00" * (2 * BLOCK_SIZE)  # end-of-archive marker
    return bytes(out)


def _parse_octal(raw: bytes, what: str) -> int:
    text = raw.rstrip(b"\x00 ").lstrip()
    if not text:
        return 0
    try:
        return int(text, 8)
    except ValueError:
        raise PackagingError(f"bad octal in tar {what}: {raw!r}") from None


def _parse_string(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("utf-8")


def read_tar(data: bytes) -> list[TarEntry]:
    """Parse a tar stream produced by :func:`write_tar` (or compatible)."""
    entries: list[TarEntry] = []
    pending_pax: dict[str, bytes] = {}
    offset = 0
    while offset + BLOCK_SIZE <= len(data):
        header = data[offset:offset + BLOCK_SIZE]
        if header == b"\x00" * BLOCK_SIZE:
            break  # end-of-archive
        if header[257:265] != _USTAR_MAGIC:
            raise PackagingError(f"bad ustar magic at offset {offset}")
        stored_checksum = _parse_octal(header[148:156], "checksum")
        actual_checksum = sum(header) - sum(header[148:156]) + 8 * ord(" ")
        if stored_checksum != actual_checksum:
            raise PackagingError(f"tar header checksum mismatch at offset {offset}")
        size = _parse_octal(header[124:136], "size")
        typeflag = header[156:157]
        body = data[offset + BLOCK_SIZE:offset + BLOCK_SIZE + size]
        if len(body) != size:
            raise PackagingError("truncated tar entry body")
        offset += BLOCK_SIZE + (size + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE
        if typeflag == TYPE_PAX_HEADER:
            pending_pax = _decode_pax_records(body)
            continue
        entry = TarEntry(
            name=_parse_string(header[0:100]),
            data=body if typeflag == TYPE_REGULAR else b"",
            mode=_parse_octal(header[100:108], "mode"),
            uid=_parse_octal(header[108:116], "uid"),
            gid=_parse_octal(header[116:124], "gid"),
            mtime=_parse_octal(header[136:148], "mtime"),
            typeflag=typeflag,
            linkname=_parse_string(header[157:257]),
            uname=_parse_string(header[265:297]),
            gname=_parse_string(header[297:329]),
            pax_headers=pending_pax,
        )
        pending_pax = {}
        entries.append(entry)
    else:
        raise PackagingError("tar stream missing end-of-archive marker")
    return entries
