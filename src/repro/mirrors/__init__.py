"""Repositories and mirrors, honest and Byzantine.

The original repository is the root of trust for updates (paper section
2.1); mirrors replicate it with bounded control by the community.  The
threat model (section 3.1) grants the adversary up to f of 2f+1 mirrors;
this package implements the honest mirror plus the freeze / replay /
corrupt behaviours of Figure 5.
"""

from repro.mirrors.repository import OriginalRepository
from repro.mirrors.mirror import Mirror, MirrorBehavior
from repro.mirrors.builder import MirrorSpec, build_mirror_network

__all__ = [
    "OriginalRepository",
    "Mirror",
    "MirrorBehavior",
    "MirrorSpec",
    "build_mirror_network",
]
