"""The apk v2 package container (paper Figure 3).

An ``.apk`` is three concatenated gzip streams:

1. **signature segment** — a tar holding ``.SIGN.RSA.<key-name>``: an RSA
   signature issued over the *compressed control segment bytes*;
2. **control segment** — a tar holding ``.PKGINFO`` (name, version, deps,
   and ``datahash`` — the SHA-256 of the compressed data segment) plus the
   installation scripts (``.pre-install``, ``.post-install``, …);
3. **data segment** — a tar with the software-specific files; after
   sanitization each file entry carries its IMA signature in a
   ``SCHILY.xattr.security.ima`` PAX record.

The signature therefore certifies the control segment, and the control
segment's ``datahash`` certifies the data segment — exactly the chain the
paper describes under Figure 3.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter

from repro.archive.gz import (
    gzip_compress_cached,
    gzip_compress_cached_with_cost,
    gzip_decompress,
    split_gzip_streams,
)
from repro.archive.tar import TarEntry, read_tar, write_tar
from repro.crypto.hashes import sha256_bytes, sha256_hex
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.util.errors import IntegrityError, PackagingError, SignatureError

SIGNATURE_PAX_KEY = "SCHILY.xattr.security.ima"

#: Script hook names apk supports, in the order the package manager runs them.
SCRIPT_HOOKS = (
    ".pre-install",
    ".post-install",
    ".pre-upgrade",
    ".post-upgrade",
    ".pre-deinstall",
    ".post-deinstall",
)


@dataclass
class PackageFile:
    """One file shipped in the data segment."""

    path: str
    content: bytes
    mode: int = 0o644
    ima_signature: bytes | None = None


@dataclass
class ApkPackage:
    """In-memory representation of an apk package."""

    name: str
    version: str
    arch: str = "x86_64"
    description: str = ""
    depends: list[str] = field(default_factory=list)
    scripts: dict[str, str] = field(default_factory=dict)
    files: list[PackageFile] = field(default_factory=list)
    #: Signatures over predicted config files, installed by sanitized
    #: scripts (paper section 4.2); maps target path -> signature bytes.
    config_signatures: dict[str, bytes] = field(default_factory=dict)

    def __post_init__(self):
        for hook in self.scripts:
            if hook not in SCRIPT_HOOKS:
                raise PackagingError(f"unknown script hook {hook!r}")

    @property
    def full_name(self) -> str:
        return f"{self.name}-{self.version}"

    def file_map(self) -> dict[str, PackageFile]:
        return {f.path: f for f in self.files}

    # -- serialization -----------------------------------------------------

    def _control_tar(self, data_blob: bytes) -> bytes:
        pkginfo_lines = [
            f"pkgname = {self.name}",
            f"pkgver = {self.version}",
            f"arch = {self.arch}",
            f"pkgdesc = {self.description}",
            f"datahash = {sha256_hex(data_blob)}",
        ]
        pkginfo_lines.extend(f"depend = {dep}" for dep in self.depends)
        entries = [TarEntry(name=".PKGINFO",
                            data="\n".join(pkginfo_lines).encode() + b"\n")]
        for hook in SCRIPT_HOOKS:
            if hook in self.scripts:
                entries.append(TarEntry(name=hook, mode=0o755,
                                        data=self.scripts[hook].encode()))
        if self.config_signatures:
            for path in sorted(self.config_signatures):
                entry = TarEntry(name=f".config-sig{path}",
                                 data=self.config_signatures[path])
                entries.append(entry)
        return write_tar(entries)

    def _data_tar(self) -> bytes:
        entries = []
        for pkg_file in sorted(self.files, key=lambda f: f.path):
            entry = TarEntry(
                name=pkg_file.path.lstrip("/"),
                data=pkg_file.content,
                mode=pkg_file.mode,
            )
            if pkg_file.ima_signature is not None:
                entry.set_xattr("security.ima", pkg_file.ima_signature)
            entries.append(entry)
        return write_tar(entries)

    def _data_tar_gz(self) -> bytes:
        return gzip_compress_cached(self._data_tar())

    def build_segments(self, signing_key: RsaPrivateKey,
                       key_name: str = "builder") -> tuple[bytes, bytes, bytes]:
        """The three compressed segments (signature, control, data).

        Incremental repack: each segment compresses through the
        deterministic-gzip memo, so a rebuild only re-deflates the
        segments whose members actually changed — an unchanged data tar
        splices its previously compressed bytes even when the control
        segment (and therefore the signature) was rewritten.  The
        resulting bytes are pinned identical to a cold full repack by the
        differential suite.
        """
        segments, _ = self._build_segments_with_cost(signing_key, key_name)
        return segments

    def _build_segments_with_cost(
            self, signing_key: RsaPrivateKey,
            key_name: str) -> tuple[tuple[bytes, bytes, bytes], float]:
        data_gz, data_cost = gzip_compress_cached_with_cost(self._data_tar())
        control_gz, control_cost = gzip_compress_cached_with_cost(
            self._control_tar(data_gz))
        signature = signing_key.sign(control_gz)
        signature_tar = write_tar(
            [TarEntry(name=f".SIGN.RSA.{key_name}.rsa.pub", data=signature)]
        )
        signature_gz, signature_cost = gzip_compress_cached_with_cost(
            signature_tar)
        cost = data_cost + control_cost + signature_cost
        return (signature_gz, control_gz, data_gz), cost

    def build(self, signing_key: RsaPrivateKey, key_name: str = "builder") -> bytes:
        """Serialize and sign, producing the on-the-wire apk bytes."""
        signature_gz, control_gz, data_gz = self.build_segments(
            signing_key, key_name=key_name)
        return signature_gz + control_gz + data_gz

    def build_with_cost(self, signing_key: RsaPrivateKey,
                        key_name: str = "builder") -> tuple[bytes, float]:
        """Like :meth:`build`, also reporting the host seconds the deflate
        work originally cost (memo hits report the recorded fresh cost)."""
        segments, cost = self._build_segments_with_cost(signing_key, key_name)
        return b"".join(segments), cost

    def build_prewarm(self, signing_key: RsaPrivateKey,
                      key_name: str = "builder") -> tuple[bytes, dict]:
        """Worker-side build: serialize and sign like :meth:`build`, but
        also return the content-keyed memo entries (compressed segments,
        control-segment signature, self-check verdict) a later rebuild
        needs, so the main process can splice this package together
        without redoing the deflates or the CRT sign."""
        from repro.crypto.rsa import _VERIFY_MEMO
        entries: dict[str, list] = {"gz": [], "sign": [], "verify": []}
        data_tar = self._data_tar()
        data_gz, data_cost = gzip_compress_cached_with_cost(data_tar)
        entries["gz"].append(((hashlib.sha256(data_tar).digest(),
                               len(data_tar), 6), data_gz, data_cost))
        control_tar = self._control_tar(data_gz)
        control_gz, control_cost = gzip_compress_cached_with_cost(control_tar)
        entries["gz"].append(((hashlib.sha256(control_tar).digest(),
                               len(control_tar), 6), control_gz,
                              control_cost))
        signature, sign_cost = signing_key.sign_with_cost(control_gz)
        digest = sha256_bytes(control_gz)
        verify_hit = _VERIFY_MEMO.get(
            (signing_key.n, signing_key.e, digest, signature))
        if verify_hit is None:
            verify_hit = signing_key.public_key.verify_with_cost(
                control_gz, signature)
        entries["sign"].append((signing_key.n, digest, signature, sign_cost))
        entries["verify"].append((signing_key.n, signing_key.e, digest,
                                  signature, True, verify_hit[1]))
        signature_tar = write_tar(
            [TarEntry(name=f".SIGN.RSA.{key_name}.rsa.pub", data=signature)]
        )
        signature_gz, signature_cost = gzip_compress_cached_with_cost(
            signature_tar)
        entries["gz"].append(((hashlib.sha256(signature_tar).digest(),
                               len(signature_tar), 6), signature_gz,
                              signature_cost))
        return signature_gz + control_gz + data_gz, entries

    # -- parsing / verification --------------------------------------------

    @classmethod
    def parse(cls, blob: bytes) -> "ParsedApk":
        """Split an apk into its segments and decode metadata."""
        segments = split_gzip_streams(blob, expected=3)
        signature_entries = read_tar(gzip_decompress(segments[0]))
        control_entries = read_tar(gzip_decompress(segments[1]))
        signature = None
        signer_name = None
        for entry in signature_entries:
            if entry.name.startswith(".SIGN.RSA."):
                signature = entry.data
                signer_name = entry.name[len(".SIGN.RSA."):]
        if signature is None:
            raise PackagingError("apk missing .SIGN.RSA signature entry")
        pkginfo = None
        scripts: dict[str, str] = {}
        config_signatures: dict[str, bytes] = {}
        for entry in control_entries:
            if entry.name == ".PKGINFO":
                pkginfo = entry.data.decode()
            elif entry.name in SCRIPT_HOOKS:
                scripts[entry.name] = entry.data.decode()
            elif entry.name.startswith(".config-sig"):
                config_signatures[entry.name[len(".config-sig"):]] = entry.data
        if pkginfo is None:
            raise PackagingError("apk control segment missing .PKGINFO")
        meta = _parse_pkginfo(pkginfo)
        data_entries = read_tar(gzip_decompress(segments[2]))
        files = []
        for entry in data_entries:
            if not entry.is_file:
                continue
            files.append(PackageFile(
                path="/" + entry.name.lstrip("/"),
                content=entry.data,
                mode=entry.mode,
                ima_signature=entry.xattrs().get("security.ima"),
            ))
        package = cls(
            name=meta["pkgname"],
            version=meta["pkgver"],
            arch=meta.get("arch", "x86_64"),
            description=meta.get("pkgdesc", ""),
            depends=meta.get("depends", []),
            scripts=scripts,
            files=files,
            config_signatures=config_signatures,
        )
        return ParsedApk(
            package=package,
            signature=signature,
            signer_name=signer_name,
            control_gz=segments[1],
            data_gz=segments[2],
            datahash=meta["datahash"],
        )


@dataclass
class ParsedApk:
    """A parsed apk: the package plus the raw segments needed to verify it."""

    package: ApkPackage
    signature: bytes
    signer_name: str | None
    control_gz: bytes
    data_gz: bytes
    datahash: str

    def verify(self, trusted_keys: list[RsaPublicKey]) -> RsaPublicKey:
        """Full chain check: signature over control, datahash over data.

        Returns the key that verified the signature, or raises.
        """
        return self.verify_with_cost(trusted_keys)[0]

    def verify_with_cost(
            self, trusted_keys: list[RsaPublicKey]
    ) -> tuple[RsaPublicKey, float]:
        """Like :meth:`verify`, also reporting the host seconds the chain
        check originally cost (signature verdicts are memoized; the
        recorded cost lets enclave-time models charge hits as fresh)."""
        signer = None
        cost = 0.0
        for key in trusted_keys:
            ok, verify_cost = key.verify_with_cost(self.control_gz,
                                                   self.signature)
            cost += verify_cost
            if ok:
                signer = key
                break
        if signer is None:
            raise SignatureError(
                f"package {self.package.full_name}: control segment signature "
                "did not verify under any trusted key"
            )
        actual = sha256_hex(self.data_gz)
        if actual != self.datahash:
            raise IntegrityError(
                f"package {self.package.full_name}: datahash mismatch "
                f"(control says {self.datahash[:12]}…, data is {actual[:12]}…)"
            )
        return signer, cost


# -- host-pool parse memo and batch entry points ------------------------------
#
# Parsing is a pure function of the blob, so worker processes can parse
# ahead of the timeline.  The memo is installed *exclusively* from pool
# results: in a serial (REPRO_WORKERS=0) process it stays permanently
# empty, every lookup misses, and `parse_apk_cached_with_cost` is exactly
# ``ApkPackage.parse`` plus a wall-clock measurement — the literal
# pre-pool behavior.

_PARSE_MEMO: dict[tuple[str, int], tuple["ParsedApk", float]] = {}
_PARSE_MEMO_LIMIT = 512


def clear_parse_memo() -> None:
    _PARSE_MEMO.clear()


def seed_parse_entry(key: tuple[str, int], parsed: "ParsedApk",
                     cost: float) -> None:
    if key not in _PARSE_MEMO:
        if len(_PARSE_MEMO) >= _PARSE_MEMO_LIMIT:
            _PARSE_MEMO.clear()
        _PARSE_MEMO[key] = (parsed, cost)


def parse_apk_cached_with_cost(blob: bytes,
                               digest: str | None = None
                               ) -> tuple["ParsedApk", float]:
    """Pool-warmed parse: returns ``(parsed, host_seconds)`` where the
    cost is what the parse measured wherever it actually ran.  Callers
    that already hold the blob's hex digest pass it to skip rehashing."""
    if _PARSE_MEMO:
        if digest is None:
            digest = sha256_hex(blob)
        hit = _PARSE_MEMO.get((digest, len(blob)))
        if hit is not None:
            return hit
    started = perf_counter()
    parsed = ApkPackage.parse(blob)
    return parsed, perf_counter() - started


def parse_kernel(blob: bytes, trusted_keys: tuple[RsaPublicKey, ...]
                 ) -> tuple:
    """Worker-side parse + signature verdicts for every trusted key up to
    the first that verifies (mirroring ``ParsedApk.verify_with_cost``)."""
    started = perf_counter()
    parsed = ApkPackage.parse(blob)
    parse_cost = perf_counter() - started
    verify_entries = []
    for key in trusted_keys:
        if len(parsed.signature) != key.size_bytes:
            continue
        ok, cost = key.verify_with_cost(parsed.control_gz, parsed.signature)
        verify_entries.append((key.n, key.e, sha256_bytes(parsed.control_gz),
                               parsed.signature, ok, cost))
        if ok:
            break
    return (sha256_hex(blob), len(blob)), parsed, parse_cost, verify_entries


def parse_verify_batch(items: list[tuple[bytes, tuple[RsaPublicKey, ...]]],
                       pool=None) -> None:
    """Warm the parse memo (and the rsa verify memo) for ``(blob,
    trusted_keys)`` pairs an upcoming scan or pull wave will consume."""
    if pool is None or not items:
        return
    from repro.crypto.rsa import seed_verify_entry
    misses = []
    pending = set()
    for blob, keys in items:
        memo_key = (sha256_hex(blob), len(blob))
        if memo_key in _PARSE_MEMO or memo_key in pending:
            continue
        pending.add(memo_key)
        misses.append((blob, tuple(keys)))
    for memo_key, parsed, cost, entries in pool.run_batch(
            "parse_verify", misses):
        seed_parse_entry(memo_key, parsed, cost)
        for entry in entries:
            seed_verify_entry(*entry)


def seed_build_entries(entries: dict) -> None:
    """Install one :meth:`ApkPackage.build_prewarm` harvest into the
    segment-compress and sign/verify memos (main process only)."""
    from repro.archive.gz import seed_compress_entry
    from repro.crypto.rsa import seed_sign_entry, seed_verify_entry
    for key, compressed, cost in entries["gz"]:
        seed_compress_entry(key, compressed, cost)
    for n, digest, signature, cost in entries["sign"]:
        seed_sign_entry(n, digest, signature, cost)
    for entry in entries["verify"]:
        seed_verify_entry(*entry)


def publish_build_batch(packages: list[ApkPackage],
                        signing_key: RsaPrivateKey,
                        key_name: str = "builder", pool=None) -> None:
    """Pre-build packages about to be published: workers deflate and sign,
    the main process installs the memo entries, and the serial
    ``build()`` then splices the identical bytes from warm caches."""
    if pool is None or not packages:
        return
    payloads = [(package, signing_key, key_name) for package in packages]
    for entries in pool.run_batch("publish_build", payloads):
        seed_build_entries(entries)


def _parse_pkginfo(text: str) -> dict:
    """Parse the ``key = value`` lines of .PKGINFO."""
    meta: dict = {"depends": []}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "=" not in line:
            raise PackagingError(f"malformed .PKGINFO line: {line!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "depend":
            meta["depends"].append(value)
        else:
            meta[key] = value
    for required in ("pkgname", "pkgver", "datahash"):
        if required not in meta:
            raise PackagingError(f".PKGINFO missing required field {required!r}")
    return meta


def package_content_hash(blob: bytes) -> str:
    """Hash of the full apk file, as recorded in the repository index."""
    return sha256_hex(blob)


def package_size(blob: bytes) -> int:
    return len(blob)


__all__ = [
    "ApkPackage",
    "PackageFile",
    "ParsedApk",
    "SCRIPT_HOOKS",
    "SIGNATURE_PAX_KEY",
    "package_content_hash",
    "package_size",
    "sha256_bytes",
]
