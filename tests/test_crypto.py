"""Tests for the from-scratch crypto stack (hashes, RSA, PEM, certificates)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.certs import CertificateAuthority, Certificate, verify_chain
from repro.crypto.hashes import hmac_sha256, sha256_bytes, sha256_hex
from repro.crypto.pem import pem_decode, pem_encode
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from repro.util.errors import SignatureError

import random


class TestHashes:
    def test_sha256_known_vector(self):
        # NIST vector for "abc".
        assert sha256_hex(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha256_type_error(self):
        with pytest.raises(TypeError):
            sha256_bytes("not bytes")  # type: ignore[arg-type]

    def test_hmac_known_vector(self):
        # RFC 4231 test case 2.
        digest = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert digest.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        )

    def test_hmac_long_key(self):
        # Keys longer than the block size are hashed first (RFC 4231 case 6).
        digest = hmac_sha256(b"\xaa" * 131, b"Test Using Larger Than Block-Size Key - Hash Key First")
        assert digest.hex() == (
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        )


class TestPrimes:
    def test_known_primes(self):
        for p in (2, 3, 5, 104729, (1 << 61) - 1):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for c in (0, 1, 4, 561, 104730, (1 << 61)):
            assert not is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        for c in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(c)

    def test_generated_prime_has_exact_bits(self):
        rng = random.Random(7)
        for bits in (64, 128, 256):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_prime(4, random.Random(0))


class TestRsa:
    def test_sign_verify_roundtrip(self, rsa_key):
        message = b"sanitized package content"
        signature = rsa_key.sign(message)
        assert rsa_key.public_key.verify(message, signature)

    def test_signature_length_matches_modulus(self, rsa_key):
        assert len(rsa_key.sign(b"x")) == rsa_key.size_bytes

    def test_2048_bit_key_gives_256_byte_signatures(self):
        key = generate_keypair(2048, seed=42)
        assert key.size_bytes == 256
        assert len(key.sign(b"paper constant")) == 256

    def test_tampered_message_rejected(self, rsa_key):
        signature = rsa_key.sign(b"original")
        assert not rsa_key.public_key.verify(b"tampered", signature)

    def test_tampered_signature_rejected(self, rsa_key):
        signature = bytearray(rsa_key.sign(b"msg"))
        signature[0] ^= 0xFF
        assert not rsa_key.public_key.verify(b"msg", bytes(signature))

    def test_wrong_key_rejected(self, rsa_key, rsa_key_alt):
        signature = rsa_key.sign(b"msg")
        assert not rsa_key_alt.public_key.verify(b"msg", signature)

    def test_wrong_length_signature_rejected(self, rsa_key):
        assert not rsa_key.public_key.verify(b"msg", b"short")

    def test_deterministic_generation(self):
        a = generate_keypair(512, seed=123)
        b = generate_keypair(512, seed=123)
        assert (a.n, a.d) == (b.n, b.d)

    def test_distinct_seeds_distinct_keys(self):
        assert generate_keypair(512, seed=1).n != generate_keypair(512, seed=2).n

    def test_private_pem_roundtrip(self, rsa_key):
        restored = RsaPrivateKey.from_pem(rsa_key.to_pem())
        assert restored == rsa_key

    def test_public_pem_roundtrip(self, rsa_key):
        pub = rsa_key.public_key
        assert RsaPublicKey.from_pem(pub.to_pem()) == pub

    def test_public_pem_label_checked(self, rsa_key):
        with pytest.raises(SignatureError):
            RsaPublicKey.from_pem(rsa_key.to_pem())

    def test_fingerprint_stability(self, rsa_key):
        assert rsa_key.public_key.fingerprint() == rsa_key.public_key.fingerprint()
        assert len(rsa_key.public_key.fingerprint()) == 16

    def test_rejects_tiny_modulus(self):
        with pytest.raises(ValueError):
            generate_keypair(256)

    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_any_message(self, message):
        key = generate_keypair(512, seed=99)
        assert key.public_key.verify(message, key.sign(message))


class TestPem:
    def test_roundtrip(self):
        body = bytes(range(100))
        label, decoded = pem_decode(pem_encode("PUBLIC KEY", body))
        assert label == "PUBLIC KEY"
        assert decoded == body

    def test_line_wrapping(self):
        pem = pem_encode("CERTIFICATE", b"\x00" * 200)
        body_lines = pem.splitlines()[1:-1]
        assert all(len(line) <= 64 for line in body_lines)

    def test_label_mismatch_rejected(self):
        pem = pem_encode("A", b"data").replace("END A", "END B")
        with pytest.raises(SignatureError):
            pem_decode(pem)

    def test_bad_base64_rejected(self):
        with pytest.raises(SignatureError):
            pem_decode("-----BEGIN X-----\n!!!not base64!!!\n-----END X-----")

    def test_whitespace_tolerated(self):
        pem = "  " + pem_encode("X", b"hi").replace("\n", "\n  ") + "  \n"
        assert pem_decode(pem) == ("X", b"hi")

    def test_lowercase_label_rejected_on_encode(self):
        with pytest.raises(ValueError):
            pem_encode("lower", b"x")


class TestCertificates:
    @pytest.fixture(scope="class")
    def ca(self):
        return CertificateAuthority("repro-root", key_bits=512, seed=5)

    def test_issue_and_verify_chain(self, ca):
        key, cert = ca.issue_endpoint("mirror.example", key_bits=512, seed=6)
        assert verify_chain([cert, ca.certificate], ca.public_key)
        assert key.public_key == cert.public_key

    def test_subject_pinning(self, ca):
        _, cert = ca.issue_endpoint("mirror.example", key_bits=512, seed=7)
        chain = [cert, ca.certificate]
        assert verify_chain(chain, ca.public_key, expected_subject="mirror.example")
        assert not verify_chain(chain, ca.public_key, expected_subject="evil.example")

    def test_wrong_root_rejected(self, ca):
        other = CertificateAuthority("other-root", key_bits=512, seed=8)
        _, cert = ca.issue_endpoint("mirror.example", key_bits=512, seed=9)
        assert not verify_chain([cert, ca.certificate], other.public_key)

    def test_forged_leaf_rejected(self, ca):
        _, cert = ca.issue_endpoint("mirror.example", key_bits=512, seed=10)
        forged = Certificate(
            subject="evil.example",
            issuer=cert.issuer,
            public_key=cert.public_key,
            signature=cert.signature,
        )
        assert not verify_chain([forged, ca.certificate], ca.public_key)

    def test_empty_chain_rejected(self, ca):
        assert not verify_chain([], ca.public_key)

    def test_pem_roundtrip(self, ca):
        _, cert = ca.issue_endpoint("mirror.example", key_bits=512, seed=11)
        assert Certificate.from_pem(cert.to_pem()) == cert
