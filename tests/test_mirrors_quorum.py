"""Tests for mirrors (honest + Byzantine) and the quorum reader."""

import pytest

from repro.archive.apk import ApkPackage, PackageFile
from repro.archive.index import RepositoryIndex
from repro.core.policy import MirrorPolicyEntry
from repro.core.quorum import QuorumReader
from repro.crypto.hashes import sha256_hex
from repro.mirrors.builder import MirrorSpec, build_mirror_network, sync_all
from repro.mirrors.mirror import MirrorBehavior
from repro.mirrors.repository import OriginalRepository
from repro.simnet.latency import Continent
from repro.simnet.network import Host, Network, Request
from repro.util.errors import QuorumError


@pytest.fixture()
def origin(rsa_key):
    repo = OriginalRepository(rsa_key)
    repo.publish(ApkPackage(
        name="openssl", version="1.1.1f-r0",
        files=[PackageFile("/usr/lib/libssl.so", b"\x7fELF v-f vulnerable")],
    ))
    repo.publish(ApkPackage(
        name="openssl", version="1.1.1g-r0",
        files=[PackageFile("/usr/lib/libssl.so", b"\x7fELF v-g patched")],
    ))
    return repo


def _network_with(origin, specs):
    net = Network()
    net.add_host(Host("tsr.eu", Continent.EUROPE))
    mirrors = build_mirror_network(origin, specs, net)
    return net, mirrors


class TestOriginalRepository:
    def test_publish_bumps_serial(self, origin):
        assert origin.serial == 2

    def test_index_lists_latest_version(self, origin, rsa_key):
        index = RepositoryIndex.from_bytes(origin.index_bytes())
        assert index.verify(rsa_key.public_key)
        assert index.get("openssl").version == "1.1.1g-r0"

    def test_blob_matches_index_hash(self, origin):
        index = origin.index()
        blob = origin.package_blob("openssl")
        assert sha256_hex(blob) == index.get("openssl").sha256

    def test_historical_snapshots_retained(self, origin):
        old = origin.snapshot_at(1)
        assert RepositoryIndex.from_bytes(old.index_bytes).get(
            "openssl").version == "1.1.1f-r0"


class TestMirrorBehaviors:
    def test_honest_mirror_serves_latest(self, origin):
        net, mirrors = _network_with(origin, [
            MirrorSpec("m1", Continent.EUROPE),
        ])
        response = net.call("tsr.eu", Request("m1", "get_index"))
        index = RepositoryIndex.from_bytes(response.payload)
        assert index.serial == 2

    def test_freeze_mirror_stays_stale(self, origin, rsa_key):
        net, mirrors = _network_with(origin, [
            MirrorSpec("frozen", Continent.EUROPE,
                       behavior=MirrorBehavior.FREEZE, pinned_serial=1),
        ])
        origin.publish(ApkPackage(name="zlib", version="1-r0"))
        sync_all(mirrors)  # freeze mirror ignores the sync
        response = net.call("tsr.eu", Request("frozen", "get_index"))
        index = RepositoryIndex.from_bytes(response.payload)
        assert index.serial == 1
        # Crucially, the stale index still carries a valid signature.
        assert index.verify(rsa_key.public_key)

    def test_replay_mirror_serves_old_packages(self, origin):
        net, mirrors = _network_with(origin, [
            MirrorSpec("replay", Continent.EUROPE,
                       behavior=MirrorBehavior.REPLAY, pinned_serial=1),
        ])
        blob = net.call("tsr.eu", Request("replay", "get_package",
                                          payload="openssl")).payload
        assert b"vulnerable" in ApkPackage.parse(blob).package.files[0].content

    def test_corrupt_mirror_tamper_detected_by_hash(self, origin):
        net, mirrors = _network_with(origin, [
            MirrorSpec("bad", Continent.EUROPE, behavior=MirrorBehavior.CORRUPT),
        ])
        blob = net.call("tsr.eu", Request("bad", "get_package",
                                          payload="openssl")).payload
        assert sha256_hex(blob) != origin.index().get("openssl").sha256


def _entries(specs):
    return [MirrorPolicyEntry(hostname=s.name, continent=s.continent)
            for s in specs]


class TestQuorum:
    def test_all_honest_agree(self, origin, rsa_key):
        specs = [MirrorSpec(f"m{i}", Continent.EUROPE) for i in range(3)]
        net, _ = _network_with(origin, specs)
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        result = reader.read_index()
        assert result.index.serial == 2
        assert result.contacted == 2  # f+1 = 2 sufficed
        assert len(result.agreeing_mirrors) >= 2

    def test_minority_freeze_outvoted(self, origin, rsa_key):
        specs = [
            MirrorSpec("honest-1", Continent.EUROPE),
            MirrorSpec("honest-2", Continent.EUROPE),
            MirrorSpec("frozen", Continent.EUROPE,
                       behavior=MirrorBehavior.FREEZE, pinned_serial=1),
        ]
        net, _ = _network_with(origin, specs)
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        result = reader.read_index()
        assert result.index.serial == 2  # the latest state won

    def test_majority_freeze_cannot_fool_quorum(self, origin, rsa_key):
        """With f+1 colluding stale mirrors out of 2f+1, the quorum *can*
        accept the stale index — which is why the threat model caps the
        adversary at f. Verify the arithmetic boundary."""
        specs = [
            MirrorSpec("frozen-1", Continent.EUROPE,
                       behavior=MirrorBehavior.FREEZE, pinned_serial=1),
            MirrorSpec("frozen-2", Continent.EUROPE,
                       behavior=MirrorBehavior.FREEZE, pinned_serial=1),
            MirrorSpec("honest", Continent.EUROPE),
        ]
        net, _ = _network_with(origin, specs)
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        result = reader.read_index()
        assert result.index.serial == 1  # adversary above threshold wins

    def test_unreachable_mirrors_tolerated(self, origin, rsa_key):
        specs = [MirrorSpec(f"m{i}", Continent.EUROPE) for i in range(5)]
        net, _ = _network_with(origin, specs)
        net.set_down("m0")
        net.set_down("m1")
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        result = reader.read_index()
        assert result.index.serial == 2

    def test_no_quorum_raises(self, origin, rsa_key):
        specs = [MirrorSpec(f"m{i}", Continent.EUROPE) for i in range(3)]
        net, _ = _network_with(origin, specs)
        for name in ("m0", "m1"):
            net.set_down(name)
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        with pytest.raises(QuorumError):
            reader.read_index()

    def test_forged_index_signature_ignored(self, origin, rsa_key,
                                            rsa_key_alt):
        """A mirror serving an index signed by the wrong key is treated as
        invalid even if several mirrors collude on the same forgery."""
        forged = origin.index()
        forged.add(type(forged.get("openssl"))(
            name="backdoor", version="1-r0", size=10, sha256="ff" * 32))
        forged.sign(rsa_key_alt)
        forged_bytes = forged.to_bytes()

        specs = [MirrorSpec(f"m{i}", Continent.EUROPE) for i in range(3)]
        net, mirrors = _network_with(origin, specs)
        for name in ("m0", "m1"):
            mirrors[name].handle = lambda op, payload: (forged_bytes,
                                                        len(forged_bytes))
            net.host(name).handler = mirrors[name].handle
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        with pytest.raises(QuorumError):
            reader.read_index()

    def test_fastest_mirrors_contacted_first(self, origin, rsa_key):
        specs = [
            MirrorSpec("asia-1", Continent.ASIA),
            MirrorSpec("eu-1", Continent.EUROPE),
            MirrorSpec("eu-2", Continent.EUROPE),
        ]
        net, mirrors = _network_with(origin, specs)
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        result = reader.read_index()
        # EU mirrors suffice; the Asian one is never contacted.
        assert mirrors["asia-1"].requests_served == 0
        assert result.contacted == 2

    def test_disagreement_widens_contact_set(self, origin, rsa_key):
        specs = [
            MirrorSpec("frozen-eu", Continent.EUROPE,
                       behavior=MirrorBehavior.FREEZE, pinned_serial=1),
            MirrorSpec("honest-eu", Continent.EUROPE),
            MirrorSpec("honest-na", Continent.NORTH_AMERICA),
        ]
        net, _ = _network_with(origin, specs)
        reader = QuorumReader(net, "tsr.eu", _entries(specs),
                              [rsa_key.public_key])
        result = reader.read_index()
        assert result.index.serial == 2
        assert result.contacted == 3  # needed the NA mirror to break the tie
        assert "frozen-eu" in result.dissenting_mirrors

    def test_shared_downlink_contention_slows_quorum(self, origin, rsa_key):
        """The quorum reader runs on the shared transfer schedule: when the
        TSR host's downlink is throttled, the concurrent first-wave index
        downloads share it max-min fairly and the read slows down."""
        specs = [MirrorSpec(f"m{i}", Continent.EUROPE) for i in range(5)]
        net_free, _ = _network_with(origin, specs)
        free = QuorumReader(net_free, "tsr.eu", _entries(specs),
                            [rsa_key.public_key]).read_index()

        net_tight, _ = _network_with(origin, specs)
        index_size = len(origin.index_bytes())
        net_tight.host("tsr.eu").downlink_bandwidth = index_size / 2.0
        tight = QuorumReader(net_tight, "tsr.eu", _entries(specs),
                             [rsa_key.public_key]).read_index()

        # Verdicts are schedule-independent...
        assert tight.index.serial == free.index.serial
        assert tight.agreeing_mirrors == free.agreeing_mirrors
        assert tight.contacted == free.contacted
        # ...timing is not: 3 concurrent index downloads through a link
        # that moves half an index per second take ~6 s of transfer.
        assert tight.elapsed > free.elapsed + 4.0

    def test_cross_continent_quorum_slower(self, origin, rsa_key):
        eu_specs = [MirrorSpec(f"eu-{i}", Continent.EUROPE) for i in range(3)]
        net_eu, _ = _network_with(origin, eu_specs)
        QuorumReader(net_eu, "tsr.eu", _entries(eu_specs),
                     [rsa_key.public_key]).read_index()
        eu_elapsed = net_eu.clock.now()

        asia_specs = [MirrorSpec(f"as-{i}", Continent.ASIA) for i in range(3)]
        net_as, _ = _network_with(origin, asia_specs)
        QuorumReader(net_as, "tsr.eu", _entries(asia_specs),
                     [rsa_key.public_key]).read_index()
        assert net_as.clock.now() > eu_elapsed
